//! The crossbar RSIN as a simulatable [`ResourceNetwork`].
//!
//! `i` independent `j × k` crossbars; every output column is a bus carrying
//! `r` resources. A column advertises availability (`Y_{0,j} = 1`) exactly
//! when its bus is idle **and** at least one of its resources is free; the
//! gate-level fabric of [`CrossbarFabric`] resolves each request cycle.

use crate::fabric::CrossbarFabric;
use rsin_core::{Grant, NetworkCounters, ResourceNetwork, SystemConfig};
use rsin_des::SimRng;

/// How winners are chosen when several processors contend.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CrossbarPolicy {
    /// The paper's daisy-chained fabric: deterministic wave, low indices
    /// win (asymmetric).
    #[default]
    FixedPriority,
    /// The POLYP-style circulating token: a uniformly random pending
    /// processor wins each free bus.
    RandomToken,
}

#[derive(Debug)]
struct Partition {
    fabric: CrossbarFabric,
    /// Which local processor holds each bus during transmission.
    held_by: Vec<Option<usize>>,
    busy_resources: Vec<u32>,
    /// Whether each output column's resource pool is online.
    pool_up: Vec<bool>,
}

/// A partitioned distributed-scheduling crossbar RSIN.
///
/// # Examples
///
/// ```
/// use rsin_core::{ResourceNetwork, SystemConfig};
/// use rsin_xbar::{CrossbarNetwork, CrossbarPolicy};
///
/// let cfg: SystemConfig = "16/1x16x32 XBAR/1".parse()?;
/// let net = CrossbarNetwork::from_config(&cfg, CrossbarPolicy::FixedPriority)?;
/// assert_eq!(net.processors(), 16);
/// assert_eq!(net.total_resources(), 32);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct CrossbarNetwork {
    inputs: usize,
    outputs: usize,
    resources_per_bus: u32,
    policy: CrossbarPolicy,
    partitions: Vec<Partition>,
    counters: NetworkCounters,
    scratch: CycleScratch,
}

/// Reusable per-cycle buffers (the partition being swept), so request
/// cycles in steady state allocate only the returned grant vector.
#[derive(Debug, Default)]
struct CycleScratch {
    requests: Vec<bool>,
    available: Vec<bool>,
    procs: Vec<usize>,
    buses: Vec<usize>,
    local: Vec<(usize, usize)>,
}

/// Error building a [`CrossbarNetwork`] from a config of the wrong kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WrongKindError {
    /// The kind found in the configuration.
    pub found: rsin_core::NetworkKind,
}

impl std::fmt::Display for WrongKindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "expected an XBAR configuration, got {}", self.found)
    }
}

impl std::error::Error for WrongKindError {}

impl CrossbarNetwork {
    /// Builds the network described by `config` (kind must be
    /// [`NetworkKind::Crossbar`](rsin_core::NetworkKind::Crossbar)).
    ///
    /// # Errors
    ///
    /// [`WrongKindError`] when the configuration names another network type.
    pub fn from_config(
        config: &SystemConfig,
        policy: CrossbarPolicy,
    ) -> Result<Self, WrongKindError> {
        if config.kind() != rsin_core::NetworkKind::Crossbar {
            return Err(WrongKindError {
                found: config.kind(),
            });
        }
        Ok(CrossbarNetwork::new(
            config.networks() as usize,
            config.inputs() as usize,
            config.outputs() as usize,
            config.resources_per_port(),
            policy,
        ))
    }

    /// Builds `partitions` independent `inputs × outputs` crossbars with
    /// `resources_per_bus` resources on every output column.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero.
    #[must_use]
    pub fn new(
        partitions: usize,
        inputs: usize,
        outputs: usize,
        resources_per_bus: u32,
        policy: CrossbarPolicy,
    ) -> Self {
        assert!(
            partitions > 0 && inputs > 0 && outputs > 0,
            "counts must be positive"
        );
        assert!(resources_per_bus > 0, "resources per bus must be positive");
        CrossbarNetwork {
            inputs,
            outputs,
            resources_per_bus,
            policy,
            partitions: (0..partitions)
                .map(|_| Partition {
                    fabric: CrossbarFabric::new(inputs, outputs),
                    held_by: vec![None; outputs],
                    busy_resources: vec![0; outputs],
                    pool_up: vec![true; outputs],
                })
                .collect(),
            counters: NetworkCounters::default(),
            scratch: CycleScratch::default(),
        }
    }

    /// The scheduling policy in force.
    #[must_use]
    pub fn policy(&self) -> CrossbarPolicy {
        self.policy
    }

    /// Worst-case request-cycle cost of one partition in gate delays,
    /// `4(j + k)` (Section IV).
    #[must_use]
    pub fn request_cycle_gate_delay(&self) -> u32 {
        self.partitions[0].fabric.request_cycle_gate_delay()
    }
}

impl ResourceNetwork for CrossbarNetwork {
    fn processors(&self) -> usize {
        self.partitions.len() * self.inputs
    }

    fn total_resources(&self) -> usize {
        self.partitions.len() * self.outputs * self.resources_per_bus as usize
    }

    fn request_cycle(&mut self, pending: &[bool], rng: &mut SimRng) -> Vec<Grant> {
        assert_eq!(pending.len(), self.processors(), "pending vector size");
        let mut grants = Vec::new();
        let resources_per_bus = self.resources_per_bus;
        let CycleScratch {
            requests,
            available,
            procs,
            buses,
            local,
        } = &mut self.scratch;
        for (pi, part) in self.partitions.iter_mut().enumerate() {
            let base = pi * self.inputs;
            requests.clear();
            requests.extend_from_slice(&pending[base..base + self.inputs]);
            let n_pending = requests.iter().filter(|&&b| b).count() as u64;
            if n_pending == 0 {
                continue;
            }
            self.counters.attempts += n_pending;
            available.clear();
            available.extend((0..self.outputs).map(|j| {
                part.pool_up[j]
                    && part.held_by[j].is_none()
                    && part.busy_resources[j] < resources_per_bus
            }));
            match self.policy {
                CrossbarPolicy::FixedPriority => {
                    part.fabric.request_cycle_into(requests, available, local);
                }
                CrossbarPolicy::RandomToken => {
                    // Token scheme: each free bus captures a random pending
                    // processor; equivalently match shuffled lists. A pair
                    // that lands on a failed crosspoint cannot connect and
                    // is rejected for this cycle.
                    procs.clear();
                    procs.extend((0..self.inputs).filter(|&l| requests[l]));
                    buses.clear();
                    buses.extend((0..self.outputs).filter(|&j| available[j]));
                    rng.shuffle(procs);
                    rng.shuffle(buses);
                    local.clear();
                    local.extend(
                        procs
                            .iter()
                            .zip(buses.iter())
                            .map(|(&li, &lj)| (li, lj))
                            .filter(|&(li, lj)| !part.fabric.is_failed(li, lj)),
                    );
                }
            }
            self.counters.rejections += n_pending - local.len() as u64;
            for &(li, lj) in local.iter() {
                part.held_by[lj] = Some(li);
                grants.push(Grant {
                    processor: base + li,
                    port: pi * self.outputs + lj,
                });
            }
        }
        grants
    }

    fn end_transmission(&mut self, grant: Grant) {
        let pi = grant.port / self.outputs;
        let lj = grant.port % self.outputs;
        let part = &mut self.partitions[pi];
        let holder = part.held_by[lj].take().expect("bus was held");
        debug_assert_eq!(holder + pi * self.inputs, grant.processor);
        if self.policy == CrossbarPolicy::FixedPriority {
            // Break the circuit in the fabric: the holder's reset wave.
            part.fabric.reset_row(holder);
        }
        part.busy_resources[lj] += 1;
        debug_assert!(part.busy_resources[lj] <= self.resources_per_bus);
    }

    fn end_service(&mut self, grant: Grant) {
        let pi = grant.port / self.outputs;
        let lj = grant.port % self.outputs;
        let part = &mut self.partitions[pi];
        if !part.pool_up[lj] {
            // The pool failed and was cleared while this task was in
            // flight; nothing is held any more.
            return;
        }
        debug_assert!(part.busy_resources[lj] > 0, "no busy resource to free");
        part.busy_resources[lj] -= 1;
    }

    fn fail_resource(&mut self, port: usize) -> bool {
        let pi = port / self.outputs;
        let lj = port % self.outputs;
        let Some(part) = self.partitions.get_mut(pi) else {
            return false;
        };
        if !part.pool_up[lj] {
            return false;
        }
        part.pool_up[lj] = false;
        // Per the trait contract: release every circuit and busy count at
        // this port internally; the simulator requeues the casualties.
        if let Some(holder) = part.held_by[lj].take() {
            if self.policy == CrossbarPolicy::FixedPriority {
                part.fabric.reset_row(holder);
            }
        }
        part.busy_resources[lj] = 0;
        self.counters.resource_failures += 1;
        true
    }

    fn repair_resource(&mut self, port: usize) -> bool {
        let pi = port / self.outputs;
        let lj = port % self.outputs;
        let Some(part) = self.partitions.get_mut(pi) else {
            return false;
        };
        if part.pool_up[lj] {
            return false;
        }
        part.pool_up[lj] = true;
        self.counters.resource_repairs += 1;
        true
    }

    fn fail_element(&mut self, element: usize) -> bool {
        // Element pi·(j·k) + i·k + j = crosspoint cell (i, j) of partition
        // pi. The cell sticks open (fail-open: an established circuit
        // keeps behaving as connected until its normal reset).
        let cells = self.inputs * self.outputs;
        let (pi, rem) = (element / cells, element % cells);
        let Some(part) = self.partitions.get_mut(pi) else {
            return false;
        };
        let accepted = part
            .fabric
            .fail_cell(rem / self.outputs, rem % self.outputs);
        if accepted {
            self.counters.element_failures += 1;
        }
        accepted
    }

    fn repair_element(&mut self, element: usize) -> bool {
        let cells = self.inputs * self.outputs;
        let (pi, rem) = (element / cells, element % cells);
        let Some(part) = self.partitions.get_mut(pi) else {
            return false;
        };
        let accepted = part
            .fabric
            .repair_cell(rem / self.outputs, rem % self.outputs);
        if accepted {
            self.counters.element_repairs += 1;
        }
        accepted
    }

    fn fault_elements(&self) -> usize {
        self.partitions.len() * self.inputs * self.outputs
    }

    fn take_counters(&mut self) -> NetworkCounters {
        std::mem::take(&mut self.counters)
    }

    fn label(&self) -> &'static str {
        "XBAR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending(n: usize, set: &[usize]) -> Vec<bool> {
        let mut v = vec![false; n];
        for &i in set {
            v[i] = true;
        }
        v
    }

    #[test]
    fn grants_are_maximal_matchings() {
        let mut net = CrossbarNetwork::new(1, 4, 2, 1, CrossbarPolicy::FixedPriority);
        let mut rng = SimRng::new(1);
        let grants = net.request_cycle(&pending(4, &[0, 1, 2, 3]), &mut rng);
        assert_eq!(grants.len(), 2, "two buses, two grants");
    }

    #[test]
    fn bus_held_during_transmission_blocks_its_resources() {
        let mut net = CrossbarNetwork::new(1, 2, 1, 2, CrossbarPolicy::FixedPriority);
        let mut rng = SimRng::new(1);
        let g = net.request_cycle(&pending(2, &[0]), &mut rng);
        assert_eq!(g.len(), 1);
        // Bus held: even with a free resource behind it, no second grant.
        assert!(net.request_cycle(&pending(2, &[1]), &mut rng).is_empty());
        net.end_transmission(g[0]);
        // Bus released, one resource busy, one free: grant flows.
        assert_eq!(net.request_cycle(&pending(2, &[1]), &mut rng).len(), 1);
    }

    #[test]
    fn full_port_blocks_until_service_ends() {
        let mut net = CrossbarNetwork::new(1, 2, 1, 1, CrossbarPolicy::FixedPriority);
        let mut rng = SimRng::new(1);
        let g = net.request_cycle(&pending(2, &[0]), &mut rng);
        net.end_transmission(g[0]);
        assert!(net.request_cycle(&pending(2, &[1]), &mut rng).is_empty());
        net.end_service(g[0]);
        assert_eq!(net.request_cycle(&pending(2, &[1]), &mut rng).len(), 1);
    }

    #[test]
    fn partitions_are_independent() {
        let mut net = CrossbarNetwork::new(2, 2, 2, 1, CrossbarPolicy::FixedPriority);
        let mut rng = SimRng::new(1);
        let g = net.request_cycle(&pending(4, &[0, 2]), &mut rng);
        assert_eq!(g.len(), 2);
        assert_eq!(g[0].port / 2, 0, "first grant in partition 0");
        assert_eq!(g[1].port / 2, 1, "second grant in partition 1");
    }

    #[test]
    fn random_token_covers_all_processors() {
        let mut net = CrossbarNetwork::new(1, 3, 1, 1, CrossbarPolicy::RandomToken);
        let mut rng = SimRng::new(5);
        let mut seen = [false; 3];
        for _ in 0..100 {
            let g = net.request_cycle(&pending(3, &[0, 1, 2]), &mut rng);
            assert_eq!(g.len(), 1);
            seen[g[0].processor] = true;
            net.end_transmission(g[0]);
            net.end_service(g[0]);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fixed_priority_is_asymmetric() {
        let mut net = CrossbarNetwork::new(1, 3, 1, 1, CrossbarPolicy::FixedPriority);
        let mut rng = SimRng::new(5);
        for _ in 0..10 {
            let g = net.request_cycle(&pending(3, &[0, 1, 2]), &mut rng);
            assert_eq!(g[0].processor, 0, "low index always wins");
            net.end_transmission(g[0]);
            net.end_service(g[0]);
        }
    }

    #[test]
    fn from_config_checks_kind() {
        let cfg: SystemConfig = "16/16x1x1 SBUS/2".parse().expect("valid");
        assert!(CrossbarNetwork::from_config(&cfg, CrossbarPolicy::FixedPriority).is_err());
        let cfg: SystemConfig = "16/4x4x4 XBAR/2".parse().expect("valid");
        let net =
            CrossbarNetwork::from_config(&cfg, CrossbarPolicy::FixedPriority).expect("xbar config");
        assert_eq!(net.processors(), 16);
        assert_eq!(net.total_resources(), 32);
        assert_eq!(net.request_cycle_gate_delay(), 4 * 8);
    }

    #[test]
    fn failed_pool_advertises_nothing_until_repair() {
        let mut net = CrossbarNetwork::new(1, 2, 1, 2, CrossbarPolicy::FixedPriority);
        let mut rng = SimRng::new(1);
        let g = net.request_cycle(&pending(2, &[0]), &mut rng);
        assert_eq!(g.len(), 1);
        // Pool dies mid-transmission: the held bus is released internally.
        assert!(net.fail_resource(0));
        assert!(!net.fail_resource(0), "already down");
        assert!(net.request_cycle(&pending(2, &[1]), &mut rng).is_empty());
        assert!(net.repair_resource(0));
        // Full capacity restored: bus free, both resources free.
        assert_eq!(net.request_cycle(&pending(2, &[1]), &mut rng).len(), 1);
        let c = net.take_counters();
        assert_eq!(c.resource_failures, 1);
        assert_eq!(c.resource_repairs, 1);
    }

    #[test]
    fn failed_cell_masks_crosspoint_under_both_policies() {
        for policy in [CrossbarPolicy::FixedPriority, CrossbarPolicy::RandomToken] {
            let mut net = CrossbarNetwork::new(1, 2, 1, 1, policy);
            let mut rng = SimRng::new(3);
            // Element 0 = cell (0, 0): processor 0 can no longer reach the
            // only bus, but processor 1 still can.
            assert!(net.fail_element(0));
            assert!(!net.fail_element(0), "already failed");
            assert!(net.request_cycle(&pending(2, &[0]), &mut rng).is_empty());
            let g = net.request_cycle(&pending(2, &[1]), &mut rng);
            assert_eq!(g.len(), 1, "{policy:?}");
            assert_eq!(g[0].processor, 1);
            net.end_transmission(g[0]);
            net.end_service(g[0]);
            assert!(net.repair_element(0));
            assert_eq!(net.request_cycle(&pending(2, &[0]), &mut rng).len(), 1);
        }
    }

    #[test]
    fn fault_element_space_covers_every_cell() {
        let net = CrossbarNetwork::new(2, 4, 3, 1, CrossbarPolicy::FixedPriority);
        assert_eq!(net.fault_elements(), 2 * 4 * 3);
        let mut net = net;
        assert!(!net.fail_element(24), "out of range is rejected");
    }

    #[test]
    fn counters_accumulate_and_drain() {
        let mut net = CrossbarNetwork::new(1, 3, 1, 1, CrossbarPolicy::FixedPriority);
        let mut rng = SimRng::new(2);
        let _ = net.request_cycle(&pending(3, &[0, 1, 2]), &mut rng);
        let c = net.take_counters();
        assert_eq!(c.attempts, 3);
        assert_eq!(c.rejections, 2);
        assert_eq!(net.take_counters(), NetworkCounters::default());
    }
}
