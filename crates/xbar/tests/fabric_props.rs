//! Property-based tests of the gate-level crossbar fabric.

use rsin_minicheck::check;
use rsin_xbar::{CentralScheduler, CrossbarFabric};

/// On an all-open fabric the wave always produces a maximal matching:
/// exactly min(#requests, #available) grants, one per row and column.
#[test]
fn wave_is_a_maximal_matching() {
    check(256, |g| {
        let p = g.usize_in(1, 12);
        let m = g.usize_in(1, 12);
        let req_mask = g.u64();
        let avail_mask = g.u64();
        let requests: Vec<bool> = (0..p).map(|i| req_mask >> i & 1 == 1).collect();
        let available: Vec<bool> = (0..m).map(|j| avail_mask >> j & 1 == 1).collect();
        let mut fabric = CrossbarFabric::new(p, m);
        let grants = fabric.request_cycle(&requests, &available);

        let n_req = requests.iter().filter(|&&b| b).count();
        let n_avail = available.iter().filter(|&&b| b).count();
        assert_eq!(grants.len(), n_req.min(n_avail));

        let mut rows = vec![false; p];
        let mut cols = vec![false; m];
        for (i, j) in &grants {
            assert!(requests[*i], "grant to a non-requesting row");
            assert!(available[*j], "grant on an unavailable column");
            assert!(!rows[*i] && !cols[*j], "row/column double-granted");
            rows[*i] = true;
            cols[*j] = true;
        }
    });
}

/// The wave and the centralized scheduler always agree on cardinality
/// (the crossbar is nonblocking, so both are maximal).
#[test]
fn wave_matches_central_cardinality() {
    check(256, |g| {
        let p = g.usize_in(1, 10);
        let m = g.usize_in(1, 10);
        let req_mask = g.u64();
        let avail_mask = g.u64();
        let requests: Vec<bool> = (0..p).map(|i| req_mask >> i & 1 == 1).collect();
        let available: Vec<bool> = (0..m).map(|j| avail_mask >> j & 1 == 1).collect();
        let mut fabric = CrossbarFabric::new(p, m);
        let central = CentralScheduler::new(p, m);
        let wave = fabric.request_cycle(&requests, &available);
        let seq = central.allocate(&requests, &available);
        assert_eq!(wave.len(), seq.len());
    });
}

/// Reset cycles clear exactly the requested rows and nothing else.
#[test]
fn reset_is_row_local() {
    check(256, |g| {
        let p = g.usize_in(1, 10);
        let m = g.usize_in(1, 10);
        let reset_mask = g.u64();
        let mut fabric = CrossbarFabric::new(p, m);
        // Connect as many rows as possible.
        let grants = fabric.request_cycle(&vec![true; p], &vec![true; m]);
        let resets: Vec<bool> = (0..p).map(|i| reset_mask >> i & 1 == 1).collect();
        fabric.reset_cycle(&resets);
        for (i, j) in grants {
            assert_eq!(
                fabric.is_connected(i, j),
                !resets[i],
                "row {} reset={} but latch mismatch",
                i,
                resets[i]
            );
        }
    });
}

/// Two consecutive request cycles never double-book a column: the
/// second cycle only fills columns the first left open.
#[test]
fn consecutive_cycles_compose() {
    check(256, |g| {
        let p = g.usize_in(2, 10);
        let m = g.usize_in(1, 10);
        let first_mask = g.u64();
        let first: Vec<bool> = (0..p).map(|i| first_mask >> i & 1 == 1).collect();
        let mut fabric = CrossbarFabric::new(p, m);
        let g1 = fabric.request_cycle(&first, &vec![true; m]);
        // Bus controllers drop Y for held columns.
        let mut avail = vec![true; m];
        for &(_, j) in &g1 {
            avail[j] = false;
        }
        let second: Vec<bool> = (0..p)
            .map(|i| !first[i]) // the other processors request now
            .collect();
        let g2 = fabric.request_cycle(&second, &avail);
        let mut cols = vec![false; m];
        for (_, j) in g1.iter().chain(g2.iter()) {
            assert!(!cols[*j], "column {j} double-booked across cycles");
            cols[*j] = true;
        }
    });
}
