//! Bit-level permutations used by multistage network wirings.

/// Returns `log2(n)` when `n` is a power of two, `None` otherwise.
///
/// # Examples
///
/// ```
/// use rsin_topology::log2_exact;
///
/// assert_eq!(log2_exact(8), Some(3));
/// assert_eq!(log2_exact(6), None);
/// assert_eq!(log2_exact(1), Some(0));
/// assert_eq!(log2_exact(0), None);
/// ```
#[must_use]
pub fn log2_exact(n: usize) -> Option<u32> {
    if n == 0 || !n.is_power_of_two() {
        None
    } else {
        Some(n.trailing_zeros())
    }
}

/// The perfect shuffle on `bits`-bit indices: rotate the index left by one
/// (the deck-interleave permutation of Stone).
///
/// # Panics
///
/// Panics if `w` does not fit in `bits` bits or `bits == 0`.
///
/// # Examples
///
/// ```
/// use rsin_topology::shuffle;
///
/// // For 8 wires (3 bits): 0→0, 1→2, 2→4, 3→6, 4→1, 5→3, 6→5, 7→7.
/// assert_eq!(shuffle(3, 3), 6);
/// assert_eq!(shuffle(3, 4), 1);
/// ```
#[must_use]
pub fn shuffle(bits: u32, w: usize) -> usize {
    assert!(bits > 0, "need at least one bit");
    assert!(w < (1 << bits), "index {w} out of range for {bits} bits");
    let top = (w >> (bits - 1)) & 1;
    ((w << 1) & ((1 << bits) - 1)) | top
}

/// Inverse perfect shuffle: rotate the index right by one.
///
/// # Panics
///
/// Panics if `w` does not fit in `bits` bits or `bits == 0`.
#[must_use]
pub fn unshuffle(bits: u32, w: usize) -> usize {
    assert!(bits > 0, "need at least one bit");
    assert!(w < (1 << bits), "index {w} out of range for {bits} bits");
    (w >> 1) | ((w & 1) << (bits - 1))
}

/// Extracts bit `k` (0 = least significant) of `w` as 0 or 1.
#[must_use]
pub fn bit(w: usize, k: u32) -> usize {
    (w >> k) & 1
}

/// Returns `w` with bit `k` set to `v` (0 or 1).
///
/// # Panics
///
/// Panics if `v > 1`.
#[must_use]
pub fn with_bit(w: usize, k: u32, v: usize) -> usize {
    assert!(v <= 1, "bit value must be 0 or 1");
    (w & !(1 << k)) | (v << k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_is_rotation() {
        // 3 bits: w = b2 b1 b0 → b1 b0 b2.
        for w in 0..8 {
            let expect = ((w << 1) & 7) | (w >> 2);
            assert_eq!(shuffle(3, w), expect);
        }
    }

    #[test]
    fn shuffle_unshuffle_roundtrip() {
        for bits in 1..=6 {
            for w in 0..(1usize << bits) {
                assert_eq!(unshuffle(bits, shuffle(bits, w)), w);
                assert_eq!(shuffle(bits, unshuffle(bits, w)), w);
            }
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut seen = [false; 16];
        for w in 0..16 {
            seen[shuffle(4, w)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn repeated_shuffle_is_identity_after_bits_applications() {
        for bits in 1..=5 {
            for w in 0..(1usize << bits) {
                let mut x = w;
                for _ in 0..bits {
                    x = shuffle(bits, x);
                }
                assert_eq!(x, w, "shuffle^{bits} must be identity");
            }
        }
    }

    #[test]
    fn bit_helpers() {
        assert_eq!(bit(0b101, 0), 1);
        assert_eq!(bit(0b101, 1), 0);
        assert_eq!(with_bit(0b101, 1, 1), 0b111);
        assert_eq!(with_bit(0b101, 0, 0), 0b100);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shuffle_range_checked() {
        let _ = shuffle(3, 8);
    }
}
