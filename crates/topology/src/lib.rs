//! # rsin-topology — multistage network topologies for resource sharing
//!
//! Topology substrate for the RSIN reproduction (Wah, 1983): the wiring,
//! routing, and conflict structure of the multistage networks the paper
//! evaluates, independent of any scheduling policy or queueing dynamics.
//!
//! - [`shuffle`] / [`unshuffle`] and friends: the bit permutations behind
//!   the wirings.
//! - [`OmegaTopology`] and [`CubeTopology`]: `N×N` blocking networks of 2×2
//!   interchange boxes with destination-tag routing ([`Multistage`]).
//! - [`Route`] / [`Link`]: circuits as link sets, with conflict detection.
//! - [`matching`]: centralized-scheduler baselines — exhaustive optimal
//!   matching (the paper's `(x choose y)·y!` enumeration) and first-fit
//!   greedy — plus verification of the paper's Section II blocking example.
//!
//! # Example
//!
//! ```
//! use rsin_topology::{matching, Multistage, OmegaTopology};
//!
//! let net = OmegaTopology::new(8)?;
//! // Processors 0,1,2 request; resources 0,1,2 are free (Section II).
//! let best = matching::max_allocation(&net, &[0, 1, 2], &[0, 1, 2]);
//! assert_eq!(best.len(), 3); // a clever scheduler allocates all three
//!
//! // ...but the fixed mapping (0→0, 1→2, 2→1) blocks:
//! assert!(!matching::mapping_is_conflict_free(
//!     &net,
//!     &[(0, 0), (1, 2), (2, 1)],
//! ));
//! # Ok::<(), rsin_topology::TopologyError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod matching;
mod multistage;
mod perm;

pub use multistage::{CubeTopology, Link, Multistage, OmegaTopology, Route, TopologyError};
pub use perm::{bit, log2_exact, shuffle, unshuffle, with_bit};
