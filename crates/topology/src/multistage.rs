//! Multistage network topologies: Omega and indirect binary n-cube.
//!
//! Both networks connect `N = 2^n` inputs to `N` outputs through `n` stages
//! of 2×2 interchange boxes (N/2 boxes per stage) and both are *blocking*:
//! some simultaneous connection sets collide on links. What differs is the
//! interstage wiring — the Omega network applies a perfect shuffle before
//! every stage (Lawrie), the indirect binary n-cube pairs wires differing in
//! one address bit per stage (Pease).
//!
//! A circuit through the network is modeled as the sequence of *output
//! links* it occupies, one per stage; two circuits conflict exactly when
//! they share a link (sharing a 2×2 box through distinct inputs and
//! distinct outputs is always realizable, so boxes themselves never
//! conflict).

use crate::perm::{bit, log2_exact, shuffle, with_bit};

/// One link of a multistage network: the wire leaving `stage` at index
/// `wire` (0-based within the stage boundary).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Link {
    /// Stage the link leaves (0-based).
    pub stage: u32,
    /// Wire index within the stage boundary.
    pub wire: usize,
}

/// A source-to-destination circuit: the ordered set of links it occupies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Route {
    /// Input (processor-side) port index.
    pub source: usize,
    /// Output (resource-side) port index.
    pub dest: usize,
    /// Output link per stage, in stage order.
    pub links: Vec<Link>,
}

impl Route {
    /// Whether this circuit shares any link with `other`.
    #[must_use]
    pub fn conflicts_with(&self, other: &Route) -> bool {
        self.links.iter().any(|l| other.links.contains(l))
    }
}

/// A 2×2-box multistage topology with destination-tag routing.
///
/// The trait is object-safe so simulators can hold `Box<dyn Multistage>`.
pub trait Multistage: std::fmt::Debug + Send + Sync {
    /// Number of input (= output) ports, a power of two.
    fn size(&self) -> usize;

    /// Number of stages (`log2(size)`).
    fn stages(&self) -> u32;

    /// The unique destination-tag route from `source` to `dest`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `source` or `dest` is out of range.
    fn route(&self, source: usize, dest: usize) -> Route;

    /// The interchange box (stage, box index) that produces `link`.
    fn box_of(&self, link: Link) -> (u32, usize) {
        (link.stage, link.wire >> 1)
    }
}

/// The Omega network (Lawrie): a perfect shuffle before each of the
/// `log2 N` box stages.
///
/// # Examples
///
/// ```
/// use rsin_topology::{Multistage, OmegaTopology};
///
/// let omega = OmegaTopology::new(8)?;
/// let route = omega.route(3, 5);
/// assert_eq!(route.links.len(), 3);
/// assert_eq!(route.links.last().unwrap().wire, 5);
/// # Ok::<(), rsin_topology::TopologyError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OmegaTopology {
    bits: u32,
}

/// The indirect binary n-cube network (Pease): stage `k` pairs wires that
/// differ in address bit `k`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CubeTopology {
    bits: u32,
}

/// Errors constructing a topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// The port count must be a power of two and at least 2.
    NotPowerOfTwo {
        /// The offending size.
        size: usize,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::NotPowerOfTwo { size } => {
                write!(f, "network size must be a power of two >= 2, got {size}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

impl OmegaTopology {
    /// Creates an `size × size` Omega network.
    ///
    /// # Errors
    ///
    /// [`TopologyError::NotPowerOfTwo`] unless `size` is a power of two ≥ 2.
    pub fn new(size: usize) -> Result<Self, TopologyError> {
        match log2_exact(size) {
            Some(bits) if bits >= 1 => Ok(OmegaTopology { bits }),
            _ => Err(TopologyError::NotPowerOfTwo { size }),
        }
    }
}

impl Multistage for OmegaTopology {
    fn size(&self) -> usize {
        1 << self.bits
    }

    fn stages(&self) -> u32 {
        self.bits
    }

    fn route(&self, source: usize, dest: usize) -> Route {
        let n = self.size();
        assert!(source < n && dest < n, "port out of range");
        let mut w = source;
        let mut links = Vec::with_capacity(self.bits as usize);
        for k in 0..self.bits {
            w = shuffle(self.bits, w);
            let boxid = w >> 1;
            let out = bit(dest, self.bits - 1 - k);
            w = (boxid << 1) | out;
            links.push(Link { stage: k, wire: w });
        }
        debug_assert_eq!(w, dest, "destination-tag routing must terminate at dest");
        Route {
            source,
            dest,
            links,
        }
    }
}

impl CubeTopology {
    /// Creates an `size × size` indirect binary n-cube network.
    ///
    /// # Errors
    ///
    /// [`TopologyError::NotPowerOfTwo`] unless `size` is a power of two ≥ 2.
    pub fn new(size: usize) -> Result<Self, TopologyError> {
        match log2_exact(size) {
            Some(bits) if bits >= 1 => Ok(CubeTopology { bits }),
            _ => Err(TopologyError::NotPowerOfTwo { size }),
        }
    }
}

impl Multistage for CubeTopology {
    fn size(&self) -> usize {
        1 << self.bits
    }

    fn stages(&self) -> u32 {
        self.bits
    }

    fn route(&self, source: usize, dest: usize) -> Route {
        let n = self.size();
        assert!(source < n && dest < n, "port out of range");
        let mut w = source;
        let mut links = Vec::with_capacity(self.bits as usize);
        for k in 0..self.bits {
            w = with_bit(w, k, bit(dest, k));
            links.push(Link { stage: k, wire: w });
        }
        debug_assert_eq!(w, dest, "destination-tag routing must terminate at dest");
        Route {
            source,
            dest,
            links,
        }
    }

    fn box_of(&self, link: Link) -> (u32, usize) {
        // Stage-k boxes pair wires differing in bit k: drop bit k.
        let k = link.stage;
        let w = link.wire;
        let high = (w >> (k + 1)) << k;
        let low = w & ((1usize << k) - 1);
        (k, high | low)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omega_routes_terminate_at_destination() {
        let omega = OmegaTopology::new(16).expect("power of two");
        for s in 0..16 {
            for d in 0..16 {
                let r = omega.route(s, d);
                assert_eq!(r.links.len(), 4);
                assert_eq!(r.links.last().expect("nonempty").wire, d);
                assert_eq!(r.source, s);
                assert_eq!(r.dest, d);
            }
        }
    }

    #[test]
    fn cube_routes_terminate_at_destination() {
        let cube = CubeTopology::new(16).expect("power of two");
        for s in 0..16 {
            for d in 0..16 {
                let r = cube.route(s, d);
                assert_eq!(r.links.last().expect("nonempty").wire, d);
            }
        }
    }

    #[test]
    fn identical_route_conflicts_with_itself() {
        let omega = OmegaTopology::new(8).expect("power of two");
        let r = omega.route(0, 0);
        assert!(r.conflicts_with(&r));
    }

    #[test]
    fn distinct_destinations_never_conflict_at_last_stage() {
        let omega = OmegaTopology::new(8).expect("power of two");
        let a = omega.route(0, 3);
        let b = omega.route(1, 4);
        let last_a = a.links.last().expect("nonempty");
        let last_b = b.links.last().expect("nonempty");
        assert_ne!(last_a.wire, last_b.wire);
    }

    #[test]
    fn omega_identity_permutation_is_conflict_free() {
        // The identity permutation routes without conflicts in an Omega net.
        let omega = OmegaTopology::new(8).expect("power of two");
        let routes: Vec<Route> = (0..8).map(|i| omega.route(i, i)).collect();
        for i in 0..8 {
            for j in (i + 1)..8 {
                assert!(
                    !routes[i].conflicts_with(&routes[j]),
                    "identity must be realizable: {i} vs {j}"
                );
            }
        }
    }

    #[test]
    fn omega_known_blocking_pair() {
        // Classic Omega blocking: sources 0 and 1 to destinations 0 and 1...
        // actually 0→0 and 4→1 collide at stage 0 (both shuffle onto box 0
        // and need distinct outputs — fine), so test a genuinely colliding
        // pair: 0→0 and 4→2 share the stage-0 output wire 0.
        let omega = OmegaTopology::new(8).expect("power of two");
        let a = omega.route(0, 0);
        let b = omega.route(4, 2);
        assert!(a.conflicts_with(&b), "{a:?} vs {b:?}");
    }

    #[test]
    fn box_of_groups_wire_pairs() {
        let omega = OmegaTopology::new(8).expect("power of two");
        assert_eq!(omega.box_of(Link { stage: 1, wire: 4 }), (1, 2));
        assert_eq!(omega.box_of(Link { stage: 1, wire: 5 }), (1, 2));
        let cube = CubeTopology::new(8).expect("power of two");
        // Stage 1 pairs w and w^2: wires 4 and 6 share a box.
        assert_eq!(
            cube.box_of(Link { stage: 1, wire: 4 }),
            cube.box_of(Link { stage: 1, wire: 6 })
        );
        assert_ne!(
            cube.box_of(Link { stage: 1, wire: 4 }),
            cube.box_of(Link { stage: 1, wire: 5 })
        );
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(OmegaTopology::new(6).is_err());
        assert!(OmegaTopology::new(0).is_err());
        assert!(OmegaTopology::new(1).is_err());
        assert!(CubeTopology::new(12).is_err());
        let err = OmegaTopology::new(6).expect_err("must fail");
        assert!(err.to_string().contains("power of two"));
    }

    #[test]
    fn trait_objects_work() {
        let nets: Vec<Box<dyn Multistage>> = vec![
            Box::new(OmegaTopology::new(8).expect("ok")),
            Box::new(CubeTopology::new(8).expect("ok")),
        ];
        for net in &nets {
            assert_eq!(net.size(), 8);
            assert_eq!(net.stages(), 3);
            let r = net.route(2, 6);
            assert_eq!(r.links.len(), 3);
        }
    }
}
