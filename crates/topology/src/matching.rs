//! Processor-to-resource matching through a blocking network.
//!
//! Section II of the paper shows that in an 8×8 Omega network with
//! processors {0, 1, 2} requesting and resources {0, 1, 2} free, some
//! processor→resource mappings allocate all three resources while others can
//! allocate at most two: the *scheduler* determines the achievable resource
//! utilization, which motivates distributed scheduling that can search
//! alternate resources when a path is blocked.
//!
//! This module provides the centralized baselines:
//!
//! * [`max_allocation`] — exhaustive branch-and-bound over ordered mappings
//!   (the paper's "`(x choose y)·y!` mappings" enumeration), optimal but
//!   exponential: practical only when few processors request simultaneously.
//! * [`greedy_allocation`] — first-fit heuristic, linear in requests ×
//!   resources; what a simple hardware allocator would do.

use crate::multistage::{Multistage, Route};

/// The outcome of a matching attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Allocation {
    /// Chosen (processor, resource-port) pairs, conflict-free by
    /// construction.
    pub pairs: Vec<(usize, usize)>,
}

impl Allocation {
    /// Number of granted requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether nothing was granted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Checks that a specific mapping is realizable (no shared links).
///
/// # Panics
///
/// Panics if any port index is out of range for the network.
#[must_use]
pub fn mapping_is_conflict_free(net: &dyn Multistage, pairs: &[(usize, usize)]) -> bool {
    let routes: Vec<Route> = pairs.iter().map(|&(s, d)| net.route(s, d)).collect();
    for i in 0..routes.len() {
        for j in (i + 1)..routes.len() {
            if routes[i].conflicts_with(&routes[j]) {
                return false;
            }
        }
    }
    true
}

/// Exhaustive optimal matching: the maximum number of requesting processors
/// that can be simultaneously connected to distinct free resource ports.
///
/// Runs a branch-and-bound over assignment choices (including "skip this
/// requester"), pruning branches that cannot beat the incumbent. Complexity
/// grows like the paper's `(x choose y)·y!`, so keep `requesters` and
/// `free_ports` small (≤ 8 is instant).
///
/// # Panics
///
/// Panics if any port index is out of range.
#[must_use]
pub fn max_allocation(
    net: &dyn Multistage,
    requesters: &[usize],
    free_ports: &[usize],
) -> Allocation {
    struct Search<'a> {
        net: &'a dyn Multistage,
        requesters: &'a [usize],
        free_ports: &'a [usize],
        used: Vec<bool>,
        routes: Vec<Route>,
        pairs: Vec<(usize, usize)>,
        best: Vec<(usize, usize)>,
    }

    impl Search<'_> {
        fn recurse(&mut self, i: usize) {
            if self.pairs.len() + (self.requesters.len() - i) <= self.best.len() {
                return; // cannot beat incumbent
            }
            if i == self.requesters.len() {
                if self.pairs.len() > self.best.len() {
                    self.best = self.pairs.clone();
                }
                return;
            }
            let src = self.requesters[i];
            for j in 0..self.free_ports.len() {
                if self.used[j] {
                    continue;
                }
                let route = self.net.route(src, self.free_ports[j]);
                if self.routes.iter().any(|r| r.conflicts_with(&route)) {
                    continue;
                }
                self.used[j] = true;
                self.routes.push(route);
                self.pairs.push((src, self.free_ports[j]));
                self.recurse(i + 1);
                self.pairs.pop();
                self.routes.pop();
                self.used[j] = false;
            }
            // Also consider leaving this requester unserved.
            self.recurse(i + 1);
        }
    }

    let mut search = Search {
        net,
        requesters,
        free_ports,
        used: vec![false; free_ports.len()],
        routes: Vec::new(),
        pairs: Vec::new(),
        best: Vec::new(),
    };
    search.recurse(0);
    Allocation { pairs: search.best }
}

/// First-fit greedy matching: requesters in order, each taking the first
/// free resource port whose route does not conflict with routes already
/// granted.
///
/// # Panics
///
/// Panics if any port index is out of range.
#[must_use]
pub fn greedy_allocation(
    net: &dyn Multistage,
    requesters: &[usize],
    free_ports: &[usize],
) -> Allocation {
    let mut used = vec![false; free_ports.len()];
    let mut routes: Vec<Route> = Vec::new();
    let mut pairs = Vec::new();
    for &src in requesters {
        for (j, &port) in free_ports.iter().enumerate() {
            if used[j] {
                continue;
            }
            let route = net.route(src, port);
            if routes.iter().any(|r| r.conflicts_with(&route)) {
                continue;
            }
            used[j] = true;
            routes.push(route);
            pairs.push((src, port));
            break;
        }
    }
    Allocation { pairs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multistage::OmegaTopology;

    /// The paper's Section II example: 8×8 Omega, processors 0,1,2
    /// requesting, resources 0,1,2 available.
    #[test]
    fn paper_section2_good_mappings_allocate_all_three() {
        let net = OmegaTopology::new(8).expect("8x8");
        for mapping in [
            [(0, 0), (1, 1), (2, 2)],
            [(0, 1), (1, 0), (2, 2)],
            [(0, 2), (1, 0), (2, 1)],
            [(0, 2), (1, 1), (2, 0)],
        ] {
            assert!(
                mapping_is_conflict_free(&net, &mapping),
                "paper says {mapping:?} is realizable"
            );
        }
    }

    #[test]
    fn paper_section2_bad_mappings_block() {
        let net = OmegaTopology::new(8).expect("8x8");
        for mapping in [[(0, 0), (1, 2), (2, 1)], [(0, 1), (1, 2), (2, 0)]] {
            assert!(
                !mapping_is_conflict_free(&net, &mapping),
                "paper says {mapping:?} blocks"
            );
        }
    }

    #[test]
    fn optimal_matching_finds_all_three() {
        let net = OmegaTopology::new(8).expect("8x8");
        let alloc = max_allocation(&net, &[0, 1, 2], &[0, 1, 2]);
        assert_eq!(alloc.len(), 3, "a full allocation exists per the paper");
        assert!(mapping_is_conflict_free(&net, &alloc.pairs));
    }

    #[test]
    fn bad_mapping_order_limits_greedy_but_not_optimal() {
        // Greedy in identity order happens to succeed here; force the bad
        // case by offering resources in an order that leads greedy astray.
        let net = OmegaTopology::new(8).expect("8x8");
        // With resources offered as [0, 2, 1]: P0 takes 0, P1 takes 2
        // (0 is used), P2 tries 1 — the paper's blocked mapping
        // {(0,0),(1,2),(2,1)}.
        let greedy = greedy_allocation(&net, &[0, 1, 2], &[0, 2, 1]);
        let optimal = max_allocation(&net, &[0, 1, 2], &[0, 2, 1]);
        assert_eq!(optimal.len(), 3);
        assert!(greedy.len() <= optimal.len());
    }

    #[test]
    fn empty_inputs_give_empty_allocation() {
        let net = OmegaTopology::new(8).expect("8x8");
        assert!(max_allocation(&net, &[], &[0, 1]).is_empty());
        assert!(greedy_allocation(&net, &[0, 1], &[]).is_empty());
    }

    #[test]
    fn more_requesters_than_resources() {
        let net = OmegaTopology::new(8).expect("8x8");
        let alloc = max_allocation(&net, &[0, 1, 2, 3, 4], &[6, 7]);
        assert!(alloc.len() <= 2);
        assert!(!alloc.is_empty());
        assert!(mapping_is_conflict_free(&net, &alloc.pairs));
    }

    #[test]
    fn greedy_never_produces_conflicts() {
        let net = OmegaTopology::new(16).expect("16x16");
        let alloc = greedy_allocation(&net, &[0, 3, 5, 9, 12], &[1, 2, 8, 10, 15]);
        assert!(mapping_is_conflict_free(&net, &alloc.pairs));
    }

    #[test]
    fn optimal_at_least_as_good_as_greedy_random_cases() {
        let net = OmegaTopology::new(8).expect("8x8");
        // Deterministic pseudo-random subsets.
        let mut seed = 12345u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as usize
        };
        for _ in 0..50 {
            let reqs: Vec<usize> = (0..8).filter(|_| next() % 2 == 0).collect();
            let free: Vec<usize> = (0..8).filter(|_| next() % 2 == 0).collect();
            let g = greedy_allocation(&net, &reqs, &free);
            let o = max_allocation(&net, &reqs, &free);
            assert!(
                o.len() >= g.len(),
                "optimal {} < greedy {}",
                o.len(),
                g.len()
            );
            assert!(o.len() <= reqs.len().min(free.len()));
        }
    }
}
