//! Packed `u64` bit-lane primitives for gate-level network emulation.
//!
//! The paper's interconnection hardware is a sea of identical one-bit cells:
//! the crossbar's Table-I cell is 11 gates plus a latch, the Omega switch box
//! is five control signals. Evaluating those cells one `bool` at a time wastes
//! 63/64ths of every ALU operation. This crate provides the word-level
//! building blocks that let the resolvers in `rsin-xbar` and `rsin-omega`
//! evaluate 64 cells or switch boxes per instruction:
//!
//! - tail-masked bit vectors (`words_for`, `tail_mask`, `pack_bools`) so
//!   networks whose width is not a multiple of 64 keep garbage lanes zeroed;
//! - parallel-prefix (Kogge–Stone-style) arbitration chains
//!   ([`prefix_or_up`], [`lowest_set`], [`rotating_grant`]) replacing
//!   per-cell daisy-chain sweeps with log-depth carry lookahead;
//! - wiring-permutation shuffles ([`or_pairs_compress`], [`tile_double`],
//!   [`swap_or`]) that evaluate a whole Omega/Cube stage of 2x2 boxes as a
//!   handful of mask-and-shift operations.
//!
//! # Lane-layout invariant
//!
//! Every multi-word vector packs bit `i` into word `i / 64`, bit `i % 64`
//! (little-endian lanes). All helpers preserve the invariant that bits at or
//! above the logical length — the *tail* of the last word — are zero, and
//! they assume their inputs honour it. Callers that build vectors by hand
//! must finish with `words[last] &= tail_mask(len)`.

#![warn(missing_docs)]

/// Number of cell lanes carried per machine word.
pub const WORD_BITS: usize = 64;

/// Number of `u64` words needed to hold `bits` lanes.
#[inline]
pub const fn words_for(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS)
}

/// Mask of valid lanes in the **last** word of a `bits`-lane vector.
///
/// All-ones when `bits` is a positive multiple of 64; zero when `bits == 0`.
#[inline]
pub const fn tail_mask(bits: usize) -> u64 {
    if bits == 0 {
        0
    } else if bits.is_multiple_of(WORD_BITS) {
        u64::MAX
    } else {
        (1u64 << (bits % WORD_BITS)) - 1
    }
}

/// Packs a `bool` slice into `words`, clearing it first.
///
/// The destination is resized to `words_for(bools.len())`; tail lanes are
/// zero by construction.
#[inline]
pub fn pack_bools(bools: &[bool], words: &mut Vec<u64>) {
    words.clear();
    words.reserve(words_for(bools.len()));
    // Branchless accumulation (`b as u64` instead of a per-lane test) so the
    // compiler can unroll and vectorize the gather; this runs on every
    // request cycle of the crossbar simulators.
    words.extend(bools.chunks(WORD_BITS).map(|chunk| {
        let mut w = 0u64;
        for (i, &b) in chunk.iter().enumerate() {
            w |= u64::from(b) << i;
        }
        w
    }));
}

/// Reads lane `i` of a packed vector.
#[inline]
pub fn test_bit(words: &[u64], i: usize) -> bool {
    words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
}

/// Sets lane `i` of a packed vector.
#[inline]
pub fn set_bit(words: &mut [u64], i: usize) {
    words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
}

/// Clears lane `i` of a packed vector.
#[inline]
pub fn clear_bit(words: &mut [u64], i: usize) {
    words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
}

/// Population count across all words.
#[inline]
pub fn count_ones(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// Upward Kogge–Stone prefix-OR: bit `i` of the result is the OR of bits
/// `0..=i` of the input, computed in six log-depth doubling steps.
///
/// This is the software transliteration of a carry-lookahead chain: each
/// doubling step halves the remaining chain length exactly like the
/// `(g, p)` tree of a Kogge–Stone adder.
#[inline]
pub fn prefix_or_up(x: u64) -> u64 {
    let mut p = x;
    p |= p << 1;
    p |= p << 2;
    p |= p << 4;
    p |= p << 8;
    p |= p << 16;
    p |= p << 32;
    p
}

/// Isolates the lowest set bit of `x` (zero if `x == 0`).
///
/// `x & x.wrapping_neg()` is the closed form of the parallel-prefix grant
/// chain `x & !(prefix_or_up(x) << 1)`: two's-complement negation *is* a
/// carry chain, and hardware resolves it with the same Kogge–Stone lookahead
/// tree. A unit test asserts the two forms agree on random words.
#[inline]
pub fn lowest_set(x: u64) -> u64 {
    x & x.wrapping_neg()
}

/// Index of the lowest set lane across all words, or `None` if empty.
#[inline]
pub fn first_set(words: &[u64]) -> Option<usize> {
    for (w, &word) in words.iter().enumerate() {
        if word != 0 {
            return Some(w * WORD_BITS + word.trailing_zeros() as usize);
        }
    }
    None
}

/// Index of the lowest set lane at position `start` or later.
#[inline]
pub fn first_set_at_or_after(words: &[u64], start: usize) -> Option<usize> {
    let w0 = start / WORD_BITS;
    if w0 >= words.len() {
        return None;
    }
    let below = (1u64 << (start % WORD_BITS)) - 1;
    let masked = words[w0] & !below;
    if masked != 0 {
        return Some(w0 * WORD_BITS + masked.trailing_zeros() as usize);
    }
    for (off, &word) in words[w0 + 1..].iter().enumerate() {
        if word != 0 {
            return Some((w0 + 1 + off) * WORD_BITS + word.trailing_zeros() as usize);
        }
    }
    None
}

/// Rotating-priority (token) grant: the lowest set lane at or after `token`,
/// wrapping to the lowest set lane overall when nothing is set above the
/// token. `None` when the vector is empty.
///
/// This replaces the O(n) rotating daisy chain of a round-robin arbiter with
/// two parallel-prefix selects, as in the reconfigurable round-robin arbiter
/// decomposition: grant = lsb(req & ~below(token)) else lsb(req).
#[inline]
pub fn rotating_grant(words: &[u64], token: usize) -> Option<usize> {
    first_set_at_or_after(words, token).or_else(|| first_set(words))
}

/// Doubled-mask rotate: the low `n` lanes of `mask` rotated right by `by`
/// positions (lane `by` of the input lands in lane 0 of the output). Lanes
/// at or above `n` must be zero and stay zero.
///
/// This is the doubled-vector trick of the parallel round-robin arbiter
/// decomposition: concatenating the mask with itself turns a circular
/// priority window into a linear one, so a single shift realigns the
/// rotation origin instead of an O(n) barrel sweep.
#[inline]
pub fn rotate_lanes_right(mask: u64, n: usize, by: usize) -> u64 {
    debug_assert!((1..=WORD_BITS).contains(&n), "lane count out of range");
    debug_assert_eq!(mask & !tail_mask(n), 0, "garbage above lane n");
    let by = by % n;
    let doubled = u128::from(mask) | (u128::from(mask) << n);
    ((doubled >> by) as u64) & tail_mask(n)
}

/// Rank of lane `who` among the set lanes of `mask` under the circular
/// priority order that starts at lane `token`: the number of set lanes
/// strictly between the token (inclusive) and `who` going upward with
/// wraparound. `who`'s own lane does not count toward its rank.
///
/// This is the round-robin arbiter's priority resolution as two constant-
/// depth word operations — a doubled-mask rotate to move the token to lane
/// 0 followed by a prefix popcount — replacing the O(n) circular-distance
/// scan a naive token arbiter performs per request.
#[inline]
pub fn rotating_rank(mask: u64, n: usize, token: usize, who: usize) -> u32 {
    debug_assert!(who < n, "who out of range");
    let token = token % n;
    let rot = rotate_lanes_right(mask, n, token);
    let pos = (who + n - token) % n;
    (rot & ((1u64 << pos) - 1)).count_ones()
}

/// Index of the `n`-th (0-based) set lane, or `None` if fewer than `n + 1`
/// lanes are set. Used by random arbitration to pick the winner drawn by the
/// RNG without materialising a candidate list.
#[inline]
pub fn select_nth_set(words: &[u64], mut n: usize) -> Option<usize> {
    for (w, &word) in words.iter().enumerate() {
        let pop = word.count_ones() as usize;
        if n < pop {
            // Drop the n lowest set bits one at a time (n < 64, usually tiny).
            let mut v = word;
            for _ in 0..n {
                v &= v - 1;
            }
            return Some(w * WORD_BITS + v.trailing_zeros() as usize);
        }
        n -= pop;
    }
    None
}

const EVEN_1: u64 = 0x5555_5555_5555_5555;
const EVEN_2: u64 = 0x3333_3333_3333_3333;
const EVEN_4: u64 = 0x0f0f_0f0f_0f0f_0f0f;
const EVEN_8: u64 = 0x00ff_00ff_00ff_00ff;
const EVEN_16: u64 = 0x0000_ffff_0000_ffff;
const EVEN_32: u64 = 0x0000_0000_ffff_ffff;

/// Compresses the even-indexed bits of `x` into the low 32 bits
/// (bit `2i` of the input becomes bit `i` of the output).
#[inline]
fn compress_even(x: u64) -> u64 {
    let mut t = x & EVEN_1;
    t = (t | (t >> 1)) & EVEN_2;
    t = (t | (t >> 2)) & EVEN_4;
    t = (t | (t >> 4)) & EVEN_8;
    t = (t | (t >> 8)) & EVEN_16;
    t = (t | (t >> 16)) & EVEN_32;
    t
}

/// Pairwise-OR compression: output lane `b` is `src[2b] | src[2b+1]`, for
/// `b < pair_count`. `dst` is resized to `words_for(pair_count)`.
///
/// This evaluates one Omega stage of 2x2 switch boxes in a handful of
/// mask-and-shift ops: a box's output-side reachability is the OR of its two
/// outgoing wires, and Omega box `b` owns wires `2b` and `2b+1`.
pub fn or_pairs_compress(src: &[u64], pair_count: usize, dst: &mut Vec<u64>) {
    dst.clear();
    dst.resize(words_for(pair_count), 0);
    // Each source word yields 32 output lanes.
    for (s, &word) in src[..words_for(pair_count * 2)].iter().enumerate() {
        let pairs = compress_even(word | (word >> 1));
        let out_bit = s * 32;
        dst[out_bit / WORD_BITS] |= pairs << (out_bit % WORD_BITS);
    }
    if let Some(last) = dst.last_mut() {
        *last &= tail_mask(pair_count);
    }
}

/// Tiles a `half_bits`-lane vector twice: output lane `w` (for
/// `w < 2 * half_bits`) is `src[w % half_bits]`. `half_bits` must be a power
/// of two. `dst` is resized to `words_for(2 * half_bits)`.
///
/// Inverse shuffle of the Omega wiring: the box a wire enters at a stage is
/// `wire mod N/2`, so duplicating the per-box vector yields the per-input-wire
/// vector for the next stage up.
pub fn tile_double(src: &[u64], half_bits: usize, dst: &mut Vec<u64>) {
    debug_assert!(half_bits.is_power_of_two());
    dst.clear();
    if half_bits >= WORD_BITS {
        // Whole-word tiling: the two halves are word-aligned copies.
        dst.extend_from_slice(&src[..half_bits / WORD_BITS]);
        dst.extend_from_slice(&src[..half_bits / WORD_BITS]);
    } else {
        // Sub-word tiling: 2 * half_bits <= 64, one output word.
        let pattern = src[0] & tail_mask(half_bits);
        dst.push((pattern | (pattern << half_bits)) & tail_mask(2 * half_bits));
    }
}

/// Butterfly OR: output lane `w` is `src[w] | src[w ^ dist]`, with `dist` a
/// power of two. `dst` is resized to `src.len()`.
///
/// Evaluates one Cube stage: the two outputs of the box a wire enters differ
/// only in bit `log2(dist)`, so OR-ing each lane with its butterfly partner
/// gives per-input-wire reachability for the whole stage at once.
pub fn swap_or(src: &[u64], dist: usize, dst: &mut Vec<u64>) {
    debug_assert!(dist.is_power_of_two());
    dst.clear();
    if dist >= WORD_BITS {
        // Partners live in different words at word-distance dist/64.
        let wd = dist / WORD_BITS;
        dst.resize(src.len(), 0);
        for w in 0..src.len() {
            dst[w] = src[w] | src[w ^ wd];
        }
    } else {
        // In-word butterfly via delta swap with an alternating mask.
        let m = swap_mask(dist);
        for &word in src {
            dst.push(word | ((word >> dist) & m) | ((word & m) << dist));
        }
    }
}

/// Alternating mask of `dist` low bits per `2 * dist` group — the delta-swap
/// mask selecting the "low partner" lanes for an in-word butterfly.
#[inline]
fn swap_mask(dist: usize) -> u64 {
    match dist {
        1 => EVEN_1,
        2 => EVEN_2,
        4 => EVEN_4,
        8 => EVEN_8,
        16 => EVEN_16,
        32 => EVEN_32,
        _ => unreachable!("dist must be a power of two below 64"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic LCG matching the fuzz idiom used across the workspace.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u32 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (self.0 >> 33) as u32
        }
        fn word(&mut self) -> u64 {
            (self.next() as u64) << 32 | self.next() as u64
        }
    }

    fn random_vec(rng: &mut Lcg, bits: usize, density_num: u32, density_den: u32) -> Vec<u64> {
        let mut v = vec![0u64; words_for(bits)];
        for i in 0..bits {
            if rng.next() % density_den < density_num {
                set_bit(&mut v, i);
            }
        }
        v
    }

    #[test]
    fn rotate_lanes_right_matches_scalar_rotation() {
        let mut rng = Lcg(0x60d);
        for &n in &[1usize, 2, 3, 7, 8, 31, 32, 33, 63, 64] {
            for _ in 0..40 {
                let mask = rng.word() & tail_mask(n);
                let by = rng.next() as usize % n;
                let rot = rotate_lanes_right(mask, n, by);
                for lane in 0..n {
                    let want = mask & (1u64 << ((lane + by) % n)) != 0;
                    assert_eq!(rot & (1u64 << lane) != 0, want, "n {n} by {by} lane {lane}");
                }
                assert_eq!(rot & !tail_mask(n), 0, "tail must stay clean");
            }
        }
    }

    #[test]
    fn rotating_rank_matches_circular_distance_scan() {
        let mut rng = Lcg(0xc1c);
        for &n in &[1usize, 2, 4, 5, 16, 33, 64] {
            for _ in 0..60 {
                let mask = rng.word() & tail_mask(n);
                let token = rng.next() as usize % n;
                let who = rng.next() as usize % n;
                // The naive token arbiter's scan: requesters circularly
                // between the token and `who` outrank it.
                let pos = (who + n - token) % n;
                let naive = (0..n)
                    .filter(|&j| mask & (1u64 << j) != 0 && (j + n - token) % n < pos)
                    .count() as u32;
                assert_eq!(
                    rotating_rank(mask, n, token, who),
                    naive,
                    "n {n} token {token} who {who} mask {mask:#x}"
                );
            }
        }
    }

    #[test]
    fn words_and_tail_masks() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(130), 3);
        assert_eq!(tail_mask(0), 0);
        assert_eq!(tail_mask(1), 1);
        assert_eq!(tail_mask(64), u64::MAX);
        assert_eq!(tail_mask(65), 1);
        assert_eq!(tail_mask(70), 0x3f);
    }

    #[test]
    fn pack_and_bit_ops_round_trip() {
        let mut rng = Lcg(0xbeef);
        for &n in &[1usize, 7, 63, 64, 65, 100, 128, 130] {
            let bools: Vec<bool> = (0..n).map(|_| rng.next().is_multiple_of(2)).collect();
            let mut words = Vec::new();
            pack_bools(&bools, &mut words);
            assert_eq!(words.len(), words_for(n));
            for (i, &b) in bools.iter().enumerate() {
                assert_eq!(test_bit(&words, i), b);
            }
            assert_eq!(count_ones(&words), bools.iter().filter(|&&b| b).count());
            if n % WORD_BITS != 0 {
                assert_eq!(
                    words[n / WORD_BITS] & !tail_mask(n),
                    0,
                    "tail must be clean"
                );
            }
        }
    }

    #[test]
    fn lowest_set_equals_prefix_form() {
        let mut rng = Lcg(0x1234_5678);
        for _ in 0..2000 {
            let x = rng.word();
            let prefix_form = x & !(prefix_or_up(x) << 1);
            assert_eq!(lowest_set(x), prefix_form, "x = {x:#x}");
        }
        assert_eq!(lowest_set(0), 0);
        assert_eq!(prefix_or_up(0), 0);
        assert_eq!(prefix_or_up(1), u64::MAX);
    }

    #[test]
    fn first_set_and_rotating_grant_match_scan() {
        let mut rng = Lcg(0xfeed);
        for &n in &[1usize, 5, 64, 65, 127, 200] {
            for _ in 0..200 {
                let v = random_vec(&mut rng, n, 1, 5);
                let naive_first = (0..n).find(|&i| test_bit(&v, i));
                assert_eq!(first_set(&v), naive_first);
                for _ in 0..4 {
                    let start = rng.next() as usize % (n + 2);
                    let naive_after = (start..n).find(|&i| test_bit(&v, i));
                    assert_eq!(
                        first_set_at_or_after(&v, start),
                        naive_after,
                        "start {start}"
                    );
                    let naive_rot = naive_after.or(naive_first);
                    assert_eq!(rotating_grant(&v, start), naive_rot);
                }
            }
        }
    }

    #[test]
    fn select_nth_set_matches_candidate_list() {
        let mut rng = Lcg(0xabcd);
        for &n in &[1usize, 10, 64, 100, 190] {
            for _ in 0..200 {
                let v = random_vec(&mut rng, n, 1, 3);
                let candidates: Vec<usize> = (0..n).filter(|&i| test_bit(&v, i)).collect();
                for k in 0..candidates.len() + 2 {
                    assert_eq!(select_nth_set(&v, k), candidates.get(k).copied());
                }
            }
        }
    }

    #[test]
    fn or_pairs_compress_matches_scalar() {
        let mut rng = Lcg(0x03e6);
        for &pairs in &[1usize, 2, 16, 32, 33, 64, 65, 100] {
            for _ in 0..100 {
                let src = random_vec(&mut rng, pairs * 2, 1, 3);
                let mut dst = Vec::new();
                or_pairs_compress(&src, pairs, &mut dst);
                assert_eq!(dst.len(), words_for(pairs));
                for b in 0..pairs {
                    let want = test_bit(&src, 2 * b) || test_bit(&src, 2 * b + 1);
                    assert_eq!(test_bit(&dst, b), want, "pairs {pairs} b {b}");
                }
                if pairs % WORD_BITS != 0 {
                    assert_eq!(dst[pairs / WORD_BITS] & !tail_mask(pairs), 0);
                }
            }
        }
    }

    #[test]
    fn tile_double_matches_scalar() {
        let mut rng = Lcg(0x7117);
        for &half in &[1usize, 2, 4, 8, 16, 32, 64, 128] {
            for _ in 0..50 {
                let src = random_vec(&mut rng, half, 1, 2);
                let mut dst = Vec::new();
                tile_double(&src, half, &mut dst);
                assert_eq!(dst.len(), words_for(2 * half));
                for w in 0..2 * half {
                    assert_eq!(
                        test_bit(&dst, w),
                        test_bit(&src, w % half),
                        "half {half} w {w}"
                    );
                }
                if (2 * half) % WORD_BITS != 0 {
                    assert_eq!(dst[(2 * half) / WORD_BITS] & !tail_mask(2 * half), 0);
                }
            }
        }
    }

    #[test]
    fn swap_or_matches_scalar() {
        let mut rng = Lcg(0x5a5a);
        for &n in &[2usize, 4, 8, 16, 32, 64, 128, 256] {
            let mut dist = 1;
            while dist < n {
                for _ in 0..30 {
                    let src = random_vec(&mut rng, n, 1, 2);
                    let mut dst = Vec::new();
                    swap_or(&src, dist, &mut dst);
                    assert_eq!(dst.len(), src.len());
                    for w in 0..n {
                        let want = test_bit(&src, w) || test_bit(&src, w ^ dist);
                        assert_eq!(test_bit(&dst, w), want, "n {n} dist {dist} w {w}");
                    }
                }
                dist *= 2;
            }
        }
    }
}
