//! # rsin-minicheck — a minimal property-testing harness
//!
//! A dependency-free stand-in for the subset of `proptest` the RSIN
//! workspace uses: run a property over a few hundred pseudo-random cases
//! with a fixed (but overridable) seed, and on failure report the case
//! number and per-case seed so the failure replays deterministically.
//!
//! Properties are plain closures using ordinary `assert!` macros:
//!
//! ```
//! rsin_minicheck::check(64, |g| {
//!     let x = g.f64_in(-1e3, 1e3);
//!     assert!((x + 1.0) - 1.0 - x < 1e-6);
//! });
//! ```
//!
//! Set `MINICHECK_SEED=<u64>` in the environment to rerun the whole suite
//! under a different seed stream, and `MINICHECK_CASES=<u64>` to scale the
//! case count up (soak testing) or down (smoke testing).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Default base seed for case derivation (overridden by `MINICHECK_SEED`).
pub const DEFAULT_SEED: u64 = 0x5eed_cafe_f00d_0001;

/// Per-case random value source (xoshiro256++ seeded via SplitMix64).
#[derive(Debug, Clone)]
pub struct Gen {
    state: [u64; 4],
}

impl Gen {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut z = splitmix64(seed);
        let mut state = [0u64; 4];
        for s in &mut state {
            z = splitmix64(z);
            *s = z;
        }
        Gen { state }
    }

    /// The next 64 random bits.
    #[must_use]
    pub fn u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)`.
    #[must_use]
    pub fn f64(&mut self) -> f64 {
        (self.u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or either bound is not finite.
    #[must_use]
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.f64()
    }

    /// A uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[must_use]
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "bad range [{lo}, {hi})");
        lo + ((u128::from(self.u64()) * (hi - lo) as u128) >> 64) as usize
    }

    /// A uniform `u32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[must_use]
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.usize_in(lo as usize, hi as usize) as u32
    }

    /// A fair coin flip.
    #[must_use]
    pub fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// A vector of `f64` in `[lo, hi)` with length in `[min_len, max_len)`.
    ///
    /// # Panics
    ///
    /// Panics if either range is empty.
    #[must_use]
    pub fn vec_f64(&mut self, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| self.f64_in(lo, hi)).collect()
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Runs `property` over `cases` pseudo-random cases.
///
/// Each case gets a fresh [`Gen`] derived from the base seed and the case
/// index. If the property panics, the harness prints the case index and the
/// exact per-case seed (pass it to [`Gen::from_seed`], or rerun with
/// `MINICHECK_SEED` set, to replay) and re-raises the panic so the test
/// fails normally.
pub fn check<F>(cases: u64, mut property: F)
where
    F: FnMut(&mut Gen),
{
    let base = env_u64("MINICHECK_SEED").unwrap_or(DEFAULT_SEED);
    let cases = env_u64("MINICHECK_CASES").unwrap_or(cases).max(1);
    for case in 0..cases {
        let case_seed = splitmix64(base ^ splitmix64(case));
        let mut g = Gen::from_seed(case_seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| property(&mut g)));
        if let Err(panic) = outcome {
            eprintln!(
                "minicheck: property failed on case {case}/{cases} \
                 (base seed {base:#x}, case seed {case_seed:#x})"
            );
            resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_per_seed() {
        let mut a = Gen::from_seed(9);
        let mut b = Gen::from_seed(9);
        for _ in 0..64 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut g = Gen::from_seed(1);
        for _ in 0..10_000 {
            let x = g.f64_in(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
            let n = g.usize_in(5, 9);
            assert!((5..9).contains(&n));
        }
    }

    #[test]
    fn vec_lengths_are_in_range() {
        let mut g = Gen::from_seed(2);
        for _ in 0..200 {
            let v = g.vec_f64(0.0, 1.0, 1, 7);
            assert!((1..7).contains(&v.len()));
        }
    }

    #[test]
    fn check_runs_every_case() {
        // Guard against env overrides perturbing the count assertion.
        if std::env::var_os("MINICHECK_CASES").is_some() {
            return;
        }
        let mut ran = 0u64;
        check(17, |_| ran += 1);
        assert_eq!(ran, 17);
    }

    #[test]
    fn failing_property_panics() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(4, |g| assert!(g.u64() % 2 == 0, "forced failure"));
        }));
        assert!(result.is_err());
    }
}
