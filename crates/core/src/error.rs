//! Error types for system configuration.

use std::fmt;

/// Errors building or parsing a [`SystemConfig`](crate::SystemConfig).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A structural constraint was violated (counts, divisibility, powers
    /// of two, …).
    Invalid {
        /// Human-readable description of the violated constraint.
        what: String,
    },
    /// A configuration string could not be parsed.
    Parse {
        /// The offending input.
        input: String,
        /// What was expected.
        expected: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Invalid { what } => write!(f, "invalid configuration: {what}"),
            ConfigError::Parse { input, expected } => {
                write!(f, "cannot parse {input:?}: expected {expected}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = ConfigError::Invalid {
            what: "p must equal i*j".into(),
        };
        assert!(e.to_string().contains("i*j"));
        let e = ConfigError::Parse {
            input: "xyz".into(),
            expected: "p/ixjxk KIND/r",
        };
        assert!(e.to_string().contains("xyz"));
    }
}
