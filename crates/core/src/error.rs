//! Error types for system configuration.

use std::fmt;

/// Errors building or parsing a [`SystemConfig`](crate::SystemConfig).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A structural constraint was violated (counts, divisibility, powers
    /// of two, …).
    Invalid {
        /// Human-readable description of the violated constraint.
        what: String,
    },
    /// A configuration string could not be parsed.
    Parse {
        /// The offending input.
        input: String,
        /// What was expected.
        expected: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Invalid { what } => write!(f, "invalid configuration: {what}"),
            ConfigError::Parse { input, expected } => {
                write!(f, "cannot parse {input:?}: expected {expected}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Errors from the experiment harness itself — the machinery that runs
/// suite tasks and persists their artifacts, as opposed to the models it
/// runs.
///
/// IO sources are captured as rendered text rather than `std::io::Error`
/// so the type stays `Clone`/`PartialEq` and failures can be aggregated
/// into suite reports and manifests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HarnessError {
    /// A filesystem operation on an artifact or manifest failed.
    Io {
        /// What was being attempted (`"create dir"`, `"write"`, `"rename"`, …).
        op: &'static str,
        /// The path involved.
        path: String,
        /// The underlying error, rendered.
        message: String,
    },
    /// A suite task panicked on every allowed attempt.
    TaskPanicked {
        /// The task's artifact name (`fig07`, `table2`, …).
        task: String,
        /// The final panic payload, rendered.
        message: String,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A suite task exceeded its hard deadline on every allowed attempt.
    TaskStalled {
        /// The task's artifact name.
        task: String,
        /// The per-attempt deadline that was exceeded, in milliseconds.
        deadline_ms: u64,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A resume manifest could not be understood.
    ManifestCorrupt {
        /// The manifest path.
        path: String,
        /// What was wrong with it.
        what: String,
    },
    /// A task's derived configuration was invalid — the harness-side wrap
    /// of [`ConfigError`] for drivers (like the provisioning sweep) that
    /// build model configurations per leg at run time.
    Config(ConfigError),
}

impl From<ConfigError> for HarnessError {
    fn from(e: ConfigError) -> Self {
        HarnessError::Config(e)
    }
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Io { op, path, message } => {
                write!(f, "cannot {op} {path}: {message}")
            }
            HarnessError::TaskPanicked {
                task,
                message,
                attempts,
            } => write!(
                f,
                "task {task} panicked after {attempts} attempt(s): {message}"
            ),
            HarnessError::TaskStalled {
                task,
                deadline_ms,
                attempts,
            } => write!(
                f,
                "task {task} stalled past its {deadline_ms}ms deadline on all {attempts} attempt(s)"
            ),
            HarnessError::ManifestCorrupt { path, what } => write!(
                f,
                "resume manifest {path} is unusable ({what}); rerun without --resume to rebuild it"
            ),
            HarnessError::Config(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for HarnessError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = ConfigError::Invalid {
            what: "p must equal i*j".into(),
        };
        assert!(e.to_string().contains("i*j"));
        let e = ConfigError::Parse {
            input: "xyz".into(),
            expected: "p/ixjxk KIND/r",
        };
        assert!(e.to_string().contains("xyz"));
    }

    #[test]
    fn harness_errors_name_the_task_and_path() {
        let e = HarnessError::TaskPanicked {
            task: "fig07".into(),
            message: "chaos: injected panic".into(),
            attempts: 3,
        };
        let text = e.to_string();
        assert!(
            text.contains("fig07") && text.contains("3 attempt"),
            "{text}"
        );
        let e = HarnessError::Io {
            op: "write",
            path: "target/experiments/fig04.txt".into(),
            message: "No space left on device".into(),
        };
        assert!(e.to_string().contains("fig04.txt"));
        let e = HarnessError::ManifestCorrupt {
            path: "m.json".into(),
            what: "not JSON".into(),
        };
        assert!(e.to_string().contains("--resume"));
        let e = HarnessError::TaskStalled {
            task: "fig12".into(),
            deadline_ms: 500,
            attempts: 2,
        };
        assert!(e.to_string().contains("500ms"));
        let e = HarnessError::from(ConfigError::Invalid {
            what: "2p overflows".into(),
        });
        assert!(e.to_string().contains("2p overflows"));
    }
}
