//! The network-selection advisor (Table II of the paper).
//!
//! Section VI distills the study into a decision table over two factors: the
//! cost of the network relative to the resources, and the
//! transmission-to-service ratio `µ_s/µ_n`. This module encodes that table
//! and explains each recommendation.

use std::fmt;

/// Relative cost of the interconnection network versus the resource pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CostRegime {
    /// `COST_net ≪ COST_res`: networks are cheap relative to resources.
    NetworkMuchCheaper,
    /// `COST_net ≃ COST_res`: comparable costs.
    Comparable,
    /// `COST_net ≫ COST_res`: the network dominates the budget.
    NetworkMuchDearer,
}

/// The paper's recommended network organisations (Table II rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Recommendation {
    /// One large multistage (Omega-class) RSIN.
    SingleMultistage,
    /// One large crossbar RSIN.
    SingleCrossbar,
    /// Many small multistage networks plus a larger resource pool.
    ManySmallMultistage,
    /// Many small crossbars plus a larger resource pool.
    ManySmallCrossbar,
    /// Private buses, each with a generous number of resources.
    PrivateBuses,
}

impl Recommendation {
    /// One-line rationale taken from the paper's Section VI discussion.
    #[must_use]
    pub fn rationale(&self) -> &'static str {
        match self {
            Recommendation::SingleMultistage => {
                "resources are the bottleneck; distributed scheduling cuts Omega blocking, \
                 and O(N log N) hardware beats a crossbar"
            }
            Recommendation::SingleCrossbar => {
                "the network is the bottleneck; a nonblocking crossbar gives the least delay"
            }
            Recommendation::ManySmallMultistage => {
                "many small Omega networks with extra resources outperform one medium network \
                 at equal cost when transmission is short"
            }
            Recommendation::ManySmallCrossbar => {
                "many small crossbars with extra resources avoid network blockage when \
                 transmission dominates"
            }
            Recommendation::PrivateBuses => {
                "when resources are cheap, private buses with several resources each give \
                 the least cost and delay"
            }
        }
    }
}

impl fmt::Display for Recommendation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Recommendation::SingleMultistage => "single multistage network",
            Recommendation::SingleCrossbar => "single crossbar network",
            Recommendation::ManySmallMultistage => {
                "many small multistage networks + more resources"
            }
            Recommendation::ManySmallCrossbar => "many small crossbar networks + more resources",
            Recommendation::PrivateBuses => "private buses with many resources",
        };
        f.write_str(name)
    }
}

/// Looks up Table II.
///
/// `ratio` is `µ_s/µ_n`; the paper calls it "small" when at most about 1
/// (the Omega's reduced blocking wins) and "large" above that (the
/// crossbar's nonblocking fabric wins).
///
/// # Panics
///
/// Panics if `ratio` is not positive and finite.
///
/// # Examples
///
/// ```
/// use rsin_core::advisor::{recommend, CostRegime, Recommendation};
///
/// assert_eq!(
///     recommend(CostRegime::NetworkMuchCheaper, 0.1),
///     Recommendation::SingleMultistage
/// );
/// assert_eq!(
///     recommend(CostRegime::NetworkMuchDearer, 10.0),
///     Recommendation::PrivateBuses
/// );
/// ```
#[must_use]
pub fn recommend(cost: CostRegime, ratio: f64) -> Recommendation {
    assert!(
        ratio.is_finite() && ratio > 0.0,
        "ratio must be positive, got {ratio}"
    );
    let small = ratio <= 1.0;
    match (cost, small) {
        (CostRegime::NetworkMuchCheaper, true) => Recommendation::SingleMultistage,
        (CostRegime::NetworkMuchCheaper, false) => Recommendation::SingleCrossbar,
        (CostRegime::Comparable, true) => Recommendation::ManySmallMultistage,
        (CostRegime::Comparable, false) => Recommendation::ManySmallCrossbar,
        (CostRegime::NetworkMuchDearer, _) => Recommendation::PrivateBuses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_table_ii() {
        use CostRegime::*;
        use Recommendation::*;
        let cases = [
            (NetworkMuchCheaper, 0.1, SingleMultistage),
            (NetworkMuchCheaper, 1.0, SingleMultistage),
            (NetworkMuchCheaper, 5.0, SingleCrossbar),
            (Comparable, 0.1, ManySmallMultistage),
            (Comparable, 5.0, ManySmallCrossbar),
            (NetworkMuchDearer, 0.1, PrivateBuses),
            (NetworkMuchDearer, 100.0, PrivateBuses),
        ];
        for (cost, ratio, expect) in cases {
            assert_eq!(recommend(cost, ratio), expect, "({cost:?}, {ratio})");
        }
    }

    #[test]
    fn every_recommendation_has_rationale_and_name() {
        for rec in [
            Recommendation::SingleMultistage,
            Recommendation::SingleCrossbar,
            Recommendation::ManySmallMultistage,
            Recommendation::ManySmallCrossbar,
            Recommendation::PrivateBuses,
        ] {
            assert!(!rec.rationale().is_empty());
            assert!(!rec.to_string().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_ratio() {
        let _ = recommend(CostRegime::Comparable, f64::NAN);
    }
}
