//! Experiment output: labelled series rendered as aligned text tables and
//! CSV, the format the figure-regenerator binaries print.

use std::fmt::Write as _;

/// A point of a delay curve: x (traffic intensity), y (normalized delay),
/// and an optional confidence half-width on y.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point {
    /// Abscissa (usually reference traffic intensity ρ).
    pub x: f64,
    /// Ordinate (usually normalized delay `d·µ_s`).
    pub y: f64,
    /// 95% half-width of `y` when known (simulation series).
    pub half_width: Option<f64>,
}

/// One labelled curve of an experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Legend label, e.g. `"16/4x4x4 OMEGA/2 (sim)"`.
    pub label: String,
    /// Points in increasing `x` order.
    pub points: Vec<Point>,
}

impl Series {
    /// Creates an empty series with the given label.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point without a confidence interval (analytical series).
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push(Point {
            x,
            y,
            half_width: None,
        });
    }

    /// Appends a point with a 95% half-width (simulation series).
    pub fn push_ci(&mut self, x: f64, y: f64, half_width: f64) {
        self.points.push(Point {
            x,
            y,
            half_width: Some(half_width),
        });
    }

    /// y-value at the largest x not exceeding `x`, if any.
    #[must_use]
    pub fn value_at_or_before(&self, x: f64) -> Option<f64> {
        self.points.iter().rfind(|p| p.x <= x + 1e-12).map(|p| p.y)
    }
}

/// A complete experiment: several series over a common x-grid.
#[derive(Clone, Debug, PartialEq)]
pub struct Experiment {
    /// Title, e.g. `"Fig. 4: SBUS normalized delay, mu_s/mu_n = 0.1"`.
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// y-axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Experiment {
    /// Creates an empty experiment.
    #[must_use]
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Experiment {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn add(&mut self, series: Series) {
        self.series.push(series);
    }

    /// The union of all x values across series, sorted ascending.
    #[must_use]
    pub fn x_grid(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.x))
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        xs
    }

    /// Renders an aligned text table: one row per x, one column per series.
    /// Missing points (series saturated or not sampled) render as `-`.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(out, "# y: {}", self.y_label);
        let width = 22usize;
        let _ = write!(out, "{:>10}", self.x_label);
        for s in &self.series {
            let label = if s.label.len() > width - 2 {
                &s.label[..width - 2]
            } else {
                &s.label
            };
            let _ = write!(out, "{label:>width$}");
        }
        out.push('\n');
        for x in self.x_grid() {
            let _ = write!(out, "{x:>10.3}");
            for s in &self.series {
                let cell = s
                    .points
                    .iter()
                    .find(|p| (p.x - x).abs() < 1e-9)
                    .map_or_else(
                        || "-".to_string(),
                        |p| match p.half_width {
                            Some(hw) => format!("{:.4}±{:.4}", p.y, hw),
                            None => format!("{:.4}", p.y),
                        },
                    );
                let _ = write!(out, "{cell:>width$}");
            }
            out.push('\n');
        }
        out
    }

    /// Renders a crude ASCII scatter chart of all series, for eyeballing
    /// curve shapes in a terminal. One symbol per series (`A`, `B`, …);
    /// y is linear from 0 to the largest plotted value.
    #[must_use]
    pub fn to_ascii_chart(&self, width: usize, height: usize) -> String {
        assert!(width >= 16 && height >= 4, "chart too small to draw");
        let xs = self.x_grid();
        let (Some(&x_min), Some(&x_max)) = (xs.first(), xs.last()) else {
            return String::from("(empty chart)\n");
        };
        let y_max = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.y))
            .fold(0.0_f64, f64::max);
        if y_max <= 0.0 || x_max <= x_min {
            return String::from("(degenerate chart)\n");
        }
        let mut grid = vec![vec![' '; width]; height];
        for (si, s) in self.series.iter().enumerate() {
            let symbol = (b'A' + (si % 26) as u8) as char;
            for p in &s.points {
                let cx = ((p.x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
                let cy = (p.y / y_max * (height - 1) as f64).round() as usize;
                let row = height - 1 - cy.min(height - 1);
                grid[row][cx.min(width - 1)] = symbol;
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {} (y up to {:.3})", self.title, y_max);
        for row in grid {
            out.push('|');
            out.extend(row);
            out.push('\n');
        }
        out.push('+');
        out.extend(std::iter::repeat_n('-', width));
        out.push('\n');
        let mut legend = String::new();
        for (si, s) in self.series.iter().enumerate() {
            let symbol = (b'A' + (si % 26) as u8) as char;
            let _ = write!(legend, "  {symbol}={}", s.label);
        }
        let _ = writeln!(out, "{}", legend.trim_start());
        out
    }

    /// Renders a CSV with columns `x, <label>, <label>_hw, ...`.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label.replace(',', ";"));
        for s in &self.series {
            let _ = write!(
                out,
                ",{},{}_hw",
                s.label.replace(',', ";"),
                s.label.replace(',', ";")
            );
        }
        out.push('\n');
        for x in self.x_grid() {
            let _ = write!(out, "{x}");
            for s in &self.series {
                match s.points.iter().find(|p| (p.x - x).abs() < 1e-9) {
                    Some(p) => {
                        let _ = write!(out, ",{}", p.y);
                        match p.half_width {
                            Some(hw) => {
                                let _ = write!(out, ",{hw}");
                            }
                            None => out.push(','),
                        }
                    }
                    None => out.push_str(",,"),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Experiment {
        let mut e = Experiment::new("Fig. X", "rho", "normalized delay");
        let mut a = Series::new("analytic");
        a.push(0.1, 1.0);
        a.push(0.2, 2.0);
        let mut b = Series::new("sim");
        b.push_ci(0.1, 1.1, 0.05);
        e.add(a);
        e.add(b);
        e
    }

    #[test]
    fn x_grid_unions_and_sorts() {
        let e = sample();
        assert_eq!(e.x_grid(), vec![0.1, 0.2]);
    }

    #[test]
    fn text_table_contains_all_cells() {
        let t = sample().to_text();
        assert!(t.contains("Fig. X"));
        assert!(t.contains("1.0000"));
        assert!(t.contains("1.1000±0.0500"));
        assert!(t.contains('-'), "missing cell rendered as dash");
    }

    #[test]
    fn ascii_chart_draws_all_series() {
        let chart = sample().to_ascii_chart(40, 10);
        assert!(chart.contains('A'), "series A plotted");
        assert!(chart.contains('B'), "series B plotted");
        assert!(chart.contains("A=analytic"));
        assert!(chart.lines().count() >= 12);
    }

    #[test]
    fn ascii_chart_handles_empty() {
        let e = Experiment::new("t", "x", "y");
        assert!(e.to_ascii_chart(40, 10).contains("empty"));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn ascii_chart_rejects_tiny_canvas() {
        let _ = sample().to_ascii_chart(4, 2);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        let header = lines.next().expect("header");
        assert!(header.starts_with("rho,analytic,analytic_hw,sim,sim_hw"));
        assert_eq!(lines.count(), 2);
    }

    #[test]
    fn value_lookup() {
        let e = sample();
        assert_eq!(e.series[0].value_at_or_before(0.15), Some(1.0));
        assert_eq!(e.series[0].value_at_or_before(0.05), None);
        assert_eq!(e.series[0].value_at_or_before(0.2), Some(2.0));
    }
}
