//! The task-lifecycle simulator (Section II, assumptions (a)–(f)).
//!
//! Drives any [`ResourceNetwork`] with Poisson arrivals per processor,
//! exponential transmission and service stages, FIFO queueing at the
//! processors, no queueing at the resources, and retry-on-status-change for
//! blocked requests. The headline output is `d`, the mean delay from task
//! arrival until a resource is allocated, matching the paper's eq. (1).
//!
//! # Fault injection
//!
//! [`simulate_faulty`] (and [`simulate_general_faulty`]) run the same
//! lifecycle while applying a [`FaultPlan`]: resource pools and structural
//! elements fail and are repaired mid-run. A task whose resource dies
//! mid-transmission or mid-service is a *casualty*: its lifecycle events
//! are cancelled and it is requeued at the head of its processor's queue,
//! with the processor backing off for a capped exponential interval before
//! re-requesting. Each re-allocation of a requeued task counts as a fresh
//! allocation event in the delay statistics (delay is still measured from
//! the original arrival). A livelock watchdog returns
//! [`SimError::Stalled`] when no allocation makes progress within a
//! configurable event budget while work is pending — a plan that kills
//! every resource produces a typed error, not a hang.

use crate::network::{Grant, NetworkCounters, PendingSet, ResourceNetwork};
use crate::workload::Workload;
use rsin_des::stats::{TimeWeighted, Welford};
use rsin_des::{
    Calendar, Draw, EventHandle, Exponential, FaultAction, FaultEvent, FaultPlan, FaultTarget,
    SimRng, SimTime,
};
use std::collections::VecDeque;
use std::fmt;

/// The three stochastic stages of the task lifecycle, as arbitrary
/// distributions.
///
/// The paper assumes all three are Markovian (assumption (a));
/// [`simulate_general`] lets sensitivity studies swap any stage for
/// deterministic, Erlang, or hyperexponential alternatives while keeping
/// the same lifecycle semantics.
#[derive(Debug, Clone, Copy)]
pub struct StageDistributions<'a> {
    /// Interarrival time at each processor.
    pub interarrival: &'a dyn Draw,
    /// Task transmission time over the held circuit.
    pub transmission: &'a dyn Draw,
    /// Service time at the resource.
    pub service: &'a dyn Draw,
}

/// Run-length controls for one simulation run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimOptions {
    /// Allocations to discard while the system warms up.
    pub warmup_tasks: u64,
    /// Allocations to measure after warm-up.
    pub measured_tasks: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            warmup_tasks: 2_000,
            measured_tasks: 20_000,
        }
    }
}

/// Controls for the fault-handling machinery of [`simulate_faulty`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultOptions {
    /// Livelock watchdog: maximum events processed without a single
    /// allocation while tasks are queued, before the run aborts with
    /// [`SimError::Stalled`].
    pub stall_event_budget: u64,
    /// First post-casualty backoff interval, in model time units.
    pub backoff_base: f64,
    /// Upper bound on the (exponentially growing) backoff interval.
    pub backoff_cap: f64,
}

impl Default for FaultOptions {
    fn default() -> Self {
        FaultOptions {
            stall_event_budget: 100_000,
            backoff_base: 0.1,
            backoff_cap: 10.0,
        }
    }
}

/// A simulation run that could not complete.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SimError {
    /// No allocation made progress within the watchdog's event budget even
    /// though tasks were queued — the injected faults have livelocked the
    /// system (e.g. every resource is down with no repair scheduled).
    Stalled {
        /// Simulated time at which the watchdog fired.
        at: f64,
        /// Tasks queued at the processors when the watchdog fired.
        queued: u64,
        /// Events processed since the last successful allocation.
        events_since_progress: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Stalled {
                at,
                queued,
                events_since_progress,
            } => write!(
                f,
                "simulation stalled at t={at:.6}: {queued} task(s) queued but no \
                 allocation in {events_since_progress} events"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Output statistics of one simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Queueing delay `d` (arrival → allocation) observations.
    pub queueing_delay: Welford,
    /// Response time (arrival → service completion) observations.
    pub response_time: Welford,
    /// Time-average number of queued tasks over the measurement window.
    pub mean_queue_length: f64,
    /// Measured allocations per unit time.
    pub throughput: f64,
    /// Simulated time spent in the measurement window.
    pub measured_time: f64,
    /// Network scheduling counters accumulated over the measurement window.
    pub counters: NetworkCounters,
    /// Tasks that arrived over the whole run (warm-up included).
    pub arrivals: u64,
    /// Tasks whose service completed over the whole run.
    pub completions: u64,
    /// Casualty requeues: allocations undone because the granted resource
    /// failed mid-transmission or mid-service.
    pub requeues: u64,
    /// Tasks still queued at the processors when the run ended.
    pub queued_at_end: u64,
    /// Tasks in transmission or service when the run ended.
    pub in_flight_at_end: u64,
    /// Measured service *completions* per unit time — the throughput the
    /// system actually delivered. Equals [`SimReport::throughput`] minus
    /// the allocations lost to casualties and still-in-flight work; the
    /// headline metric of the resilience experiment.
    pub delivered_throughput: f64,
}

impl SimReport {
    /// Mean queueing delay `d`.
    #[must_use]
    pub fn mean_delay(&self) -> f64 {
        self.queueing_delay.mean()
    }

    /// Mean delay normalized by the mean service time (`d · µ_s`), the unit
    /// of the paper's figures.
    #[must_use]
    pub fn normalized_delay(&self, workload: &Workload) -> f64 {
        self.mean_delay() * workload.mu_s()
    }
}

#[derive(Debug)]
enum Event {
    Arrival(usize),
    TxDone { task: u64 },
    SvcDone { task: u64 },
    Fault(FaultEvent),
    Resume(usize),
}

/// Which lifecycle stage an in-flight task is in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Stage {
    Transmission,
    Service,
}

/// A task that holds an allocation (transmitting or in service).
#[derive(Debug)]
struct InFlight {
    grant: Grant,
    arrival: SimTime,
    retries: u32,
    measured: bool,
    stage: Stage,
    handle: EventHandle,
    /// Allocation sequence number: total order of grants, kept so casualty
    /// teardown is deterministic even though slab slots are recycled.
    seq: u64,
}

/// The in-flight task table: a slab whose slot index is the task id carried
/// by calendar events, with a LIFO free list. Replaces the old per-task
/// `HashMap<u64, InFlight>` — the simulator's hottest collection — with two
/// flat vectors and zero steady-state allocation: a slot freed by a service
/// completion (or casualty teardown) is recycled for the next grant.
///
/// Slot reuse is safe because a slot is only freed when its task's pending
/// event has been delivered or cancelled, so no live event can alias a
/// recycled id.
#[derive(Debug, Default)]
struct InFlightSlab {
    slots: Vec<Option<InFlight>>,
    free: Vec<usize>,
}

impl InFlightSlab {
    /// The id the next [`InFlightSlab::insert`] will return — lets the
    /// caller schedule the task's event (whose payload carries the id)
    /// before constructing the `InFlight` that stores the event's handle.
    fn next_id(&self) -> u64 {
        match self.free.last() {
            Some(&id) => id as u64,
            None => self.slots.len() as u64,
        }
    }

    /// Stores `fl`, returning the task id to embed in its lifecycle events.
    fn insert(&mut self, fl: InFlight) -> u64 {
        match self.free.pop() {
            Some(id) => {
                debug_assert!(self.slots[id].is_none(), "free slot was occupied");
                self.slots[id] = Some(fl);
                id as u64
            }
            None => {
                self.slots.push(Some(fl));
                (self.slots.len() - 1) as u64
            }
        }
    }

    fn get_mut(&mut self, id: u64) -> Option<&mut InFlight> {
        self.slots.get_mut(id as usize).and_then(Option::as_mut)
    }

    /// Removes the task and recycles its slot.
    fn remove(&mut self, id: u64) -> Option<InFlight> {
        let fl = self.slots.get_mut(id as usize).and_then(Option::take)?;
        self.free.push(id as usize);
        Some(fl)
    }

    /// Number of tasks currently in flight.
    fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Ids of in-flight tasks holding `port`, in allocation order — the
    /// deterministic casualty order for a resource failure.
    fn casualties_at(&self, port: usize) -> Vec<u64> {
        let mut hit: Vec<(u64, u64)> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(id, slot)| {
                slot.as_ref()
                    .filter(|fl| fl.grant.port == port)
                    .map(|fl| (fl.seq, id as u64))
            })
            .collect();
        hit.sort_unstable();
        hit.into_iter().map(|(_, id)| id).collect()
    }
}

/// A task waiting at its processor's queue.
#[derive(Clone, Copy, Debug)]
struct QueuedTask {
    arrival: SimTime,
    retries: u32,
}

/// Incrementally maintained request-readiness: `pending[i]` mirrors
/// `!transmitting[i] && !queues[i].is_empty() && now >= backoff_until[i]`
/// at every decision epoch. The old loop recomputed that predicate for all
/// `p` processors on **every** event; here each event refreshes only the
/// processors it touched, and `count` answers "anyone ready?" in O(1).
///
/// Backoff is the one term that flips by time passing alone, so processors
/// inside a backoff window sit on a watch list that the epoch drains once
/// `now` reaches their deadline — tie-correct even when another event pops
/// at exactly the Resume timestamp.
#[derive(Debug)]
struct ReadySet {
    pending: Vec<bool>,
    /// `pending` bit-packed 64 per word, LSB-first — kept in lockstep so
    /// the decision epoch can hand the network a [`PendingSet`] without a
    /// per-epoch re-pack.
    words: Vec<u64>,
    count: usize,
    backoff_watch: Vec<usize>,
    in_backoff: Vec<bool>,
}

impl ReadySet {
    fn new(p: usize) -> Self {
        ReadySet {
            pending: vec![false; p],
            words: vec![0; p.div_ceil(64)],
            count: 0,
            backoff_watch: Vec::new(),
            in_backoff: vec![false; p],
        }
    }

    /// Records processor `i`'s freshly evaluated readiness in both views.
    #[inline]
    fn apply(&mut self, i: usize, ready: bool) {
        if self.pending[i] != ready {
            self.pending[i] = ready;
            let lane = 1u64 << (i & 63);
            if ready {
                self.words[i >> 6] |= lane;
                self.count += 1;
            } else {
                self.words[i >> 6] &= !lane;
                self.count -= 1;
            }
        }
    }

    /// Re-evaluates processor `i`'s readiness from the live lifecycle state.
    fn refresh(
        &mut self,
        i: usize,
        now: SimTime,
        transmitting: &[bool],
        queues: &[VecDeque<QueuedTask>],
        backoff_until: &[SimTime],
    ) {
        let ready = !transmitting[i] && !queues[i].is_empty() && now >= backoff_until[i];
        self.apply(i, ready);
    }

    /// [`ReadySet::refresh`] right after `queues[i]` gained a task — the
    /// queue is nonempty by construction, so that term is skipped.
    fn refresh_after_push(
        &mut self,
        i: usize,
        now: SimTime,
        transmitting: &[bool],
        backoff_until: &[SimTime],
    ) {
        self.apply(i, !transmitting[i] && now >= backoff_until[i]);
    }

    /// [`ReadySet::refresh`] right after `transmitting[i]` was cleared —
    /// that term is true by construction and is skipped.
    fn refresh_after_txdone(
        &mut self,
        i: usize,
        now: SimTime,
        queues: &[VecDeque<QueuedTask>],
        backoff_until: &[SimTime],
    ) {
        self.apply(i, !queues[i].is_empty() && now >= backoff_until[i]);
    }

    /// Drops a just-granted processor from the set. By the network contract
    /// it was pending, and the caller has marked it transmitting, so its
    /// readiness is unconditionally false — no predicate re-evaluation.
    fn clear_granted(&mut self, i: usize) {
        debug_assert!(self.pending[i], "granted processor was not pending");
        self.pending[i] = false;
        self.words[i >> 6] &= !(1u64 << (i & 63));
        self.count -= 1;
    }

    /// Both views of the pending set, for the network's request cycle.
    fn as_pending(&self) -> PendingSet<'_> {
        PendingSet {
            bools: &self.pending,
            words: &self.words,
        }
    }

    /// Puts `i` on the backoff watch list (idempotent).
    fn watch_backoff(&mut self, i: usize) {
        if !self.in_backoff[i] {
            self.in_backoff[i] = true;
            self.backoff_watch.push(i);
        }
    }

    /// Drains watch-list entries whose window has closed, refreshing them.
    fn expire_backoffs(
        &mut self,
        now: SimTime,
        transmitting: &[bool],
        queues: &[VecDeque<QueuedTask>],
        backoff_until: &[SimTime],
    ) {
        let mut idx = 0;
        while idx < self.backoff_watch.len() {
            let proc = self.backoff_watch[idx];
            if now >= backoff_until[proc] {
                self.in_backoff[proc] = false;
                self.backoff_watch.swap_remove(idx);
                self.refresh(proc, now, transmitting, queues, backoff_until);
            } else {
                idx += 1;
            }
        }
    }
}

/// Simulates `net` under `workload` until `opts.measured_tasks` allocations
/// have been measured (after discarding `opts.warmup_tasks`).
///
/// # Panics
///
/// Panics if the network reports zero processors, grants a non-pending
/// processor, or double-grants a processor within a cycle — all of which
/// indicate a broken [`ResourceNetwork`] implementation.
pub fn simulate(
    net: &mut dyn ResourceNetwork,
    workload: &Workload,
    opts: &SimOptions,
    rng: &mut SimRng,
) -> SimReport {
    simulate_faulty(
        net,
        workload,
        opts,
        &FaultPlan::new(),
        &FaultOptions::default(),
        rng,
    )
    .expect("fault-free simulation cannot stall")
}

/// [`simulate`] with arbitrary stage distributions (the exponential
/// assumptions relaxed).
///
/// # Panics
///
/// Same contract as [`simulate`].
pub fn simulate_general(
    net: &mut dyn ResourceNetwork,
    stages: &StageDistributions<'_>,
    opts: &SimOptions,
    rng: &mut SimRng,
) -> SimReport {
    simulate_general_faulty(
        net,
        stages,
        opts,
        &FaultPlan::new(),
        &FaultOptions::default(),
        rng,
    )
    .expect("fault-free simulation cannot stall")
}

/// [`simulate`] under a [`FaultPlan`]: resource pools and structural
/// elements fail and recover mid-run per the plan.
///
/// Returns [`SimError::Stalled`] when the livelock watchdog detects that
/// no allocation has progressed within `fopts.stall_event_budget` events
/// while tasks are queued.
///
/// # Errors
///
/// [`SimError::Stalled`] as described above.
///
/// # Panics
///
/// Same structural contract as [`simulate`].
pub fn simulate_faulty(
    net: &mut dyn ResourceNetwork,
    workload: &Workload,
    opts: &SimOptions,
    faults: &FaultPlan,
    fopts: &FaultOptions,
    rng: &mut SimRng,
) -> Result<SimReport, SimError> {
    let interarrival = Exponential::with_rate(workload.lambda());
    let transmission = Exponential::with_rate(workload.mu_n());
    let service = Exponential::with_rate(workload.mu_s());
    simulate_general_faulty(
        net,
        &StageDistributions {
            interarrival: &interarrival,
            transmission: &transmission,
            service: &service,
        },
        opts,
        faults,
        fopts,
        rng,
    )
}

/// [`simulate_faulty`] with arbitrary stage distributions.
///
/// # Errors
///
/// [`SimError::Stalled`] when the livelock watchdog fires.
///
/// # Panics
///
/// Same structural contract as [`simulate`].
#[allow(clippy::too_many_lines)]
pub fn simulate_general_faulty(
    net: &mut dyn ResourceNetwork,
    stages: &StageDistributions<'_>,
    opts: &SimOptions,
    faults: &FaultPlan,
    fopts: &FaultOptions,
    rng: &mut SimRng,
) -> Result<SimReport, SimError> {
    let p = net.processors();
    assert!(p > 0, "network must have processors");

    let mut cal: Calendar<Event> = Calendar::new();
    let mut queues: Vec<VecDeque<QueuedTask>> = vec![VecDeque::new(); p];
    let mut transmitting = vec![false; p];
    let mut backoff_until = vec![SimTime::ZERO; p];

    let mut allocations: u64 = 0;
    let target = opts.warmup_tasks + opts.measured_tasks;
    let mut delays = Welford::new();
    let mut responses = Welford::new();
    let mut queue_len = TimeWeighted::new(SimTime::ZERO, 0.0);
    let mut measure_start: Option<SimTime> = None;

    let mut arr_rng = rng.derive(0x41);
    let mut svc_rng = rng.derive(0x53);
    let mut net_rng = rng.derive(0x4e);
    let mut fault_rng = rng.derive(0x46);
    let mut timeline = faults.timeline(&mut fault_rng);
    let faults_active = !faults.is_empty();

    let mut in_flight = InFlightSlab::default();
    let mut next_seq: u64 = 0;
    let mut arrivals: u64 = 0;
    let mut completions: u64 = 0;
    let mut measured_completions: u64 = 0;
    let mut requeues: u64 = 0;
    let mut events_since_alloc: u64 = 0;

    for proc in 0..p {
        let dt = stages.interarrival.draw(&mut arr_rng);
        cal.schedule(SimTime::ZERO + dt, Event::Arrival(proc));
    }
    if let Some(fe) = timeline.pop() {
        cal.schedule(fe.time, Event::Fault(fe));
    }
    // Drop any counters accumulated before the run.
    let _ = net.take_counters();

    let mut warmup_counters_dropped = false;
    let mut end_time = SimTime::ZERO;

    // Per-cycle scratch, allocated once and reused every decision epoch.
    let mut ready = ReadySet::new(p);
    let mut granted_this_cycle = vec![false; p];
    let mut grants: Vec<Grant> = Vec::new();

    while allocations < target {
        // `pop_open` + `refill`: the arms that schedule exactly one
        // successor event (the bulk of all events) drop it straight into
        // the root hole with one sift; the rest drop the guard, which
        // repairs the heap as a plain `pop` would.
        let (now, ev, hole) = cal
            .pop_open()
            .expect("arrival self-scheduling keeps the calendar nonempty");
        end_time = now;
        events_since_alloc += 1;
        match ev {
            Event::Arrival(proc) => {
                arrivals += 1;
                queues[proc].push_back(QueuedTask {
                    arrival: now,
                    retries: 0,
                });
                queue_len.add(now, 1.0);
                let dt = stages.interarrival.draw(&mut arr_rng);
                hole.refill(now + dt, Event::Arrival(proc));
                ready.refresh_after_push(proc, now, &transmitting, &backoff_until);
            }
            Event::TxDone { task } => {
                let fl = in_flight.get_mut(task).expect("TxDone for unknown task");
                net.end_transmission(fl.grant);
                let proc = fl.grant.processor;
                transmitting[proc] = false;
                let dt = stages.service.draw(&mut svc_rng);
                fl.stage = Stage::Service;
                fl.handle = hole.refill(now + dt, Event::SvcDone { task });
                ready.refresh_after_txdone(proc, now, &queues, &backoff_until);
            }
            Event::SvcDone { task } => {
                drop(hole);
                let fl = in_flight.remove(task).expect("SvcDone for unknown task");
                net.end_service(fl.grant);
                completions += 1;
                if fl.measured {
                    measured_completions += 1;
                    responses.push(now - fl.arrival);
                }
            }
            Event::Fault(fe) => {
                drop(hole);
                apply_fault(
                    net,
                    &fe,
                    now,
                    fopts,
                    &mut cal,
                    &mut in_flight,
                    &mut queues,
                    &mut transmitting,
                    &mut backoff_until,
                    &mut queue_len,
                    &mut requeues,
                    &mut ready,
                );
                if let Some(next) = timeline.pop() {
                    cal.schedule(next.time, Event::Fault(next));
                }
            }
            // A backoff expired; the decision epoch below re-requests.
            Event::Resume(proc) => {
                drop(hole);
                debug_assert!(proc < p, "resume for unknown processor");
            }
        }

        // Decision epoch: let the network serve whoever is still waiting.
        ready.expire_backoffs(now, &transmitting, &queues, &backoff_until);
        if ready.count > 0 {
            net.request_cycle_pending(ready.as_pending(), &mut net_rng, &mut grants);
            for grant in grants.drain(..) {
                assert!(
                    ready.pending[grant.processor] && !granted_this_cycle[grant.processor],
                    "network granted processor {} that was not pending (or twice)",
                    grant.processor
                );
                granted_this_cycle[grant.processor] = true;
                let task = queues[grant.processor]
                    .pop_front()
                    .expect("pending implies nonempty queue");
                queue_len.add(now, -1.0);
                transmitting[grant.processor] = true;

                allocations += 1;
                events_since_alloc = 0;
                let measured = allocations > opts.warmup_tasks;
                if measured {
                    if measure_start.is_none() {
                        measure_start = Some(now);
                        queue_len.reset_at(now);
                        if !warmup_counters_dropped {
                            let _ = net.take_counters();
                            warmup_counters_dropped = true;
                        }
                    }
                    delays.push(now - task.arrival);
                }
                let dt = stages.transmission.draw(&mut svc_rng);
                let seq = next_seq;
                next_seq += 1;
                let id = in_flight.next_id();
                let handle = cal.schedule(now + dt, Event::TxDone { task: id });
                let stored = in_flight.insert(InFlight {
                    grant,
                    arrival: task.arrival,
                    retries: task.retries,
                    measured,
                    stage: Stage::Transmission,
                    handle,
                    seq,
                });
                debug_assert_eq!(stored, id);
                ready.clear_granted(grant.processor);
            }
            granted_this_cycle.fill(false);
        }

        // Livelock watchdog: only armed when faults are in play — a
        // fault-free run always progresses eventually.
        if faults_active && events_since_alloc > fopts.stall_event_budget {
            let queued: u64 = queues.iter().map(|q| q.len() as u64).sum();
            if queued > 0 {
                return Err(SimError::Stalled {
                    at: now.as_f64(),
                    queued,
                    events_since_progress: events_since_alloc,
                });
            }
        }
    }

    let start = measure_start.unwrap_or(end_time);
    let span = (end_time - start).max(f64::MIN_POSITIVE);
    Ok(SimReport {
        queueing_delay: delays,
        response_time: responses,
        mean_queue_length: queue_len.average(end_time),
        throughput: opts.measured_tasks as f64 / span,
        measured_time: span,
        counters: net.take_counters(),
        arrivals,
        completions,
        requeues,
        queued_at_end: queues.iter().map(|q| q.len() as u64).sum(),
        in_flight_at_end: in_flight.len() as u64,
        delivered_throughput: measured_completions as f64 / span,
    })
}

/// Applies one fault event: flips network state and, for an accepted
/// resource failure, turns the tasks holding that port into casualties —
/// their lifecycle events are cancelled and they rejoin the head of their
/// processor's queue behind a capped exponential backoff.
#[allow(clippy::too_many_arguments)]
fn apply_fault(
    net: &mut dyn ResourceNetwork,
    fe: &FaultEvent,
    now: SimTime,
    fopts: &FaultOptions,
    cal: &mut Calendar<Event>,
    in_flight: &mut InFlightSlab,
    queues: &mut [VecDeque<QueuedTask>],
    transmitting: &mut [bool],
    backoff_until: &mut [SimTime],
    queue_len: &mut TimeWeighted,
    requeues: &mut u64,
    ready: &mut ReadySet,
) {
    match (fe.target, fe.action) {
        (FaultTarget::Resource(port), FaultAction::Fail) => {
            if !net.fail_resource(port) {
                return;
            }
            // Allocation-ordered (by seq, not slot id — slots are recycled)
            // for a deterministic casualty order.
            let casualties = in_flight.casualties_at(port);
            for id in casualties {
                let fl = in_flight.remove(id).expect("listed above");
                cal.cancel(fl.handle);
                if fl.stage == Stage::Transmission {
                    transmitting[fl.grant.processor] = false;
                }
                *requeues += 1;
                let retries = fl.retries + 1;
                queues[fl.grant.processor].push_front(QueuedTask {
                    arrival: fl.arrival,
                    retries,
                });
                queue_len.add(now, 1.0);
                let exponent = (retries - 1).min(30);
                let backoff =
                    (fopts.backoff_base * f64::from(1u32 << exponent)).min(fopts.backoff_cap);
                let until = now + backoff;
                if until > backoff_until[fl.grant.processor] {
                    backoff_until[fl.grant.processor] = until;
                }
                cal.schedule(until, Event::Resume(fl.grant.processor));
                ready.refresh(fl.grant.processor, now, transmitting, queues, backoff_until);
                ready.watch_backoff(fl.grant.processor);
            }
        }
        (FaultTarget::Resource(port), FaultAction::Repair) => {
            net.repair_resource(port);
        }
        (FaultTarget::Element(element), FaultAction::Fail) => {
            net.fail_element(element);
        }
        (FaultTarget::Element(element), FaultAction::Repair) => {
            net.repair_element(element);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsin_queueing::{SharedBusChain, SharedBusParams};

    /// Minimal reference network: `p` processors on one shared bus with `r`
    /// resources, fixed-priority arbitration. This is the Section III system
    /// in its simplest form, used here to validate the simulator against
    /// the exact Markov chain. It supports resource faults on its single
    /// output port so the fault machinery can be tested without pulling in
    /// a real network crate.
    #[derive(Debug)]
    struct TinyBus {
        p: usize,
        r: u32,
        bus_busy: bool,
        busy_resources: u32,
        pool_up: bool,
        counters: NetworkCounters,
    }

    impl TinyBus {
        fn new(p: usize, r: u32) -> Self {
            TinyBus {
                p,
                r,
                bus_busy: false,
                busy_resources: 0,
                pool_up: true,
                counters: NetworkCounters::default(),
            }
        }
    }

    impl ResourceNetwork for TinyBus {
        fn processors(&self) -> usize {
            self.p
        }
        fn total_resources(&self) -> usize {
            self.r as usize
        }
        fn request_cycle(&mut self, pending: &[bool], _rng: &mut SimRng) -> Vec<Grant> {
            let n_pending = pending.iter().filter(|&&b| b).count() as u64;
            self.counters.attempts += n_pending;
            if !self.pool_up || self.bus_busy || self.busy_resources >= self.r {
                self.counters.rejections += n_pending;
                return Vec::new();
            }
            match pending.iter().position(|&b| b) {
                Some(proc) => {
                    self.bus_busy = true;
                    self.counters.rejections += n_pending - 1;
                    vec![Grant {
                        processor: proc,
                        port: 0,
                    }]
                }
                None => Vec::new(),
            }
        }
        fn end_transmission(&mut self, _grant: Grant) {
            self.bus_busy = false;
            self.busy_resources += 1;
        }
        fn end_service(&mut self, _grant: Grant) {
            self.busy_resources -= 1;
        }
        fn fail_resource(&mut self, port: usize) -> bool {
            if port != 0 || !self.pool_up {
                return false;
            }
            self.pool_up = false;
            // Casualties release internally per the trait contract.
            self.bus_busy = false;
            self.busy_resources = 0;
            self.counters.resource_failures += 1;
            true
        }
        fn repair_resource(&mut self, port: usize) -> bool {
            if port != 0 || self.pool_up {
                return false;
            }
            self.pool_up = true;
            self.counters.resource_repairs += 1;
            true
        }
        fn take_counters(&mut self) -> NetworkCounters {
            std::mem::take(&mut self.counters)
        }
        fn label(&self) -> &'static str {
            "TINYBUS"
        }
    }

    #[test]
    fn simulated_bus_matches_markov_chain() {
        let (p, r, lambda, mu_n, mu_s) = (4, 2, 0.06, 1.0, 0.5);
        let workload = Workload::new(lambda, mu_n, mu_s).expect("valid");
        let chain = SharedBusChain::new(SharedBusParams {
            processors: p as u32,
            resources: r,
            lambda,
            mu_n,
            mu_s,
        })
        .expect("stable");
        let exact = chain.solve().expect("solves").mean_queue_delay;

        let mut rng = SimRng::new(2024);
        let mut net = TinyBus::new(p, r);
        let opts = SimOptions {
            warmup_tasks: 5_000,
            measured_tasks: 120_000,
        };
        let report = simulate(&mut net, &workload, &opts, &mut rng);
        let rel = (report.mean_delay() - exact).abs() / exact;
        assert!(
            rel < 0.05,
            "simulated d {} vs exact {} (rel {rel})",
            report.mean_delay(),
            exact
        );
    }

    #[test]
    fn littles_law_holds_in_simulation() {
        let workload = Workload::new(0.08, 1.0, 0.5).expect("valid");
        let mut rng = SimRng::new(7);
        let mut net = TinyBus::new(4, 2);
        let opts = SimOptions {
            warmup_tasks: 3_000,
            measured_tasks: 60_000,
        };
        let report = simulate(&mut net, &workload, &opts, &mut rng);
        // L_q = Λ · d with Λ = p·λ = 0.32.
        let expect = 0.32 * report.mean_delay();
        let rel = (report.mean_queue_length - expect).abs() / expect;
        assert!(
            rel < 0.08,
            "L {} vs Λd {}",
            report.mean_queue_length,
            expect
        );
    }

    #[test]
    fn throughput_matches_offered_load() {
        let workload = Workload::new(0.05, 1.0, 1.0).expect("valid");
        let mut rng = SimRng::new(9);
        let mut net = TinyBus::new(4, 3);
        let opts = SimOptions {
            warmup_tasks: 2_000,
            measured_tasks: 50_000,
        };
        let report = simulate(&mut net, &workload, &opts, &mut rng);
        let rel = (report.throughput - 0.2).abs() / 0.2;
        assert!(rel < 0.05, "throughput {}", report.throughput);
    }

    #[test]
    fn response_time_exceeds_delay_by_stage_means() {
        let workload = Workload::new(0.05, 2.0, 1.0).expect("valid");
        let mut rng = SimRng::new(11);
        let mut net = TinyBus::new(2, 2);
        let opts = SimOptions {
            warmup_tasks: 2_000,
            measured_tasks: 50_000,
        };
        let report = simulate(&mut net, &workload, &opts, &mut rng);
        let expect = report.mean_delay() + 0.5 + 1.0;
        let got = report.response_time.mean();
        assert!(
            (got - expect).abs() / expect < 0.05,
            "response {got} vs d + 1/µn + 1/µs = {expect}"
        );
    }

    #[test]
    fn counters_report_contention() {
        let workload = Workload::new(0.2, 1.0, 1.0).expect("valid");
        let mut rng = SimRng::new(13);
        let mut net = TinyBus::new(4, 1); // heavily contended
        let opts = SimOptions {
            warmup_tasks: 500,
            measured_tasks: 5_000,
        };
        let report = simulate(&mut net, &workload, &opts, &mut rng);
        assert!(report.counters.attempts > 0);
        assert!(report.counters.rejection_ratio() > 0.1);
    }

    #[test]
    fn general_distributions_follow_pollaczek_khinchine() {
        // One processor, unlimited resources: the processor port is an
        // M/G/1 queue in the transmission stage. Deterministic transmission
        // halves the exponential waiting time (PK formula).
        use rsin_des::Deterministic;

        #[derive(Debug)]
        struct Unlimited;
        impl ResourceNetwork for Unlimited {
            fn processors(&self) -> usize {
                1
            }
            fn total_resources(&self) -> usize {
                usize::MAX
            }
            fn request_cycle(&mut self, pending: &[bool], _rng: &mut SimRng) -> Vec<Grant> {
                pending
                    .iter()
                    .enumerate()
                    .filter(|&(_, &b)| b)
                    .map(|(i, _)| Grant {
                        processor: i,
                        port: 0,
                    })
                    .collect()
            }
            fn end_transmission(&mut self, _grant: Grant) {}
            fn end_service(&mut self, _grant: Grant) {}
        }

        let (lambda, mu) = (0.5, 1.0);
        let opts = SimOptions {
            warmup_tasks: 3_000,
            measured_tasks: 60_000,
        };
        let arrivals = rsin_des::Exponential::with_rate(lambda);
        let service = rsin_des::Exponential::with_rate(4.0); // irrelevant stage

        let exp_tx = rsin_des::Exponential::with_rate(mu);
        let mut rng = SimRng::new(31);
        let d_exp = simulate_general(
            &mut Unlimited,
            &StageDistributions {
                interarrival: &arrivals,
                transmission: &exp_tx,
                service: &service,
            },
            &opts,
            &mut rng,
        )
        .mean_delay();

        let det_tx = Deterministic::new(1.0 / mu);
        let mut rng = SimRng::new(31);
        let d_det = simulate_general(
            &mut Unlimited,
            &StageDistributions {
                interarrival: &arrivals,
                transmission: &det_tx,
                service: &service,
            },
            &opts,
            &mut rng,
        )
        .mean_delay();

        // PK: Wq(M/M/1) = 1.0, Wq(M/D/1) = 0.5 at these rates.
        assert!((d_exp - 1.0).abs() < 0.08, "M/M/1 wait {d_exp}");
        assert!((d_det - 0.5).abs() < 0.05, "M/D/1 wait {d_det}");
    }

    #[test]
    fn deterministic_given_seed() {
        let workload = Workload::new(0.05, 1.0, 1.0).expect("valid");
        let opts = SimOptions {
            warmup_tasks: 100,
            measured_tasks: 2_000,
        };
        let run = |seed| {
            let mut rng = SimRng::new(seed);
            let mut net = TinyBus::new(4, 2);
            simulate(&mut net, &workload, &opts, &mut rng).mean_delay()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn simulator_rejects_misbehaving_networks() {
        // Failure injection: a network granting processors that are not
        // pending violates the ResourceNetwork contract; the simulator must
        // fail fast rather than corrupt statistics.
        #[derive(Debug)]
        struct Rogue;
        impl ResourceNetwork for Rogue {
            fn processors(&self) -> usize {
                2
            }
            fn total_resources(&self) -> usize {
                2
            }
            fn request_cycle(&mut self, _pending: &[bool], _rng: &mut SimRng) -> Vec<Grant> {
                // Always grants processor 1, pending or not.
                vec![
                    Grant {
                        processor: 1,
                        port: 0,
                    },
                    Grant {
                        processor: 1,
                        port: 1,
                    },
                ]
            }
            fn end_transmission(&mut self, _grant: Grant) {}
            fn end_service(&mut self, _grant: Grant) {}
        }
        let workload = Workload::new(0.5, 1.0, 1.0).expect("valid");
        let opts = SimOptions {
            warmup_tasks: 0,
            measured_tasks: 10,
        };
        let result = std::panic::catch_unwind(move || {
            let mut rng = SimRng::new(1);
            simulate(&mut Rogue, &workload, &opts, &mut rng)
        });
        assert!(result.is_err(), "double-grant must panic");
    }

    #[test]
    fn casualties_are_requeued_and_conserved() {
        use rsin_des::{FaultPlan, FaultTarget, StochasticFault};
        let workload = Workload::new(0.08, 1.0, 0.5).expect("valid");
        let mut rng = SimRng::new(17);
        let mut net = TinyBus::new(4, 2);
        let opts = SimOptions {
            warmup_tasks: 500,
            measured_tasks: 20_000,
        };
        // The single pool flaps: mean 40 time units up, 3 down.
        let plan = FaultPlan::new().stochastic(StochasticFault {
            target: FaultTarget::Resource(0),
            mtbf: 40.0,
            mttr: 3.0,
        });
        let report = simulate_faulty(
            &mut net,
            &workload,
            &opts,
            &plan,
            &FaultOptions::default(),
            &mut rng,
        )
        .expect("repairs keep the system live");
        assert!(report.requeues > 0, "flapping pool must create casualties");
        assert!(report.counters.resource_failures > 0);
        assert!(
            report.counters.resource_repairs >= report.counters.resource_failures.saturating_sub(1)
        );
        // No task silently lost.
        assert_eq!(
            report.arrivals,
            report.completions + report.queued_at_end + report.in_flight_at_end,
            "conservation: arrivals = completions + queued + in flight"
        );
        // Delivered throughput cannot exceed allocation throughput.
        assert!(report.delivered_throughput <= report.throughput * 1.001);
    }

    #[test]
    fn killing_every_resource_stalls_with_typed_error() {
        use rsin_des::{FaultPlan, FaultTarget};
        let workload = Workload::new(0.2, 1.0, 1.0).expect("valid");
        let mut rng = SimRng::new(5);
        let mut net = TinyBus::new(4, 2);
        let opts = SimOptions {
            warmup_tasks: 100,
            measured_tasks: 100_000,
        };
        // Kill the only pool early, never repair it.
        let plan = FaultPlan::new().fail_at(SimTime::new(5.0), FaultTarget::Resource(0));
        let fopts = FaultOptions {
            stall_event_budget: 5_000,
            ..FaultOptions::default()
        };
        let err = simulate_faulty(&mut net, &workload, &opts, &plan, &fopts, &mut rng)
            .expect_err("no capacity and no repair must stall");
        let SimError::Stalled {
            queued,
            events_since_progress,
            ..
        } = err;
        assert!(queued > 0);
        assert!(events_since_progress > 5_000);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn faulty_runs_are_deterministic_given_seed() {
        use rsin_des::{FaultPlan, FaultTarget, StochasticFault};
        let workload = Workload::new(0.08, 1.0, 0.5).expect("valid");
        let opts = SimOptions {
            warmup_tasks: 200,
            measured_tasks: 5_000,
        };
        let plan = FaultPlan::new().stochastic(StochasticFault {
            target: FaultTarget::Resource(0),
            mtbf: 30.0,
            mttr: 2.0,
        });
        let run = |seed| {
            let mut rng = SimRng::new(seed);
            let mut net = TinyBus::new(4, 2);
            let r = simulate_faulty(
                &mut net,
                &workload,
                &opts,
                &plan,
                &FaultOptions::default(),
                &mut rng,
            )
            .expect("live");
            (r.mean_delay(), r.requeues, r.completions)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn repair_restores_pre_fault_capacity() {
        use rsin_des::{FaultPlan, FaultTarget};
        // Fail the pool for a fixed window; after repair the delivered
        // throughput over a long run approaches the offered load again.
        let workload = Workload::new(0.05, 1.0, 1.0).expect("valid");
        let mut rng = SimRng::new(23);
        let mut net = TinyBus::new(4, 3);
        let opts = SimOptions {
            warmup_tasks: 2_000,
            measured_tasks: 50_000,
        };
        let plan = FaultPlan::new()
            .fail_at(SimTime::new(100.0), FaultTarget::Resource(0))
            .repair_at(SimTime::new(130.0), FaultTarget::Resource(0));
        let report = simulate_faulty(
            &mut net,
            &workload,
            &opts,
            &plan,
            &FaultOptions::default(),
            &mut rng,
        )
        .expect("repaired");
        // Offered load Λ = 4 · 0.05 = 0.2; one 30-unit outage in a
        // ~250k-unit run is invisible at this tolerance.
        let rel = (report.throughput - 0.2).abs() / 0.2;
        assert!(rel < 0.05, "throughput {} after repair", report.throughput);
    }

    #[test]
    fn fault_at_t_zero_and_zero_duration_window_complete_cleanly() {
        use rsin_des::{FaultPlan, FaultTarget};
        // Two timeline edge cases the resilient harness leans on: the pool
        // is already down when the first task arrives (fail at t = 0), and
        // a later fail/repair pair lands at the same instant (zero-duration
        // window). Both must leave the engine live and task-conserving.
        let workload = Workload::new(0.05, 1.0, 0.5).expect("valid");
        let mut rng = SimRng::new(41);
        let mut net = TinyBus::new(4, 2);
        let opts = SimOptions {
            warmup_tasks: 500,
            measured_tasks: 10_000,
        };
        let plan = FaultPlan::new()
            .fail_at(SimTime::ZERO, FaultTarget::Resource(0))
            .repair_at(SimTime::new(20.0), FaultTarget::Resource(0))
            .fail_at(SimTime::new(50.0), FaultTarget::Resource(0))
            .repair_at(SimTime::new(50.0), FaultTarget::Resource(0));
        let report = simulate_faulty(
            &mut net,
            &workload,
            &opts,
            &plan,
            &FaultOptions::default(),
            &mut rng,
        )
        .expect("repairs keep the system live");
        // All four fault events land inside the warmup window, and network
        // counters cover the measured window only — so no failures are
        // *counted*, but the run must still complete and conserve tasks.
        assert_eq!(report.counters.resource_failures, 0);
        assert_eq!(report.counters.resource_repairs, 0);
        assert!(report.completions > 0);
        assert_eq!(
            report.arrivals,
            report.completions + report.queued_at_end + report.in_flight_at_end,
            "conservation with a t=0 fault and a zero-duration window"
        );
    }

    #[test]
    fn fault_free_plan_matches_plain_simulate() {
        use rsin_des::FaultPlan;
        let workload = Workload::new(0.06, 1.0, 0.5).expect("valid");
        let opts = SimOptions {
            warmup_tasks: 500,
            measured_tasks: 10_000,
        };
        let mut rng_a = SimRng::new(77);
        let mut net_a = TinyBus::new(4, 2);
        let plain = simulate(&mut net_a, &workload, &opts, &mut rng_a);
        let mut rng_b = SimRng::new(77);
        let mut net_b = TinyBus::new(4, 2);
        let faulty = simulate_faulty(
            &mut net_b,
            &workload,
            &opts,
            &FaultPlan::new(),
            &FaultOptions::default(),
            &mut rng_b,
        )
        .expect("no faults");
        assert_eq!(plain.mean_delay(), faulty.mean_delay());
        assert_eq!(plain.requeues, 0);
        assert_eq!(faulty.requeues, 0);
    }

    #[test]
    fn normalized_delay_scales_by_mu_s() {
        let workload = Workload::new(0.05, 1.0, 2.0).expect("valid");
        let mut rng = SimRng::new(3);
        let mut net = TinyBus::new(2, 2);
        let opts = SimOptions {
            warmup_tasks: 500,
            measured_tasks: 5_000,
        };
        let report = simulate(&mut net, &workload, &opts, &mut rng);
        assert!((report.normalized_delay(&workload) - report.mean_delay() * 2.0).abs() < 1e-12);
    }
}
