//! The task-lifecycle simulator (Section II, assumptions (a)–(f)).
//!
//! Drives any [`ResourceNetwork`] with Poisson arrivals per processor,
//! exponential transmission and service stages, FIFO queueing at the
//! processors, no queueing at the resources, and retry-on-status-change for
//! blocked requests. The headline output is `d`, the mean delay from task
//! arrival until a resource is allocated, matching the paper's eq. (1).

use crate::network::{Grant, NetworkCounters, ResourceNetwork};
use crate::workload::Workload;
use rsin_des::stats::{TimeWeighted, Welford};
use rsin_des::{Calendar, Draw, Exponential, SimRng, SimTime};
use std::collections::VecDeque;

/// The three stochastic stages of the task lifecycle, as arbitrary
/// distributions.
///
/// The paper assumes all three are Markovian (assumption (a));
/// [`simulate_general`] lets sensitivity studies swap any stage for
/// deterministic, Erlang, or hyperexponential alternatives while keeping
/// the same lifecycle semantics.
#[derive(Debug, Clone, Copy)]
pub struct StageDistributions<'a> {
    /// Interarrival time at each processor.
    pub interarrival: &'a dyn Draw,
    /// Task transmission time over the held circuit.
    pub transmission: &'a dyn Draw,
    /// Service time at the resource.
    pub service: &'a dyn Draw,
}

/// Run-length controls for one simulation run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimOptions {
    /// Allocations to discard while the system warms up.
    pub warmup_tasks: u64,
    /// Allocations to measure after warm-up.
    pub measured_tasks: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            warmup_tasks: 2_000,
            measured_tasks: 20_000,
        }
    }
}

/// Output statistics of one simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Queueing delay `d` (arrival → allocation) observations.
    pub queueing_delay: Welford,
    /// Response time (arrival → service completion) observations.
    pub response_time: Welford,
    /// Time-average number of queued tasks over the measurement window.
    pub mean_queue_length: f64,
    /// Measured allocations per unit time.
    pub throughput: f64,
    /// Simulated time spent in the measurement window.
    pub measured_time: f64,
    /// Network scheduling counters accumulated over the measurement window.
    pub counters: NetworkCounters,
}

impl SimReport {
    /// Mean queueing delay `d`.
    #[must_use]
    pub fn mean_delay(&self) -> f64 {
        self.queueing_delay.mean()
    }

    /// Mean delay normalized by the mean service time (`d · µ_s`), the unit
    /// of the paper's figures.
    #[must_use]
    pub fn normalized_delay(&self, workload: &Workload) -> f64 {
        self.mean_delay() * workload.mu_s()
    }
}

#[derive(Debug)]
enum Event {
    Arrival(usize),
    TxDone { grant: Grant, arrival: SimTime, measured: bool },
    SvcDone { arrival: SimTime, measured: bool, grant: Grant },
}

/// Simulates `net` under `workload` until `opts.measured_tasks` allocations
/// have been measured (after discarding `opts.warmup_tasks`).
///
/// # Panics
///
/// Panics if the network reports zero processors, grants a non-pending
/// processor, or double-grants a processor within a cycle — all of which
/// indicate a broken [`ResourceNetwork`] implementation.
pub fn simulate(
    net: &mut dyn ResourceNetwork,
    workload: &Workload,
    opts: &SimOptions,
    rng: &mut SimRng,
) -> SimReport {
    let interarrival = Exponential::with_rate(workload.lambda());
    let transmission = Exponential::with_rate(workload.mu_n());
    let service = Exponential::with_rate(workload.mu_s());
    simulate_general(
        net,
        &StageDistributions {
            interarrival: &interarrival,
            transmission: &transmission,
            service: &service,
        },
        opts,
        rng,
    )
}

/// [`simulate`] with arbitrary stage distributions (the exponential
/// assumptions relaxed).
///
/// # Panics
///
/// Same contract as [`simulate`].
pub fn simulate_general(
    net: &mut dyn ResourceNetwork,
    stages: &StageDistributions<'_>,
    opts: &SimOptions,
    rng: &mut SimRng,
) -> SimReport {
    let p = net.processors();
    assert!(p > 0, "network must have processors");

    let mut cal: Calendar<Event> = Calendar::new();
    let mut queues: Vec<VecDeque<SimTime>> = vec![VecDeque::new(); p];
    let mut transmitting = vec![false; p];

    let mut allocations: u64 = 0;
    let target = opts.warmup_tasks + opts.measured_tasks;
    let mut delays = Welford::new();
    let mut responses = Welford::new();
    let mut queue_len = TimeWeighted::new(SimTime::ZERO, 0.0);
    let mut measure_start: Option<SimTime> = None;

    let mut arr_rng = rng.derive(0x41);
    let mut svc_rng = rng.derive(0x53);
    let mut net_rng = rng.derive(0x4e);

    for proc in 0..p {
        let dt = stages.interarrival.draw(&mut arr_rng);
        cal.schedule(SimTime::ZERO + dt, Event::Arrival(proc));
    }
    // Drop any counters accumulated before the run.
    let _ = net.take_counters();

    let mut warmup_counters_dropped = false;
    let mut end_time = SimTime::ZERO;

    while allocations < target {
        let (now, ev) = cal.pop().expect("arrival self-scheduling keeps the calendar nonempty");
        end_time = now;
        match ev {
            Event::Arrival(proc) => {
                queues[proc].push_back(now);
                queue_len.add(now, 1.0);
                let dt = stages.interarrival.draw(&mut arr_rng);
                cal.schedule(now + dt, Event::Arrival(proc));
            }
            Event::TxDone { grant, arrival, measured } => {
                net.end_transmission(grant);
                transmitting[grant.processor] = false;
                let dt = stages.service.draw(&mut svc_rng);
                cal.schedule(now + dt, Event::SvcDone { arrival, measured, grant });
            }
            Event::SvcDone { arrival, measured, grant } => {
                net.end_service(grant);
                if measured {
                    responses.push(now - arrival);
                }
            }
        }

        // Decision epoch: let the network serve whoever is still waiting.
        let pending: Vec<bool> = (0..p)
            .map(|i| !transmitting[i] && !queues[i].is_empty())
            .collect();
        if pending.iter().any(|&b| b) {
            let grants = net.request_cycle(&pending, &mut net_rng);
            let mut granted_this_cycle = vec![false; p];
            for grant in grants {
                assert!(
                    pending[grant.processor] && !granted_this_cycle[grant.processor],
                    "network granted processor {} that was not pending (or twice)",
                    grant.processor
                );
                granted_this_cycle[grant.processor] = true;
                let arrival = queues[grant.processor]
                    .pop_front()
                    .expect("pending implies nonempty queue");
                queue_len.add(now, -1.0);
                transmitting[grant.processor] = true;

                allocations += 1;
                let measured = allocations > opts.warmup_tasks;
                if measured {
                    if measure_start.is_none() {
                        measure_start = Some(now);
                        queue_len.reset_at(now);
                        if !warmup_counters_dropped {
                            let _ = net.take_counters();
                            warmup_counters_dropped = true;
                        }
                    }
                    delays.push(now - arrival);
                }
                let dt = stages.transmission.draw(&mut svc_rng);
                cal.schedule(now + dt, Event::TxDone { grant, arrival, measured });
            }
        }
    }

    let start = measure_start.unwrap_or(end_time);
    let span = (end_time - start).max(f64::MIN_POSITIVE);
    SimReport {
        queueing_delay: delays,
        response_time: responses,
        mean_queue_length: queue_len.average(end_time),
        throughput: opts.measured_tasks as f64 / span,
        measured_time: span,
        counters: net.take_counters(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsin_queueing::{SharedBusChain, SharedBusParams};

    /// Minimal reference network: `p` processors on one shared bus with `r`
    /// resources, fixed-priority arbitration. This is the Section III system
    /// in its simplest form, used here to validate the simulator against
    /// the exact Markov chain.
    #[derive(Debug)]
    struct TinyBus {
        p: usize,
        r: u32,
        bus_busy: bool,
        busy_resources: u32,
        counters: NetworkCounters,
    }

    impl TinyBus {
        fn new(p: usize, r: u32) -> Self {
            TinyBus {
                p,
                r,
                bus_busy: false,
                busy_resources: 0,
                counters: NetworkCounters::default(),
            }
        }
    }

    impl ResourceNetwork for TinyBus {
        fn processors(&self) -> usize {
            self.p
        }
        fn total_resources(&self) -> usize {
            self.r as usize
        }
        fn request_cycle(&mut self, pending: &[bool], _rng: &mut SimRng) -> Vec<Grant> {
            let n_pending = pending.iter().filter(|&&b| b).count() as u64;
            self.counters.attempts += n_pending;
            if self.bus_busy || self.busy_resources >= self.r {
                self.counters.rejections += n_pending;
                return Vec::new();
            }
            match pending.iter().position(|&b| b) {
                Some(proc) => {
                    self.bus_busy = true;
                    self.counters.rejections += n_pending - 1;
                    vec![Grant { processor: proc, port: 0 }]
                }
                None => Vec::new(),
            }
        }
        fn end_transmission(&mut self, _grant: Grant) {
            self.bus_busy = false;
            self.busy_resources += 1;
        }
        fn end_service(&mut self, _grant: Grant) {
            self.busy_resources -= 1;
        }
        fn take_counters(&mut self) -> NetworkCounters {
            std::mem::take(&mut self.counters)
        }
        fn label(&self) -> &'static str {
            "TINYBUS"
        }
    }

    #[test]
    fn simulated_bus_matches_markov_chain() {
        let (p, r, lambda, mu_n, mu_s) = (4, 2, 0.06, 1.0, 0.5);
        let workload = Workload::new(lambda, mu_n, mu_s).expect("valid");
        let chain = SharedBusChain::new(SharedBusParams {
            processors: p as u32,
            resources: r,
            lambda,
            mu_n,
            mu_s,
        })
        .expect("stable");
        let exact = chain.solve().expect("solves").mean_queue_delay;

        let mut rng = SimRng::new(2024);
        let mut net = TinyBus::new(p, r);
        let opts = SimOptions {
            warmup_tasks: 5_000,
            measured_tasks: 120_000,
        };
        let report = simulate(&mut net, &workload, &opts, &mut rng);
        let rel = (report.mean_delay() - exact).abs() / exact;
        assert!(
            rel < 0.05,
            "simulated d {} vs exact {} (rel {rel})",
            report.mean_delay(),
            exact
        );
    }

    #[test]
    fn littles_law_holds_in_simulation() {
        let workload = Workload::new(0.08, 1.0, 0.5).expect("valid");
        let mut rng = SimRng::new(7);
        let mut net = TinyBus::new(4, 2);
        let opts = SimOptions {
            warmup_tasks: 3_000,
            measured_tasks: 60_000,
        };
        let report = simulate(&mut net, &workload, &opts, &mut rng);
        // L_q = Λ · d with Λ = p·λ = 0.32.
        let expect = 0.32 * report.mean_delay();
        let rel = (report.mean_queue_length - expect).abs() / expect;
        assert!(rel < 0.08, "L {} vs Λd {}", report.mean_queue_length, expect);
    }

    #[test]
    fn throughput_matches_offered_load() {
        let workload = Workload::new(0.05, 1.0, 1.0).expect("valid");
        let mut rng = SimRng::new(9);
        let mut net = TinyBus::new(4, 3);
        let opts = SimOptions {
            warmup_tasks: 2_000,
            measured_tasks: 50_000,
        };
        let report = simulate(&mut net, &workload, &opts, &mut rng);
        let rel = (report.throughput - 0.2).abs() / 0.2;
        assert!(rel < 0.05, "throughput {}", report.throughput);
    }

    #[test]
    fn response_time_exceeds_delay_by_stage_means() {
        let workload = Workload::new(0.05, 2.0, 1.0).expect("valid");
        let mut rng = SimRng::new(11);
        let mut net = TinyBus::new(2, 2);
        let opts = SimOptions {
            warmup_tasks: 2_000,
            measured_tasks: 50_000,
        };
        let report = simulate(&mut net, &workload, &opts, &mut rng);
        let expect = report.mean_delay() + 0.5 + 1.0;
        let got = report.response_time.mean();
        assert!(
            (got - expect).abs() / expect < 0.05,
            "response {got} vs d + 1/µn + 1/µs = {expect}"
        );
    }

    #[test]
    fn counters_report_contention() {
        let workload = Workload::new(0.2, 1.0, 1.0).expect("valid");
        let mut rng = SimRng::new(13);
        let mut net = TinyBus::new(4, 1); // heavily contended
        let opts = SimOptions {
            warmup_tasks: 500,
            measured_tasks: 5_000,
        };
        let report = simulate(&mut net, &workload, &opts, &mut rng);
        assert!(report.counters.attempts > 0);
        assert!(report.counters.rejection_ratio() > 0.1);
    }

    #[test]
    fn general_distributions_follow_pollaczek_khinchine() {
        // One processor, unlimited resources: the processor port is an
        // M/G/1 queue in the transmission stage. Deterministic transmission
        // halves the exponential waiting time (PK formula).
        use rsin_des::Deterministic;

        #[derive(Debug)]
        struct Unlimited;
        impl ResourceNetwork for Unlimited {
            fn processors(&self) -> usize {
                1
            }
            fn total_resources(&self) -> usize {
                usize::MAX
            }
            fn request_cycle(&mut self, pending: &[bool], _rng: &mut SimRng) -> Vec<Grant> {
                pending
                    .iter()
                    .enumerate()
                    .filter(|&(_, &b)| b)
                    .map(|(i, _)| Grant { processor: i, port: 0 })
                    .collect()
            }
            fn end_transmission(&mut self, _grant: Grant) {}
            fn end_service(&mut self, _grant: Grant) {}
        }

        let (lambda, mu) = (0.5, 1.0);
        let opts = SimOptions {
            warmup_tasks: 3_000,
            measured_tasks: 60_000,
        };
        let arrivals = rsin_des::Exponential::with_rate(lambda);
        let service = rsin_des::Exponential::with_rate(4.0); // irrelevant stage

        let exp_tx = rsin_des::Exponential::with_rate(mu);
        let mut rng = SimRng::new(31);
        let d_exp = simulate_general(
            &mut Unlimited,
            &StageDistributions {
                interarrival: &arrivals,
                transmission: &exp_tx,
                service: &service,
            },
            &opts,
            &mut rng,
        )
        .mean_delay();

        let det_tx = Deterministic::new(1.0 / mu);
        let mut rng = SimRng::new(31);
        let d_det = simulate_general(
            &mut Unlimited,
            &StageDistributions {
                interarrival: &arrivals,
                transmission: &det_tx,
                service: &service,
            },
            &opts,
            &mut rng,
        )
        .mean_delay();

        // PK: Wq(M/M/1) = 1.0, Wq(M/D/1) = 0.5 at these rates.
        assert!((d_exp - 1.0).abs() < 0.08, "M/M/1 wait {d_exp}");
        assert!((d_det - 0.5).abs() < 0.05, "M/D/1 wait {d_det}");
    }

    #[test]
    fn deterministic_given_seed() {
        let workload = Workload::new(0.05, 1.0, 1.0).expect("valid");
        let opts = SimOptions {
            warmup_tasks: 100,
            measured_tasks: 2_000,
        };
        let run = |seed| {
            let mut rng = SimRng::new(seed);
            let mut net = TinyBus::new(4, 2);
            simulate(&mut net, &workload, &opts, &mut rng).mean_delay()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn simulator_rejects_misbehaving_networks() {
        // Failure injection: a network granting processors that are not
        // pending violates the ResourceNetwork contract; the simulator must
        // fail fast rather than corrupt statistics.
        #[derive(Debug)]
        struct Rogue;
        impl ResourceNetwork for Rogue {
            fn processors(&self) -> usize {
                2
            }
            fn total_resources(&self) -> usize {
                2
            }
            fn request_cycle(&mut self, _pending: &[bool], _rng: &mut SimRng) -> Vec<Grant> {
                // Always grants processor 1, pending or not.
                vec![
                    Grant { processor: 1, port: 0 },
                    Grant { processor: 1, port: 1 },
                ]
            }
            fn end_transmission(&mut self, _grant: Grant) {}
            fn end_service(&mut self, _grant: Grant) {}
        }
        let workload = Workload::new(0.5, 1.0, 1.0).expect("valid");
        let opts = SimOptions {
            warmup_tasks: 0,
            measured_tasks: 10,
        };
        let result = std::panic::catch_unwind(move || {
            let mut rng = SimRng::new(1);
            simulate(&mut Rogue, &workload, &opts, &mut rng)
        });
        assert!(result.is_err(), "double-grant must panic");
    }

    #[test]
    fn normalized_delay_scales_by_mu_s() {
        let workload = Workload::new(0.05, 1.0, 2.0).expect("valid");
        let mut rng = SimRng::new(3);
        let mut net = TinyBus::new(2, 2);
        let opts = SimOptions {
            warmup_tasks: 500,
            measured_tasks: 5_000,
        };
        let report = simulate(&mut net, &workload, &opts, &mut rng);
        assert!(
            (report.normalized_delay(&workload) - report.mean_delay() * 2.0).abs() < 1e-12
        );
    }
}
