//! # rsin-core — resource-sharing interconnection networks
//!
//! The unifying layer of the RSIN reproduction of Wah, *"A Comparative Study
//! of Distributed Resource Sharing on Multiprocessors"* (1983). A
//! resource-sharing request is directed at *any* free member of a pool of
//! identical resources; the paper's contribution is to distribute the
//! scheduling of such requests into the interconnection network itself.
//! This crate defines everything the three network families
//! (`rsin-sbus`, `rsin-xbar`, `rsin-omega`) share:
//!
//! - [`SystemConfig`] / [`NetworkKind`]: the paper's `p/i×j×k N/r`
//!   configuration notation, parsed and validated.
//! - [`Workload`]: Poisson arrivals, exponential transmission (`µ_n`) and
//!   service (`µ_s`), and the reference traffic-intensity convention.
//! - [`ResourceNetwork`] + [`Grant`]: the contract a network implements —
//!   request cycles in, grants out, circuit release at end of transmission,
//!   resource release at end of service.
//! - [`simulate`] / [`SimOptions`] / [`SimReport`]: the task-lifecycle
//!   discrete-event simulator measuring the paper's delay metric `d`.
//! - [`simulate_faulty`] / [`FaultOptions`] / [`SimError`]: the same
//!   lifecycle under a fault-injection plan, with casualty requeueing and
//!   a livelock watchdog.
//! - [`estimate_delay`]: replicated runs with confidence intervals.
//! - [`experiment`]: text/CSV rendering for the figure regenerators.
//! - [`advisor`]: the Table-II network-selection decision rule.
//!
//! # Example
//!
//! ```
//! use rsin_core::{SystemConfig, Workload};
//!
//! let cfg: SystemConfig = "16/1x16x16 OMEGA/2".parse()?;
//! assert_eq!(cfg.total_resources(), 32);
//! // A Fig. 12 load point: µ_s/µ_n = 0.1, ρ = 0.4.
//! let w = Workload::for_intensity(&cfg, 0.4, 0.1)?;
//! assert!((w.intensity(&cfg) - 0.4).abs() < 1e-12);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod advisor;
mod config;
mod error;
pub mod experiment;
mod network;
pub mod resolvers;
pub mod roundtrip;
mod runner;
mod sim;
pub mod typed;
mod workload;

pub use config::{NetworkKind, SystemConfig};
pub use error::{ConfigError, HarnessError};
pub use network::{Grant, NetworkCounters, PendingSet, ResourceNetwork};
pub use resolvers::{default_resolver_engine, ResolverEngine};
pub use runner::{estimate_delay, estimate_delay_jobs, DelayEstimate};
pub use sim::{
    simulate, simulate_faulty, simulate_general, simulate_general_faulty, FaultOptions, SimError,
    SimOptions, SimReport, StageDistributions,
};
pub use workload::Workload;
