//! Replicated simulation runs with confidence intervals.
//!
//! Builds on [`rsin_des::replicate_par`]: each replication constructs a
//! fresh network from a factory, simulates it, and reports the mean
//! normalized queueing delay; the spread across replications gives the 95%
//! interval attached to simulation points on the figures. Replication `i`
//! draws only from `SimRng::new(seed).derive(i)`, so the estimate is a pure
//! function of `(seed, workload, opts, reps)` — independent of the worker
//! count.

use crate::network::ResourceNetwork;
use crate::sim::{simulate, SimOptions};
use crate::workload::Workload;
use rsin_des::{replicate_par, SimRng};

/// A replicated delay estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DelayEstimate {
    /// Mean normalized queueing delay (`d·µ_s`) across replications.
    pub normalized_delay: f64,
    /// 95% half-width across replications (0 for a single replication).
    pub half_width: f64,
}

/// Estimates the normalized queueing delay of a network under `workload`
/// with `reps` independent replications run on the default worker count
/// ([`rsin_des::default_jobs`]).
///
/// `factory` must build a fresh, identically configured network for each
/// replication.
///
/// # Panics
///
/// Panics if `reps == 0` (via the replication runner) or if the factory
/// produces a network that violates the simulator's contracts.
pub fn estimate_delay<F>(
    factory: F,
    workload: &Workload,
    opts: &SimOptions,
    seed: u64,
    reps: usize,
) -> DelayEstimate
where
    F: Fn() -> Box<dyn ResourceNetwork> + Sync,
{
    estimate_delay_jobs(
        factory,
        workload,
        opts,
        seed,
        reps,
        rsin_des::default_jobs(),
    )
}

/// [`estimate_delay`] with an explicit worker count. The estimate is
/// bitwise identical for every `jobs` value (replications are collected by
/// index); `jobs <= 1` runs fully inline.
///
/// # Panics
///
/// Panics if `reps == 0` (via the replication runner) or if the factory
/// produces a network that violates the simulator's contracts.
pub fn estimate_delay_jobs<F>(
    factory: F,
    workload: &Workload,
    opts: &SimOptions,
    seed: u64,
    reps: usize,
    jobs: usize,
) -> DelayEstimate
where
    F: Fn() -> Box<dyn ResourceNetwork> + Sync,
{
    let base = SimRng::new(seed);
    let out = replicate_par(&base, reps, 0.95, jobs, |_, mut rng| {
        let mut net = factory();
        let report = simulate(net.as_mut(), workload, opts, &mut rng);
        report.normalized_delay(workload)
    });
    DelayEstimate {
        normalized_delay: out.mean(),
        half_width: out.interval.map_or(0.0, |ci| ci.half_width),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Grant, NetworkCounters};

    /// Trivial infinite-capacity network: every pending processor is granted
    /// instantly, so the queueing delay is exactly zero.
    #[derive(Debug)]
    struct InstantNet {
        p: usize,
    }

    impl ResourceNetwork for InstantNet {
        fn processors(&self) -> usize {
            self.p
        }
        fn total_resources(&self) -> usize {
            usize::MAX
        }
        fn request_cycle(&mut self, pending: &[bool], _rng: &mut SimRng) -> Vec<Grant> {
            pending
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b)
                .map(|(i, _)| Grant {
                    processor: i,
                    port: 0,
                })
                .collect()
        }
        fn end_transmission(&mut self, _grant: Grant) {}
        fn end_service(&mut self, _grant: Grant) {}
        fn take_counters(&mut self) -> NetworkCounters {
            NetworkCounters::default()
        }
    }

    #[test]
    fn instant_network_reduces_to_mm1_per_processor() {
        // Even with an infinitely capable network, a processor transmits one
        // task at a time (assumption (f)), so each processor is an M/M/1
        // queue with service rate µ_n: Wq = λ/(µ_n(µ_n−λ))·µ_n = 3/7 here.
        let workload = Workload::new(0.3, 1.0, 1.0).expect("valid");
        let opts = SimOptions {
            warmup_tasks: 2_000,
            measured_tasks: 40_000,
        };
        let est = estimate_delay(|| Box::new(InstantNet { p: 4 }), &workload, &opts, 42, 4);
        let expect = 0.3 / (1.0 - 0.3);
        let rel = (est.normalized_delay - expect).abs() / expect;
        assert!(
            rel < 0.05,
            "delay {} vs M/M/1 Wq {expect}",
            est.normalized_delay
        );
        assert!(est.half_width > 0.0, "replications must spread");
    }

    #[test]
    fn estimate_is_deterministic_for_seed() {
        let workload = Workload::new(0.3, 1.0, 1.0).expect("valid");
        let opts = SimOptions {
            warmup_tasks: 10,
            measured_tasks: 100,
        };
        let run = || {
            estimate_delay(|| Box::new(InstantNet { p: 2 }), &workload, &opts, 7, 2)
                .normalized_delay
        };
        assert_eq!(run(), run());
    }
}
