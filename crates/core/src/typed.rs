//! Multiple resource types — the paper's stated extension (Sections V and
//! VII).
//!
//! "The algorithms presented in this paper can be extended easily to systems
//! with multiple types of resources. The request and status signals have to
//! be augmented by a type number." Each task requests exactly one resource
//! of one *type*; each output port hosts resources of a single type; status
//! information is kept per type. The open question the paper flags — "the
//! problem on the number and placement of each type of resources in the
//! network is still open" — is exactly what the placement ablation probes.

use crate::network::NetworkCounters;
use crate::sim::SimOptions;
use crate::workload::Workload;
use rsin_des::stats::Welford;
use rsin_des::{Calendar, SimRng, SimTime};
use std::collections::VecDeque;

/// A granted typed connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TypedGrant {
    /// The processor whose head-of-queue task was granted.
    pub processor: usize,
    /// Global output-port index the circuit terminates at.
    pub port: usize,
    /// The resource type served.
    pub resource_type: usize,
}

/// A resource-sharing network that understands typed requests.
pub trait TypedResourceNetwork: std::fmt::Debug {
    /// Number of processors.
    fn processors(&self) -> usize;

    /// Number of resource types.
    fn resource_types(&self) -> usize;

    /// One request cycle: `pending[i]` carries the type processor `i`'s
    /// head-of-queue task requests, or `None` when processor `i` has
    /// nothing waiting.
    fn request_cycle(&mut self, pending: &[Option<usize>], rng: &mut SimRng) -> Vec<TypedGrant>;

    /// Transmission finished: release the circuit; the resource begins
    /// service.
    fn end_transmission(&mut self, grant: TypedGrant);

    /// Service finished: the resource frees and status propagates.
    fn end_service(&mut self, grant: TypedGrant);

    /// Drains accumulated counters.
    fn take_counters(&mut self) -> NetworkCounters {
        NetworkCounters::default()
    }
}

/// Workload over typed tasks: arrivals are Poisson per processor; each task
/// requests type `t` with probability `mix[t]`.
#[derive(Clone, Debug, PartialEq)]
pub struct TypedWorkload {
    base: Workload,
    mix: Vec<f64>,
}

impl TypedWorkload {
    /// Builds a typed workload from per-type request probabilities.
    ///
    /// # Errors
    ///
    /// [`crate::ConfigError::Invalid`] if the mix is empty, has negative
    /// entries, or does not sum to 1 (±1e-9).
    pub fn new(base: Workload, mix: Vec<f64>) -> Result<Self, crate::ConfigError> {
        if mix.is_empty() {
            return Err(crate::ConfigError::Invalid {
                what: "type mix must not be empty".into(),
            });
        }
        if mix.iter().any(|&p| !(0.0..=1.0).contains(&p)) {
            return Err(crate::ConfigError::Invalid {
                what: "type probabilities must lie in [0, 1]".into(),
            });
        }
        let total: f64 = mix.iter().sum();
        if (total - 1.0).abs() > 1e-9 {
            return Err(crate::ConfigError::Invalid {
                what: format!("type mix must sum to 1, got {total}"),
            });
        }
        Ok(TypedWorkload { base, mix })
    }

    /// The underlying rate parameters.
    #[must_use]
    pub fn base(&self) -> &Workload {
        &self.base
    }

    /// Number of types.
    #[must_use]
    pub fn types(&self) -> usize {
        self.mix.len()
    }

    /// Samples a task type.
    #[must_use]
    pub fn draw_type(&self, rng: &mut SimRng) -> usize {
        let u = rng.uniform();
        let mut acc = 0.0;
        for (t, &p) in self.mix.iter().enumerate() {
            acc += p;
            if u < acc {
                return t;
            }
        }
        self.mix.len() - 1
    }
}

/// Output of a typed simulation run.
#[derive(Clone, Debug)]
pub struct TypedSimReport {
    /// Queueing delay over all tasks.
    pub queueing_delay: Welford,
    /// Queueing delay per type.
    pub per_type_delay: Vec<Welford>,
    /// Network counters over the measurement window.
    pub counters: NetworkCounters,
}

impl TypedSimReport {
    /// Overall mean delay normalized by the mean service time.
    #[must_use]
    pub fn normalized_delay(&self, workload: &TypedWorkload) -> f64 {
        self.queueing_delay.mean() * workload.base().mu_s()
    }
}

#[derive(Debug)]
enum Event {
    Arrival(usize),
    TxDone { grant: TypedGrant },
    SvcDone { grant: TypedGrant },
}

/// Simulates a typed network under `workload` (typed analogue of
/// [`crate::simulate`]).
///
/// # Panics
///
/// Panics if the network misbehaves (grants a non-pending processor or a
/// mismatched type).
pub fn simulate_typed(
    net: &mut dyn TypedResourceNetwork,
    workload: &TypedWorkload,
    opts: &SimOptions,
    rng: &mut SimRng,
) -> TypedSimReport {
    let p = net.processors();
    assert!(p > 0, "network must have processors");
    let n_types = net.resource_types();
    assert!(
        workload.types() <= n_types,
        "workload has more types than the network hosts"
    );

    let mut cal: Calendar<Event> = Calendar::new();
    // Each queue entry: (arrival time, requested type).
    let mut queues: Vec<VecDeque<(SimTime, usize)>> = vec![VecDeque::new(); p];
    let mut transmitting = vec![false; p];

    let mut allocations: u64 = 0;
    let target = opts.warmup_tasks + opts.measured_tasks;
    let mut delays = Welford::new();
    let mut per_type = vec![Welford::new(); n_types];

    let mut arr_rng = rng.derive(0x41);
    let mut svc_rng = rng.derive(0x53);
    let mut net_rng = rng.derive(0x4e);
    let mut type_rng = rng.derive(0x54);

    for proc in 0..p {
        let dt = arr_rng.exponential(workload.base().lambda());
        cal.schedule(SimTime::ZERO + dt, Event::Arrival(proc));
    }
    let _ = net.take_counters();
    let mut counters_dropped = false;

    while allocations < target {
        let (now, ev) = cal.pop().expect("arrivals keep the calendar nonempty");
        match ev {
            Event::Arrival(proc) => {
                let t = workload.draw_type(&mut type_rng);
                queues[proc].push_back((now, t));
                let dt = arr_rng.exponential(workload.base().lambda());
                cal.schedule(now + dt, Event::Arrival(proc));
            }
            Event::TxDone { grant } => {
                net.end_transmission(grant);
                transmitting[grant.processor] = false;
                let dt = svc_rng.exponential(workload.base().mu_s());
                cal.schedule(now + dt, Event::SvcDone { grant });
            }
            Event::SvcDone { grant } => {
                net.end_service(grant);
            }
        }

        let pending: Vec<Option<usize>> = (0..p)
            .map(|i| {
                if transmitting[i] {
                    None
                } else {
                    queues[i].front().map(|&(_, t)| t)
                }
            })
            .collect();
        if pending.iter().any(Option::is_some) {
            let grants = net.request_cycle(&pending, &mut net_rng);
            for grant in grants {
                let (arrival, t) = queues[grant.processor]
                    .pop_front()
                    .expect("granted processor had a queued task");
                assert_eq!(
                    t, grant.resource_type,
                    "network must serve the requested type"
                );
                transmitting[grant.processor] = true;
                allocations += 1;
                if allocations > opts.warmup_tasks {
                    if !counters_dropped {
                        let _ = net.take_counters();
                        counters_dropped = true;
                    }
                    delays.push(now - arrival);
                    per_type[t].push(now - arrival);
                }
                let dt = svc_rng.exponential(workload.base().mu_n());
                cal.schedule(now + dt, Event::TxDone { grant });
            }
        }
    }

    TypedSimReport {
        queueing_delay: delays,
        per_type_delay: per_type,
        counters: net.take_counters(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivially typed network: one private server pool per type with
    /// unlimited capacity — zero network delay, so queueing comes only from
    /// the per-processor port.
    #[derive(Debug)]
    struct TypedInstant {
        p: usize,
        types: usize,
    }

    impl TypedResourceNetwork for TypedInstant {
        fn processors(&self) -> usize {
            self.p
        }
        fn resource_types(&self) -> usize {
            self.types
        }
        fn request_cycle(
            &mut self,
            pending: &[Option<usize>],
            _rng: &mut SimRng,
        ) -> Vec<TypedGrant> {
            pending
                .iter()
                .enumerate()
                .filter_map(|(i, &t)| {
                    t.map(|t| TypedGrant {
                        processor: i,
                        port: t,
                        resource_type: t,
                    })
                })
                .collect()
        }
        fn end_transmission(&mut self, _grant: TypedGrant) {}
        fn end_service(&mut self, _grant: TypedGrant) {}
    }

    fn workload(mix: Vec<f64>) -> TypedWorkload {
        TypedWorkload::new(Workload::new(0.2, 1.0, 1.0).expect("valid"), mix).expect("valid mix")
    }

    #[test]
    fn mix_validation() {
        let base = Workload::new(0.1, 1.0, 1.0).expect("valid");
        assert!(TypedWorkload::new(base, vec![]).is_err());
        assert!(TypedWorkload::new(base, vec![0.5, 0.6]).is_err());
        assert!(TypedWorkload::new(base, vec![-0.1, 1.1]).is_err());
        assert!(TypedWorkload::new(base, vec![0.25, 0.75]).is_ok());
    }

    #[test]
    fn draw_type_respects_mix() {
        let w = workload(vec![0.8, 0.2]);
        let mut rng = SimRng::new(3);
        let n = 50_000;
        let ones = (0..n).filter(|_| w.draw_type(&mut rng) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.01, "type-1 fraction {frac}");
    }

    #[test]
    fn typed_simulation_runs_and_reports_per_type() {
        let w = workload(vec![0.5, 0.5]);
        let mut net = TypedInstant { p: 4, types: 2 };
        let mut rng = SimRng::new(5);
        let opts = SimOptions {
            warmup_tasks: 500,
            measured_tasks: 10_000,
        };
        let report = simulate_typed(&mut net, &w, &opts, &mut rng);
        assert_eq!(report.queueing_delay.count(), 10_000);
        let total: u64 = report.per_type_delay.iter().map(Welford::count).sum();
        assert_eq!(total, 10_000);
        assert!(report.per_type_delay[0].count() > 3_000);
        assert!(report.per_type_delay[1].count() > 3_000);
        // Instant network: the only queueing is the processor's own port
        // (M/M/1 with lambda = 0.2, mu_n = 1 → Wq = 0.25).
        let d = report.normalized_delay(&w);
        assert!((d - 0.25).abs() < 0.05, "delay {d}");
    }

    #[test]
    fn single_type_reduces_to_untyped() {
        let w = workload(vec![1.0]);
        let mut net = TypedInstant { p: 2, types: 1 };
        let mut rng = SimRng::new(7);
        let opts = SimOptions {
            warmup_tasks: 200,
            measured_tasks: 5_000,
        };
        let report = simulate_typed(&mut net, &w, &opts, &mut rng);
        assert_eq!(report.per_type_delay[0].count(), 5_000);
    }
}
