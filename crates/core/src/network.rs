//! The `ResourceNetwork` abstraction: what every RSIN must implement.
//!
//! The simulator is network-agnostic. At every decision epoch it hands the
//! network the set of processors whose head-of-queue task is awaiting a
//! resource; the network — using whatever distributed scheduling discipline
//! it implements — returns the set of granted connections. The simulator
//! then drives each connection through the paper's task lifecycle:
//!
//! ```text
//! arrival → queue at processor → [request cycle(s)] → Grant
//!        → transmission (circuit held, Exp(µ_n)) → end_transmission
//!        → service at resource (circuit released, Exp(µ_s)) → end_service
//! ```

use rsin_des::SimRng;

/// A granted processor→resource connection.
///
/// `port` is the *global* output-port index (`0 .. i·k`); the network
/// resolves it to one of the `r` resources it carries internally.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Grant {
    /// The processor whose head-of-queue task was granted.
    pub processor: usize,
    /// Global output-port index the circuit terminates at.
    pub port: usize,
}

/// The simulator's pending set, carried in two consistent views: one flag
/// per processor, and the same flags bit-packed 64 per `u64`, LSB-first
/// (the `rsin-bitslice` lane layout). Lanes past the last processor are
/// zero. The simulator maintains both views incrementally, so a network
/// with a packed fast path starts from `words` without re-packing while
/// everything else reads `bools`.
#[derive(Clone, Copy, Debug)]
pub struct PendingSet<'a> {
    /// `bools[i]` is true when processor `i` has a task awaiting allocation.
    pub bools: &'a [bool],
    /// The same flags packed 64 per word, LSB-first; tail lanes zero.
    pub words: &'a [u64],
}

/// Counters a network accumulates about its own scheduling work.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetworkCounters {
    /// Requests submitted to the network fabric.
    pub attempts: u64,
    /// Requests the fabric could not serve in the cycle they were submitted
    /// (blocked by links, busy buses, or busy resources).
    pub rejections: u64,
    /// Total interchange boxes (or cells) traversed by granted requests,
    /// where the network tracks it; 0 otherwise.
    pub boxes_traversed: u64,
    /// Resource-pool failures applied (accepted `fail_resource` calls).
    pub resource_failures: u64,
    /// Resource-pool repairs applied (accepted `repair_resource` calls).
    pub resource_repairs: u64,
    /// Structural-element failures applied (accepted `fail_element` calls).
    pub element_failures: u64,
    /// Structural-element repairs applied (accepted `repair_element` calls).
    pub element_repairs: u64,
}

impl NetworkCounters {
    /// Fraction of attempts that were rejected (0 when no attempts).
    #[must_use]
    pub fn rejection_ratio(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.rejections as f64 / self.attempts as f64
        }
    }
}

/// A resource-sharing interconnection network usable by the simulator.
///
/// Implementations must uphold the paper's structural rules:
///
/// * a processor holds at most one active circuit (it transmits one task at
///   a time — assumption (f));
/// * an output port carries `r` resources and accepts a new circuit only
///   while it has both a free bus/link *and* a free resource;
/// * the circuit occupies network capacity from [`ResourceNetwork::request_cycle`]
///   until [`ResourceNetwork::end_transmission`]; the resource stays busy
///   until [`ResourceNetwork::end_service`].
pub trait ResourceNetwork: std::fmt::Debug {
    /// Number of processors (input ports across all partitions).
    fn processors(&self) -> usize;

    /// Total resources across all partitions.
    fn total_resources(&self) -> usize;

    /// Runs one request cycle.
    ///
    /// `pending[i]` is true when processor `i` has a task awaiting
    /// allocation. Returns the connections granted this cycle; processors
    /// not granted remain queued and will be retried at the next epoch (the
    /// paper's "blocked tasks are … retried as soon as the network indicates
    /// that free resources are available").
    ///
    /// Implementations must never grant a processor that is not pending and
    /// never grant the same processor twice in one cycle.
    fn request_cycle(&mut self, pending: &[bool], rng: &mut SimRng) -> Vec<Grant>;

    /// Runs one request cycle, writing the grants into a caller-owned buffer.
    ///
    /// Semantically identical to [`ResourceNetwork::request_cycle`] (same
    /// grants, in the same order, with the same RNG consumption), but lets
    /// the simulator's hot loop reuse one `Vec` across epochs instead of
    /// allocating a fresh one per decision. The default implementation
    /// delegates to `request_cycle`; the workspace networks override it to
    /// write grants directly.
    fn request_cycle_into(&mut self, pending: &[bool], rng: &mut SimRng, out: &mut Vec<Grant>) {
        out.clear();
        out.extend(self.request_cycle(pending, rng));
    }

    /// Runs one request cycle from a [`PendingSet`] carrying both views of
    /// the pending processors.
    ///
    /// Semantically identical to [`ResourceNetwork::request_cycle_into`] on
    /// `pending.bools` — same grants, same order, same RNG consumption —
    /// and that is exactly what the default implementation does. Networks
    /// whose scheduling fabric is bit-sliced override it to feed
    /// `pending.words` to the fabric directly, skipping the per-epoch
    /// re-pack of the request vector.
    fn request_cycle_pending(
        &mut self,
        pending: PendingSet<'_>,
        rng: &mut SimRng,
        out: &mut Vec<Grant>,
    ) {
        self.request_cycle_into(pending.bools, rng, out);
    }

    /// The task finished transmitting: release the circuit; the resource at
    /// `grant.port` begins service.
    fn end_transmission(&mut self, grant: Grant);

    /// The resource finished servicing the task: it becomes free and the
    /// status change propagates.
    fn end_service(&mut self, grant: Grant);

    /// Drains accumulated scheduling counters (resets them to zero).
    fn take_counters(&mut self) -> NetworkCounters {
        NetworkCounters::default()
    }

    /// Takes the resource pool behind global output `port` offline.
    ///
    /// Returns `true` when the network supports resource faults and the
    /// pool was up. On acceptance the network must *internally* release
    /// every circuit and busy count associated with the port — the
    /// simulator cancels the casualties' lifecycle events and requeues the
    /// tasks, and will **not** call [`ResourceNetwork::end_transmission`]
    /// or [`ResourceNetwork::end_service`] for them. Until repaired, the
    /// port must advertise no availability.
    ///
    /// The default implementation ignores the fault (returns `false`), so
    /// fault-unaware networks keep full capacity.
    fn fail_resource(&mut self, port: usize) -> bool {
        let _ = port;
        false
    }

    /// Brings the resource pool behind `port` back online at its pre-fault
    /// capacity. Returns `true` when the network supports resource faults
    /// and the pool was down.
    fn repair_resource(&mut self, port: usize) -> bool {
        let _ = port;
        false
    }

    /// Fails a structural element (bus/arbiter, crossbar cell, interchange
    /// box, central scheduler — indexed per network, see
    /// [`ResourceNetwork::fault_elements`]).
    ///
    /// Element failures are *fail-open*: circuits already established
    /// through the element complete normally, but the element contributes
    /// nothing to future scheduling until repaired. Returns `true` when
    /// the element exists, faults are supported, and it was up.
    fn fail_element(&mut self, element: usize) -> bool {
        let _ = element;
        false
    }

    /// Repairs a structural element. Returns `true` when the element
    /// exists, faults are supported, and it was down.
    fn repair_element(&mut self, element: usize) -> bool {
        let _ = element;
        false
    }

    /// Number of structural elements addressable by
    /// [`ResourceNetwork::fail_element`] (0 when element faults are not
    /// supported).
    fn fault_elements(&self) -> usize {
        0
    }

    /// Short human-readable label (e.g. `"SBUS"`, `"OMEGA"`).
    fn label(&self) -> &'static str {
        "NET"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_rejection_ratio() {
        let c = NetworkCounters {
            attempts: 10,
            rejections: 3,
            ..NetworkCounters::default()
        };
        assert!((c.rejection_ratio() - 0.3).abs() < 1e-12);
        assert_eq!(NetworkCounters::default().rejection_ratio(), 0.0);
    }

    #[test]
    fn grant_is_value_like() {
        let g = Grant {
            processor: 1,
            port: 2,
        };
        let h = g;
        assert_eq!(g, h);
        assert!(!format!("{g:?}").is_empty());
    }
}
