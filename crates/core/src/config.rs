//! System configuration: the paper's `p / i×j×k N / r` triplet notation.
//!
//! A resource-sharing system is described by the number of processors `p`,
//! a network spec `i×j×k N` (`i` independent copies of network type `N`,
//! each with `j` input and `k` output ports, `p = i·j`), and `r`, the number
//! of resources on every output port. Examples from the paper:
//!
//! * `16/16x1x1 SBUS/2` — sixteen private buses with two resources each;
//! * `16/1x16x32 XBAR/1` — one 16×32 crossbar, one resource per port;
//! * `16/1x16x16 OMEGA/2` — one 16×16 Omega network, two resources per port.

use crate::error::ConfigError;
use std::fmt;
use std::str::FromStr;

/// The class of interconnection network used inside one partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NetworkKind {
    /// A single shared bus: `j` processors, one implicit output port
    /// (`k = 1`) carrying all `r` resources (Section III).
    SharedBus,
    /// A `j × k` crossbar whose output ports are buses with `r` resources
    /// (Section IV).
    Crossbar,
    /// A `j × j` Omega multistage network (`k = j`, power of two)
    /// (Section V).
    Omega,
    /// A `j × j` indirect binary n-cube network (`k = j`, power of two).
    Cube,
}

impl NetworkKind {
    /// The notation used in the paper's configuration strings.
    #[must_use]
    pub fn token(&self) -> &'static str {
        match self {
            NetworkKind::SharedBus => "SBUS",
            NetworkKind::Crossbar => "XBAR",
            NetworkKind::Omega => "OMEGA",
            NetworkKind::Cube => "CUBE",
        }
    }
}

impl fmt::Display for NetworkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

impl FromStr for NetworkKind {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, ConfigError> {
        match s.to_ascii_uppercase().as_str() {
            "SBUS" => Ok(NetworkKind::SharedBus),
            "XBAR" => Ok(NetworkKind::Crossbar),
            "OMEGA" => Ok(NetworkKind::Omega),
            "CUBE" => Ok(NetworkKind::Cube),
            _ => Err(ConfigError::Parse {
                input: s.to_string(),
                expected: "one of SBUS, XBAR, OMEGA, CUBE",
            }),
        }
    }
}

/// A validated `p / i×j×k N / r` system description.
///
/// # Examples
///
/// ```
/// use rsin_core::{NetworkKind, SystemConfig};
///
/// let cfg = SystemConfig::new(16, 4, NetworkKind::Omega, 4, 4, 2)?;
/// assert_eq!(cfg.to_string(), "16/4x4x4 OMEGA/2");
/// assert_eq!(cfg.total_resources(), 32);
/// let parsed: SystemConfig = "16/4x4x4 OMEGA/2".parse()?;
/// assert_eq!(parsed, cfg);
/// # Ok::<(), rsin_core::ConfigError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SystemConfig {
    processors: u32,
    networks: u32,
    inputs: u32,
    outputs: u32,
    kind: NetworkKind,
    resources_per_port: u32,
}

impl SystemConfig {
    /// Builds and validates a configuration.
    ///
    /// `processors = networks · inputs` must hold; shared buses require
    /// `outputs == 1`; multistage networks require `inputs == outputs`, a
    /// power of two ≥ 2.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Invalid`] when any structural constraint fails.
    pub fn new(
        processors: u32,
        networks: u32,
        kind: NetworkKind,
        inputs: u32,
        outputs: u32,
        resources_per_port: u32,
    ) -> Result<Self, ConfigError> {
        let fail = |what: String| Err(ConfigError::Invalid { what });
        if processors == 0 || networks == 0 || inputs == 0 || outputs == 0 {
            return fail("all counts must be positive".into());
        }
        if resources_per_port == 0 {
            return fail("resources per port must be positive".into());
        }
        // All derived products are validated here with checked arithmetic so
        // the accessors below can multiply plain u32s: provisioning sweeps
        // push p into the thousands (and enumerate far wilder shapes), and a
        // wrapped product must be a typed error, never a silently aliased
        // dimension.
        if networks.checked_mul(inputs) != Some(processors) {
            return fail(format!(
                "p = i*j must hold: {networks}*{inputs} != {processors}"
            ));
        }
        if networks
            .checked_mul(outputs)
            .and_then(|ports| ports.checked_mul(resources_per_port))
            .is_none()
        {
            return fail(format!(
                "total resources i*k*r = {networks}*{outputs}*{resources_per_port} \
                 overflows u32"
            ));
        }
        match kind {
            NetworkKind::SharedBus => {
                if outputs != 1 {
                    return fail("a shared bus has exactly one output port".into());
                }
            }
            NetworkKind::Crossbar => {}
            NetworkKind::Omega | NetworkKind::Cube => {
                if inputs != outputs {
                    return fail("multistage networks are square (j = k)".into());
                }
                if !inputs.is_power_of_two() || inputs < 2 {
                    return fail(format!(
                        "multistage networks need a power-of-two size >= 2, got {inputs}"
                    ));
                }
            }
        }
        Ok(SystemConfig {
            processors,
            networks,
            inputs,
            outputs,
            kind,
            resources_per_port,
        })
    }

    /// Total processor count `p`.
    #[must_use]
    pub fn processors(&self) -> u32 {
        self.processors
    }

    /// Number of independent network partitions `i`.
    #[must_use]
    pub fn networks(&self) -> u32 {
        self.networks
    }

    /// Input ports per network `j`.
    #[must_use]
    pub fn inputs(&self) -> u32 {
        self.inputs
    }

    /// Output ports per network `k`.
    #[must_use]
    pub fn outputs(&self) -> u32 {
        self.outputs
    }

    /// The network class `N`.
    #[must_use]
    pub fn kind(&self) -> NetworkKind {
        self.kind
    }

    /// Resources on each output port `r`.
    #[must_use]
    pub fn resources_per_port(&self) -> u32 {
        self.resources_per_port
    }

    /// Total resources in the system, `i·k·r`.
    #[must_use]
    pub fn total_resources(&self) -> u32 {
        self.networks * self.outputs * self.resources_per_port
    }

    /// Total output ports in the system, `i·k`.
    #[must_use]
    pub fn total_ports(&self) -> u32 {
        self.networks * self.outputs
    }
}

impl fmt::Display for SystemConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}x{}x{} {}/{}",
            self.processors,
            self.networks,
            self.inputs,
            self.outputs,
            self.kind,
            self.resources_per_port
        )
    }
}

impl FromStr for SystemConfig {
    type Err = ConfigError;

    /// Parses the paper's notation, e.g. `16/4x4x4 OMEGA/2`.
    fn from_str(s: &str) -> Result<Self, ConfigError> {
        let parse_err = || ConfigError::Parse {
            input: s.to_string(),
            expected: "p/ixjxk KIND/r, e.g. 16/4x4x4 OMEGA/2",
        };
        let (p_str, rest) = s.split_once('/').ok_or_else(parse_err)?;
        let (dims_str, rest) = rest.trim().split_once(' ').ok_or_else(parse_err)?;
        let (kind_str, r_str) = rest.trim().split_once('/').ok_or_else(parse_err)?;
        let mut dims = dims_str.split(['x', 'X', '×']);
        let mut next_dim = || -> Result<u32, ConfigError> {
            dims.next()
                .and_then(|d| d.trim().parse().ok())
                .ok_or_else(parse_err)
        };
        let (i, j, k) = (next_dim()?, next_dim()?, next_dim()?);
        if dims.next().is_some() {
            return Err(parse_err());
        }
        let p: u32 = p_str.trim().parse().map_err(|_| parse_err())?;
        let r: u32 = r_str.trim().parse().map_err(|_| parse_err())?;
        let kind: NetworkKind = kind_str.trim().parse()?;
        SystemConfig::new(p, i, kind, j, k, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples_roundtrip() {
        for s in [
            "16/16x1x1 SBUS/2",
            "16/1x16x32 XBAR/1",
            "16/1x16x16 OMEGA/2",
            "16/4x4x4 OMEGA/2",
            "16/8x2x2 OMEGA/2",
            "16/4x4x4 CUBE/2",
        ] {
            let cfg: SystemConfig = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(cfg.to_string(), s);
        }
    }

    #[test]
    fn totals_match_paper_counts() {
        let cfg: SystemConfig = "16/16x1x1 SBUS/2".parse().expect("valid");
        assert_eq!(cfg.total_resources(), 32);
        assert_eq!(cfg.total_ports(), 16);
        let cfg: SystemConfig = "16/1x16x32 XBAR/1".parse().expect("valid");
        assert_eq!(cfg.total_resources(), 32);
        let cfg: SystemConfig = "16/1x16x16 OMEGA/2".parse().expect("valid");
        assert_eq!(cfg.total_resources(), 32);
    }

    #[test]
    fn processor_identity_enforced() {
        assert!(SystemConfig::new(16, 3, NetworkKind::SharedBus, 5, 1, 2).is_err());
        assert!(SystemConfig::new(15, 3, NetworkKind::SharedBus, 5, 1, 2).is_ok());
    }

    #[test]
    fn shared_bus_single_output() {
        assert!(SystemConfig::new(8, 2, NetworkKind::SharedBus, 4, 2, 1).is_err());
    }

    #[test]
    fn multistage_must_be_square_power_of_two() {
        assert!(SystemConfig::new(16, 1, NetworkKind::Omega, 16, 32, 1).is_err());
        assert!(SystemConfig::new(12, 2, NetworkKind::Omega, 6, 6, 1).is_err());
        assert!(SystemConfig::new(16, 1, NetworkKind::Cube, 16, 16, 2).is_ok());
    }

    #[test]
    fn rejects_overflowing_dimension_products() {
        // i*j wraps u32: 2^16 networks of 2^16 inputs is 2^32 processors.
        assert!(SystemConfig::new(0, 1 << 16, NetworkKind::Crossbar, 1 << 16, 1, 1).is_err());
        // i*j fits but i*k*r wraps u32.
        let cfg = SystemConfig::new(1 << 16, 1 << 16, NetworkKind::Crossbar, 1, 1 << 15, 1 << 2);
        assert!(matches!(cfg, Err(ConfigError::Invalid { ref what }) if what.contains("overflow")));
        // The same shape with a small r is fine, and the totals are exact.
        let ok = SystemConfig::new(1 << 16, 1 << 16, NetworkKind::Crossbar, 1, 2, 2)
            .expect("large but in-range config");
        assert_eq!(ok.total_resources(), 1 << 18);
        assert_eq!(ok.total_ports(), 1 << 17);
    }

    #[test]
    fn thousands_of_processors_roundtrip() {
        for s in [
            "1024/1024x1x1 SBUS/2",
            "4096/64x64x64 XBAR/1",
            "2048/2x1024x1024 OMEGA/2",
        ] {
            let cfg: SystemConfig = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(cfg.to_string(), s);
        }
    }

    #[test]
    fn rejects_zero_counts() {
        assert!(SystemConfig::new(0, 1, NetworkKind::SharedBus, 1, 1, 1).is_err());
        assert!(SystemConfig::new(4, 4, NetworkKind::SharedBus, 1, 1, 0).is_err());
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", "16", "16/4x4 OMEGA/2", "16/4x4x4 MESH/2", "a/bxcxd E/f"] {
            assert!(s.parse::<SystemConfig>().is_err(), "{s} should not parse");
        }
    }

    #[test]
    fn kind_token_roundtrip() {
        for kind in [
            NetworkKind::SharedBus,
            NetworkKind::Crossbar,
            NetworkKind::Omega,
            NetworkKind::Cube,
        ] {
            let parsed: NetworkKind = kind.token().parse().expect("token parses");
            assert_eq!(parsed, kind);
        }
        assert_eq!("sbus".parse::<NetworkKind>(), Ok(NetworkKind::SharedBus));
    }
}
