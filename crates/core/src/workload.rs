//! The paper's task workload model (Section II, assumptions (a)–(f)).
//!
//! Tasks arrive at each processor in a Poisson stream of rate `λ`, transmit
//! to their allocated resource for an exponential time of mean `1/µ_n`, and
//! are then serviced by the resource for an exponential time of mean
//! `1/µ_s`. The ratio `µ_s/µ_n` — transmission time relative to service
//! time — is the key tradeoff parameter of the study.

use crate::config::SystemConfig;
use crate::error::ConfigError;
use rsin_queueing::traffic;

/// Arrival/transmission/service rates for one experiment point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Workload {
    lambda: f64,
    mu_n: f64,
    mu_s: f64,
}

impl Workload {
    /// Creates a workload from raw rates.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Invalid`] if any rate is not positive and finite.
    pub fn new(lambda: f64, mu_n: f64, mu_s: f64) -> Result<Self, ConfigError> {
        for (v, name) in [(lambda, "lambda"), (mu_n, "mu_n"), (mu_s, "mu_s")] {
            if !(v.is_finite() && v > 0.0) {
                return Err(ConfigError::Invalid {
                    what: format!("{name} must be positive and finite, got {v}"),
                });
            }
        }
        Ok(Workload { lambda, mu_n, mu_s })
    }

    /// Creates the workload that offers reference traffic intensity `rho`
    /// to `config`, at service-to-transmission ratio `µ_s/µ_n = ratio` with
    /// `µ_s = 1` (so times are measured in mean service times, as in the
    /// paper's figures).
    ///
    /// # Errors
    ///
    /// [`ConfigError::Invalid`] for non-positive `rho` or `ratio`.
    pub fn for_intensity(config: &SystemConfig, rho: f64, ratio: f64) -> Result<Self, ConfigError> {
        if !(rho.is_finite() && rho > 0.0) {
            return Err(ConfigError::Invalid {
                what: format!("traffic intensity must be positive, got {rho}"),
            });
        }
        if !(ratio.is_finite() && ratio > 0.0) {
            return Err(ConfigError::Invalid {
                what: format!("mu_s/mu_n ratio must be positive, got {ratio}"),
            });
        }
        let mu_s = 1.0;
        let mu_n = mu_s / ratio;
        let lambda = traffic::lambda_for_intensity(
            config.processors(),
            config.total_resources(),
            rho,
            mu_n,
            mu_s,
        );
        Workload::new(lambda, mu_n, mu_s)
    }

    /// Per-processor arrival rate `λ`.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Transmission rate `µ_n`.
    #[must_use]
    pub fn mu_n(&self) -> f64 {
        self.mu_n
    }

    /// Service rate `µ_s`.
    #[must_use]
    pub fn mu_s(&self) -> f64 {
        self.mu_s
    }

    /// The tradeoff ratio `µ_s/µ_n` (large ⇒ transmission dominates).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.mu_s / self.mu_n
    }

    /// Reference traffic intensity this workload offers to `config`.
    #[must_use]
    pub fn intensity(&self, config: &SystemConfig) -> f64 {
        traffic::reference_intensity(
            config.processors(),
            config.total_resources(),
            self.lambda,
            self.mu_n,
            self.mu_s,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkKind;

    fn cfg() -> SystemConfig {
        SystemConfig::new(16, 1, NetworkKind::Crossbar, 16, 32, 1).expect("valid")
    }

    #[test]
    fn intensity_roundtrip() {
        let cfg = cfg();
        for rho in [0.1, 0.5, 0.9] {
            let w = Workload::for_intensity(&cfg, rho, 0.1).expect("valid");
            assert!((w.intensity(&cfg) - rho).abs() < 1e-12);
            assert!((w.ratio() - 0.1).abs() < 1e-12);
            assert!((w.mu_s() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn ratio_definition() {
        let w = Workload::new(0.1, 2.0, 1.0).expect("valid");
        assert!((w.ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_rates() {
        assert!(Workload::new(0.0, 1.0, 1.0).is_err());
        assert!(Workload::new(1.0, -1.0, 1.0).is_err());
        assert!(Workload::new(1.0, 1.0, f64::INFINITY).is_err());
        assert!(Workload::for_intensity(&cfg(), 0.0, 1.0).is_err());
        assert!(Workload::for_intensity(&cfg(), 0.5, 0.0).is_err());
    }
}
