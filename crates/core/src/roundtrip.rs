//! The result-return leg of the task lifecycle (Section II).
//!
//! "After the task is serviced, the result is routed to the originating
//! processor. This can be done by a separate address-mapping network with
//! parallel routing since the destination address is known." The paper then
//! *excludes* this leg from its delay metric `d`; this module makes the
//! full round trip measurable so that exclusion can be justified (or
//! challenged) quantitatively.
//!
//! The forward direction uses any [`ResourceNetwork`]; the return direction
//! uses a [`ReturnNetwork`] — an address-mapped fabric where the
//! destination is known and circuits are attempted directly. Results that
//! cannot be routed queue at their resource's output buffer and retry on
//! the next event.

use crate::network::{Grant, ResourceNetwork};
use crate::sim::SimOptions;
use crate::workload::Workload;
use rsin_des::stats::Welford;
use rsin_des::{Calendar, SimRng, SimTime};
use std::collections::VecDeque;

/// A circuit ticket on the return network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ReturnTicket(pub u64);

/// An address-mapped network carrying results from resource ports back to
/// processors.
pub trait ReturnNetwork: std::fmt::Debug {
    /// Attempts to open a circuit from output `port` back to `processor`.
    /// Returns a ticket when the path is free, `None` when blocked (the
    /// result stays queued and retries at the next event).
    fn try_send(&mut self, port: usize, processor: usize) -> Option<ReturnTicket>;

    /// The return transmission finished: release the circuit.
    fn end_return(&mut self, ticket: ReturnTicket);
}

/// An always-free return path — the paper's implicit assumption that the
/// result network is never the bottleneck.
#[derive(Clone, Copy, Debug, Default)]
pub struct InstantReturn;

impl ReturnNetwork for InstantReturn {
    fn try_send(&mut self, _port: usize, _processor: usize) -> Option<ReturnTicket> {
        Some(ReturnTicket(0))
    }
    fn end_return(&mut self, _ticket: ReturnTicket) {}
}

/// Output of a round-trip simulation.
#[derive(Clone, Debug)]
pub struct RoundTripReport {
    /// Queueing delay `d` (arrival → allocation) — the paper's metric,
    /// unaffected by the return leg.
    pub queueing_delay: Welford,
    /// Full round-trip time: arrival → result received at the processor.
    pub round_trip: Welford,
    /// Time results spent waiting for a free return path.
    pub return_wait: Welford,
}

#[derive(Debug)]
enum Event {
    Arrival(usize),
    TxDone {
        grant: Grant,
        arrival: SimTime,
        measured: bool,
    },
    SvcDone {
        grant: Grant,
        arrival: SimTime,
        measured: bool,
    },
    RetDone {
        ticket: ReturnTicket,
        arrival: SimTime,
        measured: bool,
    },
}

/// A result waiting at a resource port for the return network.
#[derive(Debug)]
struct PendingResult {
    port: usize,
    processor: usize,
    arrival: SimTime,
    ready_at: SimTime,
    measured: bool,
}

/// Simulates the full task lifecycle including the result-return leg.
///
/// `mu_r` is the return-transmission rate (the paper would use `µ_n`
/// symmetric with the forward leg).
///
/// # Panics
///
/// Panics on contract violations by either network, or if `mu_r` is not
/// positive and finite.
pub fn simulate_round_trip(
    net: &mut dyn ResourceNetwork,
    ret: &mut dyn ReturnNetwork,
    workload: &Workload,
    mu_r: f64,
    opts: &SimOptions,
    rng: &mut SimRng,
) -> RoundTripReport {
    assert!(mu_r.is_finite() && mu_r > 0.0, "mu_r must be positive");
    let p = net.processors();
    assert!(p > 0, "network must have processors");

    let mut cal: Calendar<Event> = Calendar::new();
    let mut queues: Vec<VecDeque<SimTime>> = vec![VecDeque::new(); p];
    let mut transmitting = vec![false; p];
    let mut results: Vec<PendingResult> = Vec::new();

    let mut allocations: u64 = 0;
    let mut completed_round_trips: u64 = 0;
    let target = opts.warmup_tasks + opts.measured_tasks;
    let mut delays = Welford::new();
    let mut round = Welford::new();
    let mut waits = Welford::new();

    let mut arr_rng = rng.derive(0x41);
    let mut svc_rng = rng.derive(0x53);
    let mut net_rng = rng.derive(0x4e);

    for proc in 0..p {
        let dt = arr_rng.exponential(workload.lambda());
        cal.schedule(SimTime::ZERO + dt, Event::Arrival(proc));
    }

    // Run until the measured allocations AND their round trips finish (or
    // the calendar would starve, which arrivals prevent).
    while allocations < target || completed_round_trips < opts.measured_tasks {
        let (now, ev) = cal.pop().expect("arrivals keep the calendar nonempty");
        match ev {
            Event::Arrival(proc) => {
                if allocations < target {
                    queues[proc].push_back(now);
                }
                let dt = arr_rng.exponential(workload.lambda());
                cal.schedule(now + dt, Event::Arrival(proc));
            }
            Event::TxDone {
                grant,
                arrival,
                measured,
            } => {
                net.end_transmission(grant);
                transmitting[grant.processor] = false;
                let dt = svc_rng.exponential(workload.mu_s());
                cal.schedule(
                    now + dt,
                    Event::SvcDone {
                        grant,
                        arrival,
                        measured,
                    },
                );
            }
            Event::SvcDone {
                grant,
                arrival,
                measured,
            } => {
                net.end_service(grant);
                results.push(PendingResult {
                    port: grant.port,
                    processor: grant.processor,
                    arrival,
                    ready_at: now,
                    measured,
                });
            }
            Event::RetDone {
                ticket,
                arrival,
                measured,
            } => {
                ret.end_return(ticket);
                if measured {
                    round.push(now - arrival);
                    completed_round_trips += 1;
                }
            }
        }

        // Drain whatever results the return network can carry now.
        let mut i = 0;
        while i < results.len() {
            match ret.try_send(results[i].port, results[i].processor) {
                Some(ticket) => {
                    let r = results.swap_remove(i);
                    if r.measured {
                        waits.push(now - r.ready_at);
                    }
                    let dt = svc_rng.exponential(mu_r);
                    cal.schedule(
                        now + dt,
                        Event::RetDone {
                            ticket,
                            arrival: r.arrival,
                            measured: r.measured,
                        },
                    );
                }
                None => i += 1,
            }
        }

        // Forward allocation, as in the plain simulator.
        if allocations < target {
            let pending: Vec<bool> = (0..p)
                .map(|i| !transmitting[i] && !queues[i].is_empty())
                .collect();
            if pending.iter().any(|&b| b) {
                for grant in net.request_cycle(&pending, &mut net_rng) {
                    assert!(pending[grant.processor], "grant to non-pending processor");
                    let arrival = queues[grant.processor]
                        .pop_front()
                        .expect("pending implies queued");
                    transmitting[grant.processor] = true;
                    allocations += 1;
                    let measured = allocations > opts.warmup_tasks
                        && allocations <= opts.warmup_tasks + opts.measured_tasks;
                    if measured {
                        delays.push(now - arrival);
                    }
                    let dt = svc_rng.exponential(workload.mu_n());
                    cal.schedule(
                        now + dt,
                        Event::TxDone {
                            grant,
                            arrival,
                            measured,
                        },
                    );
                }
            }
        }
    }

    RoundTripReport {
        queueing_delay: delays,
        round_trip: round,
        return_wait: waits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkCounters;

    /// Unlimited forward network (per-processor port only).
    #[derive(Debug)]
    struct Wide {
        p: usize,
    }
    impl ResourceNetwork for Wide {
        fn processors(&self) -> usize {
            self.p
        }
        fn total_resources(&self) -> usize {
            usize::MAX
        }
        fn request_cycle(&mut self, pending: &[bool], _rng: &mut SimRng) -> Vec<Grant> {
            pending
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b)
                .map(|(i, _)| Grant {
                    processor: i,
                    port: i,
                })
                .collect()
        }
        fn end_transmission(&mut self, _grant: Grant) {}
        fn end_service(&mut self, _grant: Grant) {}
        fn take_counters(&mut self) -> NetworkCounters {
            NetworkCounters::default()
        }
    }

    /// A return network with a single shared channel.
    #[derive(Debug, Default)]
    struct OneChannel {
        busy: bool,
        next: u64,
    }
    impl ReturnNetwork for OneChannel {
        fn try_send(&mut self, _port: usize, _processor: usize) -> Option<ReturnTicket> {
            if self.busy {
                None
            } else {
                self.busy = true;
                self.next += 1;
                Some(ReturnTicket(self.next))
            }
        }
        fn end_return(&mut self, _ticket: ReturnTicket) {
            self.busy = false;
        }
    }

    #[test]
    fn instant_return_adds_exactly_one_stage() {
        let workload = Workload::new(0.2, 2.0, 1.0).expect("valid");
        let opts = SimOptions {
            warmup_tasks: 1_000,
            measured_tasks: 20_000,
        };
        let mut rng = SimRng::new(5);
        let report = simulate_round_trip(
            &mut Wide { p: 4 },
            &mut InstantReturn,
            &workload,
            4.0,
            &opts,
            &mut rng,
        );
        // Round trip = d + 1/µn + 1/µs + 1/µr; d here is the M/M/1 port
        // wait = 0.2/(2-0.2)/... lambda=0.2, mu_n=2: Wq = rho/(mu-lambda)
        let d = report.queueing_delay.mean();
        let expect = d + 0.5 + 1.0 + 0.25;
        let got = report.round_trip.mean();
        assert!(
            (got - expect).abs() / expect < 0.05,
            "round trip {got} vs expected {expect}"
        );
        assert!(
            report.return_wait.mean() < 1e-9,
            "instant return never waits"
        );
    }

    #[test]
    fn contended_return_path_adds_waiting() {
        let workload = Workload::new(0.3, 4.0, 2.0).expect("valid");
        let opts = SimOptions {
            warmup_tasks: 500,
            measured_tasks: 8_000,
        };
        let mut rng = SimRng::new(7);
        // Return channel at rate 2.0 shared by 4 processors offering 1.2
        // results/time: utilization 0.6 — real queueing.
        let report = simulate_round_trip(
            &mut Wide { p: 4 },
            &mut OneChannel::default(),
            &workload,
            2.0,
            &opts,
            &mut rng,
        );
        assert!(
            report.return_wait.mean() > 0.1,
            "shared return channel must queue, got {}",
            report.return_wait.mean()
        );
        // The paper's d is untouched by return-path contention.
        let mut rng = SimRng::new(7);
        let baseline = simulate_round_trip(
            &mut Wide { p: 4 },
            &mut InstantReturn,
            &workload,
            2.0,
            &opts,
            &mut rng,
        );
        let d_contended = report.queueing_delay.mean();
        let d_free = baseline.queueing_delay.mean();
        assert!(
            (d_contended - d_free).abs() / d_free.max(1e-9) < 0.05,
            "d must not depend on the return network: {d_contended} vs {d_free}"
        );
    }

    #[test]
    #[should_panic(expected = "mu_r must be positive")]
    fn rejects_bad_return_rate() {
        let workload = Workload::new(0.1, 1.0, 1.0).expect("valid");
        let mut rng = SimRng::new(1);
        let _ = simulate_round_trip(
            &mut Wide { p: 1 },
            &mut InstantReturn,
            &workload,
            0.0,
            &SimOptions::default(),
            &mut rng,
        );
    }
}
