//! Selecting between the bit-sliced and naive reference resolvers.
//!
//! The network fabrics ship two functionally identical evaluators: the
//! bit-sliced gate compilation (default, 64 cells/boxes per instruction) and
//! the original cell-by-cell code kept as the reference oracle. The
//! `RSIN_NAIVE_RESOLVERS` environment variable flips every network
//! constructed afterwards back to the reference path — the equivalence CI
//! job runs the full artifact suite both ways and asserts byte-identical
//! output. Tests select an engine explicitly through the networks' setters
//! instead of mutating the (process-global, once-read) environment.

use std::sync::OnceLock;

/// Which evaluator a network fabric uses for its scheduling hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResolverEngine {
    /// Packed u64 lanes, branchless straight-line gate code (the default).
    Bitslice,
    /// The original per-cell/per-wire sweep, kept as the reference oracle.
    Reference,
}

static DEFAULT_ENGINE: OnceLock<ResolverEngine> = OnceLock::new();

/// The engine newly constructed networks default to.
///
/// Reads `RSIN_NAIVE_RESOLVERS` once per process: set to anything other than
/// `0`, `false`, `no`, or empty to select [`ResolverEngine::Reference`].
#[must_use]
pub fn default_resolver_engine() -> ResolverEngine {
    *DEFAULT_ENGINE.get_or_init(|| match std::env::var("RSIN_NAIVE_RESOLVERS") {
        Ok(v) if !matches!(v.as_str(), "" | "0" | "false" | "no") => ResolverEngine::Reference,
        _ => ResolverEngine::Bitslice,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_engine_is_stable_across_calls() {
        // Whatever the environment selected, repeated calls agree (OnceLock).
        assert_eq!(default_resolver_engine(), default_resolver_engine());
    }
}
