//! The typed shared bus: multiple resource types on one bus.
//!
//! The simplest instance of the paper's multiple-types extension
//! (Section VII): the bus broadcasts one free-resource count *per type*,
//! and the arbiter admits the highest-priority pending request whose type
//! has a free resource.

use crate::arbiter::{Arbiter, Arbitration};
use rsin_core::typed::{TypedGrant, TypedResourceNetwork};
use rsin_core::NetworkCounters;
use rsin_des::SimRng;

#[derive(Clone, Debug)]
struct TypedBus {
    transmitting: bool,
    busy_per_type: Vec<u32>,
    arbiter: Arbiter,
}

/// A partitioned shared-bus RSIN hosting several resource types per bus.
///
/// # Examples
///
/// ```
/// use rsin_core::typed::TypedResourceNetwork;
/// use rsin_sbus::{Arbitration, TypedSharedBus};
///
/// // 2 buses, 4 processors each; every bus hosts 3 type-0 and 1 type-1
/// // resources.
/// let net = TypedSharedBus::new(2, 4, vec![3, 1], Arbitration::FixedPriority);
/// assert_eq!(net.processors(), 8);
/// assert_eq!(net.resource_types(), 2);
/// ```
#[derive(Debug)]
pub struct TypedSharedBus {
    procs_per_bus: usize,
    resources_per_type: Vec<u32>,
    buses: Vec<TypedBus>,
    counters: NetworkCounters,
}

impl TypedSharedBus {
    /// Builds `buses` buses with `procs_per_bus` processors each;
    /// `resources_per_type[t]` resources of type `t` sit on every bus.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero or the type list is empty.
    #[must_use]
    pub fn new(
        buses: usize,
        procs_per_bus: usize,
        resources_per_type: Vec<u32>,
        arbitration: Arbitration,
    ) -> Self {
        assert!(buses > 0 && procs_per_bus > 0, "counts must be positive");
        assert!(!resources_per_type.is_empty(), "need at least one type");
        assert!(
            resources_per_type.iter().all(|&r| r > 0),
            "each type needs at least one resource"
        );
        TypedSharedBus {
            procs_per_bus,
            buses: (0..buses)
                .map(|_| TypedBus {
                    transmitting: false,
                    busy_per_type: vec![0; resources_per_type.len()],
                    arbiter: Arbiter::new(arbitration),
                })
                .collect(),
            resources_per_type,
            counters: NetworkCounters::default(),
        }
    }

    /// Free resources of `ty` on bus `b`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[must_use]
    pub fn free_resources_on(&self, b: usize, ty: usize) -> u32 {
        self.resources_per_type[ty] - self.buses[b].busy_per_type[ty]
    }
}

impl TypedResourceNetwork for TypedSharedBus {
    fn processors(&self) -> usize {
        self.buses.len() * self.procs_per_bus
    }

    fn resource_types(&self) -> usize {
        self.resources_per_type.len()
    }

    fn request_cycle(&mut self, pending: &[Option<usize>], rng: &mut SimRng) -> Vec<TypedGrant> {
        assert_eq!(pending.len(), self.processors(), "pending vector size");
        let mut grants = Vec::new();
        for (b, bus) in self.buses.iter_mut().enumerate() {
            let base = b * self.procs_per_bus;
            let waiting: Vec<(usize, usize)> = (0..self.procs_per_bus)
                .filter_map(|l| pending[base + l].map(|t| (l, t)))
                .collect();
            if waiting.is_empty() {
                continue;
            }
            self.counters.attempts += waiting.len() as u64;
            if bus.transmitting {
                self.counters.rejections += waiting.len() as u64;
                continue;
            }
            // Only requests whose type has a free resource wake up.
            let candidates: Vec<usize> = waiting
                .iter()
                .filter(|&&(_, t)| bus.busy_per_type[t] < self.resources_per_type[t])
                .map(|&(l, _)| l)
                .collect();
            if candidates.is_empty() {
                self.counters.rejections += waiting.len() as u64;
                continue;
            }
            let winner = bus
                .arbiter
                .pick(&candidates, rng)
                .expect("candidates nonempty");
            self.counters.rejections += waiting.len() as u64 - 1;
            let ty = waiting
                .iter()
                .find(|&&(l, _)| l == winner)
                .map(|&(_, t)| t)
                .expect("winner came from waiting");
            bus.transmitting = true;
            grants.push(TypedGrant {
                processor: base + winner,
                port: b,
                resource_type: ty,
            });
        }
        grants
    }

    fn end_transmission(&mut self, grant: TypedGrant) {
        let bus = &mut self.buses[grant.port];
        debug_assert!(bus.transmitting);
        bus.transmitting = false;
        bus.busy_per_type[grant.resource_type] += 1;
        debug_assert!(
            bus.busy_per_type[grant.resource_type] <= self.resources_per_type[grant.resource_type]
        );
    }

    fn end_service(&mut self, grant: TypedGrant) {
        let bus = &mut self.buses[grant.port];
        debug_assert!(bus.busy_per_type[grant.resource_type] > 0);
        bus.busy_per_type[grant.resource_type] -= 1;
    }

    fn take_counters(&mut self) -> NetworkCounters {
        std::mem::take(&mut self.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsin_core::typed::{simulate_typed, TypedWorkload};
    use rsin_core::{SimOptions, Workload};

    fn pending(n: usize, set: &[(usize, usize)]) -> Vec<Option<usize>> {
        let mut v = vec![None; n];
        for &(i, t) in set {
            v[i] = Some(t);
        }
        v
    }

    #[test]
    fn type_exhaustion_is_isolated() {
        let mut net = TypedSharedBus::new(1, 3, vec![1, 1], Arbitration::FixedPriority);
        let mut rng = SimRng::new(1);
        // Type 0's only resource goes busy.
        let g = net.request_cycle(&pending(3, &[(0, 0)]), &mut rng);
        net.end_transmission(g[0]);
        assert_eq!(net.free_resources_on(0, 0), 0);
        // Another type-0 request stalls; a type-1 request flows.
        assert!(net
            .request_cycle(&pending(3, &[(1, 0)]), &mut rng)
            .is_empty());
        let g1 = net.request_cycle(&pending(3, &[(1, 1)]), &mut rng);
        assert_eq!(g1.len(), 1);
        assert_eq!(g1[0].resource_type, 1);
    }

    #[test]
    fn bus_serializes_across_types() {
        // Even with both types free, the single bus carries one
        // transmission at a time.
        let mut net = TypedSharedBus::new(1, 2, vec![2, 2], Arbitration::FixedPriority);
        let mut rng = SimRng::new(2);
        let g = net.request_cycle(&pending(2, &[(0, 0), (1, 1)]), &mut rng);
        assert_eq!(g.len(), 1, "one grant per bus per cycle");
    }

    #[test]
    fn typed_bus_simulation_runs() {
        let base = Workload::new(0.1, 5.0, 1.0).expect("valid");
        let w = TypedWorkload::new(base, vec![0.7, 0.3]).expect("valid");
        let mut net = TypedSharedBus::new(4, 1, vec![2, 1], Arbitration::FixedPriority);
        let mut rng = SimRng::new(3);
        let opts = SimOptions {
            warmup_tasks: 500,
            measured_tasks: 10_000,
        };
        let report = simulate_typed(&mut net, &w, &opts, &mut rng);
        assert_eq!(report.queueing_delay.count(), 10_000);
        // The scarcer type with its single resource waits longer on average.
        let d0 = report.per_type_delay[0].mean();
        let d1 = report.per_type_delay[1].mean();
        assert!(
            d1 > d0,
            "type 1 (1 resource, 30% of traffic) should wait more: {d1} vs {d0}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one type")]
    fn empty_type_list_rejected() {
        let _ = TypedSharedBus::new(1, 1, vec![], Arbitration::FixedPriority);
    }
}
