//! The single-shared-bus RSIN (Section III).
//!
//! The system is partitioned into `i` independent buses; bus `b` connects
//! processors `b·j .. (b+1)·j` to `r` private resources. Status information
//! — the count of free resources — is broadcast on the bus: whenever a free
//! resource is allocated or a busy one completes, blocked requests wake and
//! the arbiter admits exactly one of them (the rest re-queue), provided the
//! bus itself is idle.

use crate::arbiter::{Arbiter, Arbitration};
use rsin_bitslice::{count_ones, pack_bools};
use rsin_core::{
    default_resolver_engine, Grant, NetworkCounters, ResolverEngine, ResourceNetwork, SystemConfig,
};
use rsin_des::SimRng;

/// State of one bus partition.
#[derive(Clone, Debug)]
struct Bus {
    transmitting: bool,
    busy_resources: u32,
    arbiter: Arbiter,
    /// Bus/arbiter hardware is operational (element fault state).
    bus_up: bool,
    /// The partition's resource pool is online (resource fault state).
    pool_up: bool,
}

/// A partitioned single-shared-bus RSIN.
///
/// # Examples
///
/// ```
/// use rsin_core::{ResourceNetwork, SystemConfig};
/// use rsin_sbus::{Arbitration, SharedBusNetwork};
///
/// let cfg: SystemConfig = "16/16x1x1 SBUS/2".parse()?;
/// let net = SharedBusNetwork::from_config(&cfg, Arbitration::FixedPriority)?;
/// assert_eq!(net.processors(), 16);
/// assert_eq!(net.total_resources(), 32);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct SharedBusNetwork {
    procs_per_bus: usize,
    resources_per_bus: u32,
    buses: Vec<Bus>,
    counters: NetworkCounters,
    /// Whether arbitration runs on packed candidate lanes (default) or the
    /// candidate-list reference path; both elect identical winners.
    engine: ResolverEngine,
    /// Packed per-bus candidate mask, reused across cycles.
    scratch: Vec<u64>,
}

/// Error building a [`SharedBusNetwork`] from a config of the wrong kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WrongKindError {
    /// The kind found in the configuration.
    pub found: rsin_core::NetworkKind,
}

impl std::fmt::Display for WrongKindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "expected an SBUS configuration, got {}", self.found)
    }
}

impl std::error::Error for WrongKindError {}

impl SharedBusNetwork {
    /// Builds the network described by `config` (which must be of kind
    /// [`NetworkKind::SharedBus`](rsin_core::NetworkKind::SharedBus)).
    ///
    /// # Errors
    ///
    /// [`WrongKindError`] when the configuration names another network type.
    pub fn from_config(
        config: &SystemConfig,
        arbitration: Arbitration,
    ) -> Result<Self, WrongKindError> {
        if config.kind() != rsin_core::NetworkKind::SharedBus {
            return Err(WrongKindError {
                found: config.kind(),
            });
        }
        Ok(SharedBusNetwork::new(
            config.networks() as usize,
            config.inputs() as usize,
            config.resources_per_port(),
            arbitration,
        ))
    }

    /// Builds `buses` independent buses, each with `procs_per_bus`
    /// processors and `resources_per_bus` resources.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero.
    #[must_use]
    pub fn new(
        buses: usize,
        procs_per_bus: usize,
        resources_per_bus: u32,
        arbitration: Arbitration,
    ) -> Self {
        assert!(buses > 0 && procs_per_bus > 0, "counts must be positive");
        assert!(resources_per_bus > 0, "resources per bus must be positive");
        SharedBusNetwork {
            procs_per_bus,
            resources_per_bus,
            buses: (0..buses)
                .map(|_| Bus {
                    transmitting: false,
                    busy_resources: 0,
                    arbiter: Arbiter::new(arbitration),
                    bus_up: true,
                    pool_up: true,
                })
                .collect(),
            counters: NetworkCounters::default(),
            engine: default_resolver_engine(),
            scratch: Vec::new(),
        }
    }

    /// Selects the arbitration evaluator (packed lanes or the
    /// candidate-list reference). Both pick identical winners; the knob
    /// exists for cross-validation.
    pub fn set_resolver_engine(&mut self, engine: ResolverEngine) {
        self.engine = engine;
    }

    /// The arbitration evaluator in force.
    #[must_use]
    pub fn resolver_engine(&self) -> ResolverEngine {
        self.engine
    }

    /// Number of independent bus partitions.
    #[must_use]
    pub fn buses(&self) -> usize {
        self.buses.len()
    }

    /// Free resources currently available on bus `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    #[must_use]
    pub fn free_resources_on(&self, b: usize) -> u32 {
        self.resources_per_bus - self.buses[b].busy_resources
    }
}

impl ResourceNetwork for SharedBusNetwork {
    fn processors(&self) -> usize {
        self.buses.len() * self.procs_per_bus
    }

    fn total_resources(&self) -> usize {
        self.buses.len() * self.resources_per_bus as usize
    }

    fn request_cycle(&mut self, pending: &[bool], rng: &mut SimRng) -> Vec<Grant> {
        let mut grants = Vec::new();
        self.request_cycle_into(pending, rng, &mut grants);
        grants
    }

    fn request_cycle_into(&mut self, pending: &[bool], rng: &mut SimRng, out: &mut Vec<Grant>) {
        assert_eq!(pending.len(), self.processors(), "pending vector size");
        out.clear();
        if self.engine == ResolverEngine::Bitslice {
            // Packed path: candidates live in u64 lanes; arbitration is a
            // parallel-prefix select instead of a candidate-list scan.
            let mut mask = std::mem::take(&mut self.scratch);
            for (b, bus) in self.buses.iter_mut().enumerate() {
                let base = b * self.procs_per_bus;
                pack_bools(&pending[base..base + self.procs_per_bus], &mut mask);
                let count = count_ones(&mask);
                if count == 0 {
                    continue;
                }
                self.counters.attempts += count as u64;
                if !bus.bus_up
                    || !bus.pool_up
                    || bus.transmitting
                    || bus.busy_resources >= self.resources_per_bus
                {
                    self.counters.rejections += count as u64;
                    continue;
                }
                let winner = bus
                    .arbiter
                    .pick_packed(&mask, count, rng)
                    .expect("count > 0");
                self.counters.rejections += count as u64 - 1;
                bus.transmitting = true;
                out.push(Grant {
                    processor: base + winner,
                    port: b,
                });
            }
            self.scratch = mask;
            return;
        }
        for (b, bus) in self.buses.iter_mut().enumerate() {
            let base = b * self.procs_per_bus;
            let candidates: Vec<usize> = (0..self.procs_per_bus)
                .filter(|&local| pending[base + local])
                .collect();
            if candidates.is_empty() {
                continue;
            }
            self.counters.attempts += candidates.len() as u64;
            if !bus.bus_up
                || !bus.pool_up
                || bus.transmitting
                || bus.busy_resources >= self.resources_per_bus
            {
                self.counters.rejections += candidates.len() as u64;
                continue;
            }
            let winner = bus
                .arbiter
                .pick(&candidates, rng)
                .expect("candidates nonempty");
            self.counters.rejections += candidates.len() as u64 - 1;
            bus.transmitting = true;
            out.push(Grant {
                processor: base + winner,
                port: b,
            });
        }
    }

    fn end_transmission(&mut self, grant: Grant) {
        let bus = &mut self.buses[grant.port];
        debug_assert!(bus.transmitting, "no transmission in progress");
        bus.transmitting = false;
        bus.busy_resources += 1;
        debug_assert!(bus.busy_resources <= self.resources_per_bus);
    }

    fn end_service(&mut self, grant: Grant) {
        let bus = &mut self.buses[grant.port];
        if !bus.pool_up {
            // The pool failed and was cleared while this task was in
            // flight; nothing is held any more.
            return;
        }
        debug_assert!(bus.busy_resources > 0, "no busy resource to free");
        bus.busy_resources -= 1;
    }

    fn fail_resource(&mut self, port: usize) -> bool {
        let Some(bus) = self.buses.get_mut(port) else {
            return false;
        };
        if !bus.pool_up {
            return false;
        }
        bus.pool_up = false;
        // Per the trait contract: circuits and busy counts at this port
        // are released internally; the simulator requeues the casualties.
        bus.transmitting = false;
        bus.busy_resources = 0;
        self.counters.resource_failures += 1;
        true
    }

    fn repair_resource(&mut self, port: usize) -> bool {
        let Some(bus) = self.buses.get_mut(port) else {
            return false;
        };
        if bus.pool_up {
            return false;
        }
        bus.pool_up = true;
        self.counters.resource_repairs += 1;
        true
    }

    fn fail_element(&mut self, element: usize) -> bool {
        // Element b = the bus/arbiter pair of partition b. An outage makes
        // the whole partition unavailable until repair (fail-open: the
        // transmission already on the wire completes).
        let Some(bus) = self.buses.get_mut(element) else {
            return false;
        };
        if !bus.bus_up {
            return false;
        }
        bus.bus_up = false;
        self.counters.element_failures += 1;
        true
    }

    fn repair_element(&mut self, element: usize) -> bool {
        let Some(bus) = self.buses.get_mut(element) else {
            return false;
        };
        if bus.bus_up {
            return false;
        }
        bus.bus_up = true;
        self.counters.element_repairs += 1;
        true
    }

    fn fault_elements(&self) -> usize {
        self.buses.len()
    }

    fn take_counters(&mut self) -> NetworkCounters {
        std::mem::take(&mut self.counters)
    }

    fn label(&self) -> &'static str {
        "SBUS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending(n: usize, set: &[usize]) -> Vec<bool> {
        let mut v = vec![false; n];
        for &i in set {
            v[i] = true;
        }
        v
    }

    #[test]
    fn grants_one_per_bus_per_cycle() {
        let mut net = SharedBusNetwork::new(2, 2, 2, Arbitration::FixedPriority);
        let mut rng = SimRng::new(1);
        let grants = net.request_cycle(&pending(4, &[0, 1, 2, 3]), &mut rng);
        assert_eq!(grants.len(), 2, "one grant per bus");
        assert_eq!(
            grants[0],
            Grant {
                processor: 0,
                port: 0
            }
        );
        assert_eq!(
            grants[1],
            Grant {
                processor: 2,
                port: 1
            }
        );
    }

    #[test]
    fn busy_bus_rejects() {
        let mut net = SharedBusNetwork::new(1, 2, 2, Arbitration::FixedPriority);
        let mut rng = SimRng::new(1);
        let g = net.request_cycle(&pending(2, &[0]), &mut rng);
        assert_eq!(g.len(), 1);
        // Bus still transmitting: second request must wait.
        assert!(net.request_cycle(&pending(2, &[1]), &mut rng).is_empty());
        net.end_transmission(g[0]);
        // Bus free, resource 1 of 2 busy: next grant succeeds.
        assert_eq!(net.request_cycle(&pending(2, &[1]), &mut rng).len(), 1);
    }

    #[test]
    fn exhausted_resources_reject_until_service_completes() {
        let mut net = SharedBusNetwork::new(1, 3, 1, Arbitration::FixedPriority);
        let mut rng = SimRng::new(1);
        let g = net.request_cycle(&pending(3, &[0]), &mut rng);
        net.end_transmission(g[0]);
        assert_eq!(net.free_resources_on(0), 0);
        assert!(net.request_cycle(&pending(3, &[1]), &mut rng).is_empty());
        net.end_service(g[0]);
        assert_eq!(net.free_resources_on(0), 1);
        assert_eq!(net.request_cycle(&pending(3, &[1]), &mut rng).len(), 1);
    }

    #[test]
    fn partitions_do_not_interfere() {
        let mut net = SharedBusNetwork::new(2, 1, 1, Arbitration::FixedPriority);
        let mut rng = SimRng::new(1);
        // Saturate bus 0 completely.
        let g = net.request_cycle(&pending(2, &[0]), &mut rng);
        net.end_transmission(g[0]);
        // Bus 1 is unaffected.
        let g1 = net.request_cycle(&pending(2, &[1]), &mut rng);
        assert_eq!(g1.len(), 1);
        assert_eq!(g1[0].port, 1);
    }

    #[test]
    fn counters_track_attempts_and_rejections() {
        let mut net = SharedBusNetwork::new(1, 4, 2, Arbitration::FixedPriority);
        let mut rng = SimRng::new(1);
        let _ = net.request_cycle(&pending(4, &[0, 1, 2, 3]), &mut rng);
        let c = net.take_counters();
        assert_eq!(c.attempts, 4);
        assert_eq!(c.rejections, 3);
        assert_eq!(net.take_counters(), NetworkCounters::default(), "drained");
    }

    #[test]
    fn from_config_checks_kind() {
        let cfg: SystemConfig = "16/4x4x4 OMEGA/2".parse().expect("valid");
        assert!(SharedBusNetwork::from_config(&cfg, Arbitration::FixedPriority).is_err());
        let cfg: SystemConfig = "16/2x8x1 SBUS/16".parse().expect("valid");
        let net =
            SharedBusNetwork::from_config(&cfg, Arbitration::FixedPriority).expect("sbus config");
        assert_eq!(net.buses(), 2);
        assert_eq!(net.processors(), 16);
        assert_eq!(net.total_resources(), 32);
    }

    /// Packed and reference arbitration must stay byte-identical through
    /// the whole network surface — grants, counters, and rng consumption —
    /// under a chaotic mix of requests, completions, and faults.
    #[test]
    fn engines_agree_through_the_network_surface() {
        for policy in [
            Arbitration::FixedPriority,
            Arbitration::Random,
            Arbitration::RoundRobin,
        ] {
            // 2 buses × 70 processors: multi-word candidate masks.
            let mut fast = SharedBusNetwork::new(2, 70, 3, policy);
            fast.set_resolver_engine(ResolverEngine::Bitslice);
            let mut slow = SharedBusNetwork::new(2, 70, 3, policy);
            slow.set_resolver_engine(ResolverEngine::Reference);
            let mut rng_a = SimRng::new(97);
            let mut rng_b = SimRng::new(97);
            let mut lcg = 0xb0b0u64;
            let mut step = move || {
                lcg = lcg
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (lcg >> 33) as usize
            };
            let mut live: Vec<Grant> = Vec::new();
            for _ in 0..400 {
                match step() % 10 {
                    0..=5 => {
                        let mut pending = vec![false; 140];
                        for p in &mut pending {
                            *p = step() % 3 == 0;
                        }
                        let ga = fast.request_cycle(&pending, &mut rng_a);
                        let gb = slow.request_cycle(&pending, &mut rng_b);
                        assert_eq!(ga, gb, "{policy:?} grants diverged");
                        live.extend(ga);
                    }
                    6 => {
                        if !live.is_empty() {
                            let g = live.swap_remove(step() % live.len());
                            fast.end_transmission(g);
                            slow.end_transmission(g);
                            fast.end_service(g);
                            slow.end_service(g);
                        }
                    }
                    7 => {
                        let b = step() % 2;
                        assert_eq!(fast.fail_element(b), slow.fail_element(b));
                        assert_eq!(fast.repair_element(b), slow.repair_element(b));
                    }
                    _ => {
                        let b = step() % 2;
                        let failed = fast.fail_resource(b);
                        assert_eq!(failed, slow.fail_resource(b));
                        if failed {
                            live.retain(|g| g.port != b);
                        }
                        assert_eq!(fast.repair_resource(b), slow.repair_resource(b));
                    }
                }
            }
            assert_eq!(fast.take_counters(), slow.take_counters(), "{policy:?}");
        }
    }

    #[test]
    fn random_arbitration_spreads_grants() {
        let mut net = SharedBusNetwork::new(1, 3, 3, Arbitration::Random);
        let mut rng = SimRng::new(5);
        let mut seen = [false; 3];
        for _ in 0..100 {
            let g = net.request_cycle(&pending(3, &[0, 1, 2]), &mut rng);
            seen[g[0].processor] = true;
            net.end_transmission(g[0]);
            net.end_service(g[0]);
        }
        assert!(seen.iter().all(|&s| s), "all processors must win sometimes");
    }
}
