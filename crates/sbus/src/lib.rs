//! # rsin-sbus — the single-shared-bus RSIN (Section III)
//!
//! The simplest resource-sharing interconnection network: a bus broadcasts
//! resource-status information to its processors, an arbiter serializes
//! access, and tasks transmit over the bus to one of `r` attached
//! resources. The paper analyzes it exactly (see
//! [`rsin_queueing::SharedBusChain`]) and uses it both as the upper bound on
//! queueing delay and, partitioned into private buses, as the preferred
//! organization when resources are cheap.
//!
//! - [`SharedBusNetwork`]: a simulatable
//!   [`ResourceNetwork`](rsin_core::ResourceNetwork) of `i` independent
//!   buses.
//! - [`Arbitration`] / [`Arbiter`]: fixed-priority (the paper's hardware),
//!   random (POLYP-style token), and round-robin policies.
//! - [`analytic::partition_delay`]: the exact per-partition Markov solution.
//!
//! # Example: simulation agrees with the exact chain
//!
//! ```
//! use rsin_core::{simulate, SimOptions, SystemConfig, Workload};
//! use rsin_des::SimRng;
//! use rsin_sbus::{analytic, Arbitration, SharedBusNetwork};
//!
//! let cfg: SystemConfig = "4/4x1x1 SBUS/2".parse()?;
//! let w = Workload::new(0.2, 1.0, 0.5)?;
//! let exact = analytic::partition_delay(&cfg, &w)?.mean_queue_delay;
//!
//! let mut net = SharedBusNetwork::from_config(&cfg, Arbitration::FixedPriority)?;
//! let mut rng = SimRng::new(7);
//! let opts = SimOptions { warmup_tasks: 1_000, measured_tasks: 30_000 };
//! let sim = simulate(&mut net, &w, &opts, &mut rng).mean_delay();
//! assert!((sim - exact).abs() / exact < 0.1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analytic;
mod arbiter;
mod network;
mod typed;

pub use arbiter::{Arbiter, Arbitration};
pub use network::{SharedBusNetwork, WrongKindError};
pub use typed::TypedSharedBus;

#[cfg(test)]
mod integration_tests {
    use super::*;
    use rsin_core::{simulate, SimOptions, SystemConfig, Workload};
    use rsin_des::SimRng;

    /// The load-bearing validation: for several SBUS configurations the
    /// event-driven simulation must agree with the exact Markov chain.
    #[test]
    fn simulation_matches_exact_chain_across_configs() {
        let cases = [
            ("16/16x1x1 SBUS/2", 0.3, 0.1),
            ("16/2x8x1 SBUS/16", 0.3, 0.1),
            // Note 16/4x4x1 SBUS/8 at ratio 1.0 saturates its buses by
            // ρ = 0.375 — the Fig. 5 partition effect — so test the
            // 16-partition system there instead.
            ("16/16x1x1 SBUS/2", 0.5, 1.0),
        ];
        for (cfg_str, rho, ratio) in cases {
            let cfg: SystemConfig = cfg_str.parse().expect("valid");
            let w = Workload::for_intensity(&cfg, rho, ratio).expect("valid");
            let exact = analytic::partition_delay(&cfg, &w)
                .expect("stable")
                .mean_queue_delay;
            let mut net =
                SharedBusNetwork::from_config(&cfg, Arbitration::FixedPriority).expect("sbus");
            let mut rng = SimRng::new(99);
            let opts = SimOptions {
                warmup_tasks: 5_000,
                measured_tasks: 80_000,
            };
            let sim = simulate(&mut net, &w, &opts, &mut rng).mean_delay();
            let rel = (sim - exact).abs() / exact.max(1e-9);
            assert!(
                rel < 0.08,
                "{cfg_str} at rho={rho}: sim {sim} vs exact {exact} (rel {rel})"
            );
        }
    }

    /// Arbitration policy does not change the *mean* delay of a symmetric
    /// exponential bus (the service order is independent of service times),
    /// though it changes fairness; the means should agree within noise.
    #[test]
    fn arbitration_policy_leaves_mean_delay_unchanged() {
        let cfg: SystemConfig = "8/1x8x1 SBUS/4".parse().expect("valid");
        let w = Workload::for_intensity(&cfg, 0.5, 0.5).expect("valid");
        let opts = SimOptions {
            warmup_tasks: 3_000,
            measured_tasks: 60_000,
        };
        let mut means = Vec::new();
        for policy in [
            Arbitration::FixedPriority,
            Arbitration::Random,
            Arbitration::RoundRobin,
        ] {
            let mut net = SharedBusNetwork::from_config(&cfg, policy).expect("sbus");
            let mut rng = SimRng::new(4242);
            means.push(simulate(&mut net, &w, &opts, &mut rng).mean_delay());
        }
        let max = means.iter().cloned().fold(f64::MIN, f64::max);
        let min = means.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            (max - min) / min < 0.1,
            "policies should agree on mean delay: {means:?}"
        );
    }
}
