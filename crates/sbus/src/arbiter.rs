//! Bus arbitration policies.
//!
//! When several blocked requests wake simultaneously (a resource freed or
//! the bus became idle), an arbiter selects which processor gets the bus.
//! The paper's hardware is asymmetric — "it favors processors with small
//! index numbers" — and mentions two remedies: randomized request timing,
//! and the POLYP-style circulating token which effectively grants a random
//! waiting processor. Round-robin is included as the textbook fair policy.

use rsin_bitslice::{first_set, rotating_grant, select_nth_set};
use rsin_des::SimRng;

/// How a bus picks among simultaneously pending processors.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Arbitration {
    /// Lowest processor index wins — the paper's daisy-chained hardware.
    #[default]
    FixedPriority,
    /// A uniformly random pending processor wins — the POLYP token scheme.
    Random,
    /// Rotating priority starting after the last winner.
    RoundRobin,
}

/// Stateful arbiter for one bus.
#[derive(Clone, Debug)]
pub struct Arbiter {
    policy: Arbitration,
    last_winner: Option<usize>,
}

impl Arbiter {
    /// Creates an arbiter with the given policy.
    #[must_use]
    pub fn new(policy: Arbitration) -> Self {
        Arbiter {
            policy,
            last_winner: None,
        }
    }

    /// The policy in force.
    #[must_use]
    pub fn policy(&self) -> Arbitration {
        self.policy
    }

    /// Picks one winner among `candidates` (local processor indices on this
    /// bus, ascending). Returns `None` when empty.
    pub fn pick(&mut self, candidates: &[usize], rng: &mut SimRng) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        let winner = match self.policy {
            Arbitration::FixedPriority => candidates[0],
            Arbitration::Random => candidates[rng.index(candidates.len())],
            Arbitration::RoundRobin => {
                let start = self.last_winner.map_or(0, |w| w + 1);
                *candidates
                    .iter()
                    .find(|&&c| c >= start)
                    .unwrap_or(&candidates[0])
            }
        };
        self.last_winner = Some(winner);
        Some(winner)
    }

    /// Packed-lane counterpart of [`Arbiter::pick`]: candidates arrive as a
    /// bit mask with `count` set lanes. All three policies reduce to
    /// parallel-prefix selects on the packed words (lowest-set isolation,
    /// token-rotated lowest-set, n-th-set), and the random policy draws from
    /// the rng exactly once with the same bound as the list form — so both
    /// paths always elect the same winner.
    pub fn pick_packed(
        &mut self,
        candidates: &[u64],
        count: usize,
        rng: &mut SimRng,
    ) -> Option<usize> {
        if count == 0 {
            return None;
        }
        let winner = match self.policy {
            Arbitration::FixedPriority => first_set(candidates).expect("count > 0"),
            Arbitration::Random => {
                select_nth_set(candidates, rng.index(count)).expect("index < count")
            }
            Arbitration::RoundRobin => {
                let start = self.last_winner.map_or(0, |w| w + 1);
                rotating_grant(candidates, start).expect("count > 0")
            }
        };
        self.last_winner = Some(winner);
        Some(winner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_priority_always_picks_lowest() {
        let mut arb = Arbiter::new(Arbitration::FixedPriority);
        let mut rng = SimRng::new(1);
        for _ in 0..10 {
            assert_eq!(arb.pick(&[2, 5, 7], &mut rng), Some(2));
        }
    }

    #[test]
    fn random_covers_all_candidates() {
        let mut arb = Arbiter::new(Arbitration::Random);
        let mut rng = SimRng::new(2);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let w = arb.pick(&[0, 1, 2], &mut rng).expect("nonempty");
            seen[w] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn round_robin_rotates() {
        let mut arb = Arbiter::new(Arbitration::RoundRobin);
        let mut rng = SimRng::new(3);
        assert_eq!(arb.pick(&[0, 1, 2], &mut rng), Some(0));
        assert_eq!(arb.pick(&[0, 1, 2], &mut rng), Some(1));
        assert_eq!(arb.pick(&[0, 1, 2], &mut rng), Some(2));
        assert_eq!(arb.pick(&[0, 1, 2], &mut rng), Some(0), "wraps around");
        assert_eq!(arb.pick(&[0, 2], &mut rng), Some(2), "skips absent");
    }

    #[test]
    fn packed_pick_matches_list_pick_for_every_policy() {
        for policy in [
            Arbitration::FixedPriority,
            Arbitration::Random,
            Arbitration::RoundRobin,
        ] {
            let mut list = Arbiter::new(policy);
            let mut packed = Arbiter::new(policy);
            let mut rng_a = SimRng::new(77);
            let mut rng_b = SimRng::new(77);
            let mut lcg = 0x5eedu64;
            for _ in 0..300 {
                // Random candidate sets over 0..150 (multi-word masks).
                let mut candidates = Vec::new();
                let mut words = vec![0u64; 3];
                for i in 0..150 {
                    lcg = lcg
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    if (lcg >> 33).is_multiple_of(5) {
                        candidates.push(i);
                        words[i / 64] |= 1 << (i % 64);
                    }
                }
                let a = list.pick(&candidates, &mut rng_a);
                let b = packed.pick_packed(&words, candidates.len(), &mut rng_b);
                assert_eq!(a, b, "{policy:?} diverged on {candidates:?}");
            }
        }
    }

    #[test]
    fn empty_candidates_yield_none() {
        for policy in [
            Arbitration::FixedPriority,
            Arbitration::Random,
            Arbitration::RoundRobin,
        ] {
            let mut arb = Arbiter::new(policy);
            let mut rng = SimRng::new(4);
            assert_eq!(arb.pick(&[], &mut rng), None);
        }
    }
}
