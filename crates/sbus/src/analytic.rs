//! Analytical delay of a partitioned shared-bus system.
//!
//! Partitions are independent and identically loaded (Section III: "the
//! performance of each bus can be analyzed independently"), so the system
//! delay equals the delay of one partition's Markov chain.

use rsin_core::{NetworkKind, SystemConfig, Workload};
use rsin_queueing::{SharedBusChain, SharedBusParams, SharedBusSolution, SolveError};

/// Solves one partition of an SBUS configuration exactly.
///
/// # Errors
///
/// [`SolveError::BadParameter`] when `config` is not an SBUS system;
/// [`SolveError::Unstable`] when a partition is saturated; otherwise
/// propagates solver errors.
pub fn partition_delay(
    config: &SystemConfig,
    workload: &Workload,
) -> Result<SharedBusSolution, SolveError> {
    if config.kind() != NetworkKind::SharedBus {
        return Err(SolveError::BadParameter {
            what: "analytical shared-bus model requires an SBUS configuration",
        });
    }
    let chain = SharedBusChain::new(SharedBusParams {
        processors: config.inputs(),
        resources: config.resources_per_port(),
        lambda: workload.lambda(),
        mu_n: workload.mu_n(),
        mu_s: workload.mu_s(),
    })?;
    chain.solve()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioning_reduces_to_single_partition_chain() {
        let whole: SystemConfig = "16/2x8x1 SBUS/16".parse().expect("valid");
        let workload = Workload::new(0.01, 1.0, 0.1).expect("valid");
        let sol = partition_delay(&whole, &workload).expect("stable");
        // Identical to an 8-processor, 16-resource bus solved directly.
        let direct = SharedBusChain::new(SharedBusParams {
            processors: 8,
            resources: 16,
            lambda: 0.01,
            mu_n: 1.0,
            mu_s: 0.1,
        })
        .expect("stable")
        .solve()
        .expect("solves");
        assert!((sol.mean_queue_delay - direct.mean_queue_delay).abs() < 1e-12);
    }

    #[test]
    fn non_sbus_config_rejected() {
        let cfg: SystemConfig = "16/1x16x32 XBAR/1".parse().expect("valid");
        let workload = Workload::new(0.01, 1.0, 0.1).expect("valid");
        assert!(matches!(
            partition_delay(&cfg, &workload),
            Err(SolveError::BadParameter { .. })
        ));
    }

    #[test]
    fn more_partitions_help_under_heavy_bus_load() {
        // µ_s/µ_n = 1: the bus is the bottleneck (Fig. 5) — more partitions
        // mean more aggregate bus bandwidth, so delay drops.
        let workload = Workload::new(0.03, 1.0, 1.0).expect("valid");
        let one: SystemConfig = "16/1x16x1 SBUS/32".parse().expect("valid");
        let four: SystemConfig = "16/4x4x1 SBUS/8".parse().expect("valid");
        let d1 = partition_delay(&one, &workload)
            .expect("stable")
            .normalized_delay;
        let d4 = partition_delay(&four, &workload)
            .expect("stable")
            .normalized_delay;
        assert!(d4 < d1, "4 partitions {d4} must beat 1 partition {d1}");
    }
}
