//! The single-shared-bus Markov chain (Section III, Fig. 3, eqs. (1)–(2)).
//!
//! A bus connects `p` processors to `r` identical resources. Tasks arrive at
//! each processor as a Poisson stream of rate λ (aggregate `Λ = pλ`), wait in
//! FIFO order, transmit over the bus for an `Exp(µ_n)` period once a free
//! resource exists, then occupy that resource for `Exp(µ_s)`; the bus is
//! released at end of transmission and resources have no queue.
//!
//! The state is `N^ℓ_{n,s}`: `ℓ` tasks queued (excluding the one on the bus),
//! `n ∈ {0,1}` tasks transmitting, and `s` busy resources. Two structural
//! rules from the paper shape the chain:
//!
//! * a queued task starts transmitting the instant the bus frees **and** a
//!   free resource exists — so for `ℓ ≥ 1` the bus is only idle when `s = r`;
//! * when a transmission finishes and fills the last resource
//!   (`N^ℓ_{1,r-1} → N^ℓ_{0,r}`), the queue length does not change, because
//!   the next task cannot begin transmission.
//!
//! The queueing delay `d` — the time from arrival until the task is allocated
//! a resource and begins transmission — follows from Little's formula over
//! the queued-task count (eq. (1)).
//!
//! Three solvers are provided:
//!
//! * [`SharedBusChain::solve`] — exact **matrix-geometric** solution. For
//!   stages `ℓ ≥ 1` the chain is a level-independent QBD, so
//!   `π_{ℓ+1} = π_ℓ R` where `R` solves `A0 + R·A1 + R²·A2 = 0`; the boundary
//!   (stage 0 and stage 1) is solved exactly and tail sums are closed forms
//!   in `(I−R)⁻¹`. This is the library's reference answer at every load.
//! * [`SharedBusChain::solve_paper_iterative`] — the paper's method: express
//!   every stage in terms of *elementary states* at stage `q+1` via the
//!   recursion of eq. (2), fix the elementary vector with the unused
//!   boundary balance equations plus normalization, and grow `q` until the
//!   delay estimate stops improving ("until d starts to decrease").
//! * [`SharedBusChain::solve_truncated`] — builds the truncated chain
//!   explicitly and solves all `(r+1)(q+1)` balance equations simultaneously
//!   (the paper's cross-check, which agreed "within four digits").

use crate::error::SolveError;
use crate::linalg::{solve_linear, Mat};
use crate::markov::Ctmc;

/// Parameters of a single shared bus connecting processors to resources.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SharedBusParams {
    /// Number of processors attached to the bus (`p`).
    pub processors: u32,
    /// Number of resources attached to the bus (`r`).
    pub resources: u32,
    /// Task arrival rate per processor (`λ`).
    pub lambda: f64,
    /// Bus transmission rate (`µ_n`; mean transmission time `1/µ_n`).
    pub mu_n: f64,
    /// Resource service rate (`µ_s`; mean service time `1/µ_s`).
    pub mu_s: f64,
}

/// Steady-state metrics of the shared-bus chain.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SharedBusSolution {
    /// `d`: mean delay from arrival until resource allocation (transmission
    /// start), eq. (1).
    pub mean_queue_delay: f64,
    /// `d · µ_s`: delay normalized by the mean task service time, the unit
    /// used on the paper's figures.
    pub normalized_delay: f64,
    /// Mean time from arrival to service completion (`d + 1/µ_n + 1/µ_s`).
    pub mean_response_time: f64,
    /// Mean number of queued tasks (excludes the task on the bus).
    pub mean_queue_length: f64,
    /// Fraction of time the bus is transmitting.
    pub bus_utilization: f64,
    /// Mean fraction of busy resources.
    pub resource_utilization: f64,
    /// Queue stages represented by the solver (`usize::MAX` for the exact
    /// matrix-geometric solution, which carries the full infinite tail).
    pub stages: usize,
    /// Maximum balance-equation residual of the returned distribution.
    pub residual: f64,
}

/// A warm-start seed for [`SharedBusChain::solve_seeded`]: the converged
/// rate matrix `R` of a previously solved chain, plus the resource count it
/// was solved for (seeds never transfer across block dimensions).
///
/// Seeds are opaque by design — they accelerate the `R` iteration without
/// changing what it converges to, so callers only thread them from one
/// solve to the next.
#[derive(Clone, Debug)]
pub struct SharedBusSeed {
    resources: u32,
    r_mat: Mat,
}

impl SharedBusSeed {
    /// The resource count this seed was solved for (the cache's chained
    /// entry point mirrors `solve_seeded`'s transferability check).
    pub(crate) fn seed_resources(&self) -> u32 {
        self.resources
    }
}

/// The shared-bus Markov chain model.
///
/// # Examples
///
/// ```
/// use rsin_queueing::{SharedBusChain, SharedBusParams};
///
/// // One processor with two private resources (one partition of the paper's
/// // 16/16x1x1 SBUS/2 system) at moderate load.
/// let chain = SharedBusChain::new(SharedBusParams {
///     processors: 1,
///     resources: 2,
///     lambda: 0.3,
///     mu_n: 10.0,
///     mu_s: 1.0,
/// })?;
/// let sol = chain.solve()?;
/// assert!(sol.mean_queue_delay > 0.0);
/// assert!(sol.residual < 1e-8);
/// # Ok::<(), rsin_queueing::SolveError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SharedBusChain {
    params: SharedBusParams,
}

/// Erlang-B via the stable recurrence (offered load `a`, `r` servers).
fn erlang_b(a: f64, r: u32) -> f64 {
    let mut b = 1.0;
    for k in 1..=r {
        b = a * b / (k as f64 + a * b);
    }
    b
}

impl SharedBusChain {
    /// Validates parameters and builds the model.
    ///
    /// # Errors
    ///
    /// [`SolveError::BadParameter`] for non-positive counts or rates;
    /// [`SolveError::Unstable`] when the offered load `pλ` meets or exceeds
    /// the saturation throughput of the bus–resource pipeline.
    pub fn new(params: SharedBusParams) -> Result<Self, SolveError> {
        if params.processors == 0 {
            return Err(SolveError::BadParameter {
                what: "processor count must be positive",
            });
        }
        if params.resources == 0 {
            return Err(SolveError::BadParameter {
                what: "resource count must be positive",
            });
        }
        for (v, what) in [
            (params.lambda, "lambda must be positive and finite"),
            (params.mu_n, "mu_n must be positive and finite"),
            (params.mu_s, "mu_s must be positive and finite"),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(SolveError::BadParameter { what });
            }
        }
        let chain = SharedBusChain { params };
        let cap = chain.saturation_throughput();
        if chain.arrival_rate() >= cap {
            return Err(SolveError::Unstable {
                utilization: chain.arrival_rate() / cap,
            });
        }
        Ok(chain)
    }

    /// The model parameters.
    #[must_use]
    pub fn params(&self) -> SharedBusParams {
        self.params
    }

    /// Aggregate arrival rate `Λ = pλ`.
    #[must_use]
    pub fn arrival_rate(&self) -> f64 {
        self.params.processors as f64 * self.params.lambda
    }

    /// Maximum sustainable throughput of the coupled bus–resource system.
    ///
    /// In saturation the bus transmits whenever a resource is free, so the
    /// busy-resource count is a birth–death chain with birth rate `µ_n`
    /// (below `r`) and death rate `sµ_s`; the bus stalls with the Erlang-B
    /// probability of that chain, giving throughput
    /// `µ_n · (1 − B(µ_n/µ_s, r))`.
    #[must_use]
    pub fn saturation_throughput(&self) -> f64 {
        let a = self.params.mu_n / self.params.mu_s;
        self.params.mu_n * (1.0 - erlang_b(a, self.params.resources))
    }

    /// Offered load relative to saturation throughput (must be `< 1`).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.arrival_rate() / self.saturation_throughput()
    }

    // ---- QBD blocks -------------------------------------------------------
    //
    // In-level order for stages ℓ ≥ 1: index k < r ↦ N^ℓ_{1,k}, k = r ↦
    // N^ℓ_{0,r}. Row convention: π_{ℓ-1}·A0 + π_ℓ·A1 + π_{ℓ+1}·A2 = 0.

    fn block_a0(&self) -> Mat {
        let r = self.params.resources as usize;
        let lam = self.arrival_rate();
        let mut a0 = Mat::zeros(r + 1, r + 1);
        for k in 0..=r {
            a0[(k, k)] = lam;
        }
        a0
    }

    fn block_a1(&self) -> Mat {
        let r = self.params.resources as usize;
        let lam = self.arrival_rate();
        let (mu_n, mu_s) = (self.params.mu_n, self.params.mu_s);
        let mut a1 = Mat::zeros(r + 1, r + 1);
        for k in 0..r {
            a1[(k, k)] = -(lam + mu_n + k as f64 * mu_s);
            if k >= 1 {
                a1[(k, k - 1)] = k as f64 * mu_s;
            }
        }
        a1[(r - 1, r)] += mu_n; // N_{1,r-1} --µn--> N_{0,r}, same stage
        a1[(r, r)] = -(lam + r as f64 * mu_s);
        a1
    }

    fn block_a2(&self) -> Mat {
        let r = self.params.resources as usize;
        let (mu_n, mu_s) = (self.params.mu_n, self.params.mu_s);
        let mut a2 = Mat::zeros(r + 1, r + 1);
        for k in 0..r.saturating_sub(1) {
            a2[(k, k + 1)] = mu_n; // transmission ends, next task starts
        }
        a2[(r, r - 1)] = r as f64 * mu_s; // N_{0,r} --rµs--> N_{1,r-1} below
        a2
    }

    /// Iterates `R = −(A0 + R²·A2)·A1⁻¹` to convergence, from zero.
    fn rate_matrix(&self) -> Result<Mat, SolveError> {
        self.rate_matrix_from(None).map(|(m, _)| m)
    }

    /// Whether a seed is close enough to this chain's fixed point for a
    /// warm start to be worth attempting, measured by the defining
    /// quadratic's residual at the seed relative to the chain's rate
    /// scale. Neighboring grid points pass easily (their residual scales
    /// with the parameter step); a seed grown on a chain with very
    /// different rates is rejected here, before any `O(r⁶)` Newton work.
    fn seed_is_near(&self, r_mat: &Mat) -> bool {
        let n = self.params.resources as usize + 1;
        if r_mat.n_rows != n || r_mat.n_cols != n {
            return false;
        }
        let a0 = self.block_a0();
        let a1 = self.block_a1();
        let a2 = self.block_a2();
        let f = a0.add(&r_mat.mul(&a1)).add(&r_mat.mul(r_mat).mul(&a2));
        let f_max = f.a.iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
        let scale = (0..n).fold(0.0_f64, |m, i| m.max(a1[(i, i)].abs()));
        f_max <= 1e-2 * scale
    }

    /// Iterates `R = −(A0 + R²·A2)·A1⁻¹` to convergence, starting from
    /// `seed` when given (e.g. the converged `R` of a nearby parameter
    /// point) and from zero otherwise. Returns the converged matrix
    /// together with the iteration count (the observable the warm-start
    /// regression test keys on).
    ///
    /// Convergence is only *guaranteed* from zero (the iteration is
    /// monotone from below); from a foreign seed — a chain with the same
    /// block dimension but different rates — the orbit can diverge or
    /// wander without settling. The seeded path therefore runs on a short
    /// budget with a blow-up guard, and callers treat its error as "retry
    /// cold", never as "unsolvable".
    fn rate_matrix_from(&self, seed: Option<&Mat>) -> Result<(Mat, usize), SolveError> {
        let a0 = self.block_a0();
        let a1 = self.block_a1();
        let a2 = self.block_a2();
        let a1_inv = a1.inverse().ok_or(SolveError::NoConvergence {
            iterations: 0,
            residual: f64::INFINITY,
        })?;
        let n = a0.n_rows;
        let seeded = matches!(seed, Some(s) if s.n_rows == n && s.n_cols == n);
        let mut r_mat = if seeded {
            seed.expect("checked above").clone()
        } else {
            Mat::zeros(n, n)
        };
        // A warm start that hasn't settled within the cold path's typical
        // worst case isn't helping — cut it off and let the caller retry
        // from zero rather than grinding the full budget.
        let budget = if seeded { 50_000usize } else { 2_000_000 };
        let mut last_diff = f64::INFINITY;
        for it in 0..budget {
            let rr = r_mat.mul(&r_mat);
            let next = {
                let mut t = a0.add(&rr.mul(&a2));
                // negate then multiply by A1⁻¹
                for v in &mut t.a {
                    *v = -*v;
                }
                t.mul(&a1_inv)
            };
            let diff = next.max_abs_diff(&r_mat);
            r_mat = next;
            if diff < 1e-15 {
                return Ok((r_mat, it + 1));
            }
            if !diff.is_finite() || diff > 1e9 {
                // Diverging orbit (possible only from a foreign seed).
                return Err(SolveError::NoConvergence {
                    iterations: it + 1,
                    residual: diff,
                });
            }
            last_diff = diff;
        }
        Err(SolveError::NoConvergence {
            iterations: budget,
            residual: last_diff,
        })
    }

    /// Newton's method on the defining quadratic `A0 + R·A1 + R²·A2 = 0`,
    /// warm-started from `seed`. Each step solves the linearization
    /// `Δ·(A1 + R·A2) + R·Δ·A2 = −F(R)` (a generalized Sylvester equation,
    /// solved densely via the Kronecker form — the blocks are `(r+1)²`, so
    /// the system stays tiny) and applies `R += Δ`.
    ///
    /// From a seed near the fixed point this converges quadratically —
    /// single-digit step counts where the linear fixed-point iteration
    /// needs hundreds near saturation — which is what makes warm solves
    /// actually cheaper than cold ones. The functional iteration's head
    /// start from the same seed is worth almost nothing: it only skips the
    /// short initial transient, while the iteration count is dominated by
    /// the asymptotic contraction rate `sp(R)`, which no starting point
    /// improves.
    ///
    /// Newton does not inherit the functional iteration's guarantee of
    /// landing on the *minimal* nonnegative solution, so the result is
    /// accepted only if it is entrywise nonnegative (to fuzz) and a
    /// Collatz–Wielandt power bound certifies `sp(R) < 1`; `None` sends
    /// the caller down the plain seeded/cold path.
    fn rate_matrix_newton(&self, seed: &Mat) -> Option<(Mat, usize)> {
        let a0 = self.block_a0();
        let a1 = self.block_a1();
        let a2 = self.block_a2();
        let n = a0.n_rows;
        if seed.n_rows != n || seed.n_cols != n {
            return None;
        }
        // The Kronecker system is n²×n², so one Newton step costs O(n⁶) —
        // past a small block size a single step outweighs the entire
        // functional iteration it is meant to shortcut. Decline and let
        // the seeded functional path (O(n³) per iteration) take over.
        if n > 20 {
            return None;
        }
        let mut r_mat = seed.clone();
        let mut steps = 0;
        let converged = loop {
            if steps == 32 {
                break false;
            }
            steps += 1;
            // F(R) = A0 + R·A1 + R²·A2.
            let f = a0.add(&r_mat.mul(&a1)).add(&r_mat.mul(&r_mat).mul(&a2));
            // Kronecker assembly, row-major vec: unknown (i,j) ↦ i·n + j.
            // Δ·X contributes X[k][j] at (i·n+j, i·n+k); R·Δ·A2 contributes
            // R[i][m]·A2[k][j] at (i·n+j, m·n+k).
            let x = a1.add(&r_mat.mul(&a2));
            let mut m = Mat::zeros(n * n, n * n);
            let mut rhs = vec![0.0; n * n];
            for i in 0..n {
                for j in 0..n {
                    let row = i * n + j;
                    rhs[row] = -f[(i, j)];
                    for k in 0..n {
                        m[(row, i * n + k)] += x[(k, j)];
                    }
                    for mm in 0..n {
                        let rim = r_mat[(i, mm)];
                        if rim == 0.0 {
                            continue;
                        }
                        for k in 0..n {
                            m[(row, mm * n + k)] += rim * a2[(k, j)];
                        }
                    }
                }
            }
            let delta = solve_linear(&m, &rhs)?;
            let mut max_step = 0.0_f64;
            for i in 0..n {
                for j in 0..n {
                    let d = delta[i * n + j];
                    max_step = max_step.max(d.abs());
                    r_mat[(i, j)] += d;
                }
            }
            if !max_step.is_finite() {
                return None;
            }
            // Same scale as the functional iteration's successive-diff stop.
            if max_step < 1e-15 {
                break true;
            }
        };
        if !converged {
            return None;
        }
        // Minimality guard: entrywise nonnegative (clamping solver fuzz)
        // and spectrally stable.
        for v in &mut r_mat.a {
            if *v < 0.0 {
                if *v < -1e-12 {
                    return None;
                }
                *v = 0.0;
            }
        }
        // Collatz–Wielandt: for positive x, max_i (R·x)_i / x_i ≥ sp(R),
        // and the bound tightens under iteration — once it drops below 1,
        // sp(R) < 1 is certified.
        let mut x = vec![1.0; n];
        for _ in 0..64 {
            let y = r_mat.mat_vec(&x);
            let bound = y
                .iter()
                .zip(&x)
                .map(|(yi, xi)| yi / xi)
                .fold(0.0_f64, f64::max);
            if bound < 1.0 {
                return Some((r_mat, steps));
            }
            let norm = y.iter().fold(0.0_f64, |a, &v| a.max(v));
            if !(norm.is_finite() && norm > 0.0) {
                return None;
            }
            // Keep x strictly positive so the quotient stays defined.
            x = y.iter().map(|&v| (v / norm).max(1e-300)).collect();
        }
        None
    }

    /// Exact matrix-geometric solution (the library's primary solver).
    ///
    /// # Errors
    ///
    /// [`SolveError::NoConvergence`] if the `R`-matrix iteration or the
    /// boundary system fails (does not occur for validated, stable
    /// parameters in practice).
    pub fn solve(&self) -> Result<SharedBusSolution, SolveError> {
        let r_mat = self.rate_matrix()?;
        self.solve_with_rate_matrix(&r_mat)
    }

    /// [`SharedBusChain::solve`] warm-started from the converged `R` matrix
    /// of a previously solved chain — typically the neighboring point of a
    /// rho-grid sweep. The seeded path runs Newton's method on the
    /// quadratic ([`rate_matrix_newton`](Self::rate_matrix_newton)), which
    /// converges quadratically from a nearby seed where the functional
    /// iteration would grind through its full linear-rate schedule.
    ///
    /// Returns the solution together with a seed for the next solve. A seed
    /// from a chain with a different resource count is ignored (the block
    /// dimension differs), as is one whose residual under this chain's
    /// defining quadratic is large — a far seed (grown on a chain with
    /// very different rates) costs more than it saves, since Newton's
    /// Kronecker step is `O(r⁶)` and the functional iteration is only
    /// guaranteed convergent from zero. If Newton declines the point
    /// (non-convergence or a non-minimal root) the solve falls back to the
    /// seeded functional iteration, and failing that retries cold — a seed
    /// can never make a solvable chain unsolvable.
    ///
    /// # Errors
    ///
    /// [`SolveError::NoConvergence`] under the same conditions as
    /// [`SharedBusChain::solve`].
    pub fn solve_seeded(
        &self,
        seed: Option<&SharedBusSeed>,
    ) -> Result<(SharedBusSolution, SharedBusSeed), SolveError> {
        let usable =
            seed.filter(|s| s.resources == self.params.resources && self.seed_is_near(&s.r_mat));
        let r_mat = match usable {
            Some(s) => match self.rate_matrix_newton(&s.r_mat) {
                Some((m, _)) => m,
                None => match self.rate_matrix_from(Some(&s.r_mat)) {
                    Ok((m, _)) => m,
                    Err(_) => self.rate_matrix()?,
                },
            },
            None => self.rate_matrix()?,
        };
        let sol = self.solve_with_rate_matrix(&r_mat)?;
        Ok((
            sol,
            SharedBusSeed {
                resources: self.params.resources,
                r_mat,
            },
        ))
    }

    /// The boundary/tail computation shared by [`SharedBusChain::solve`]
    /// and [`SharedBusChain::solve_seeded`], given a converged `R`.
    fn solve_with_rate_matrix(&self, r_mat: &Mat) -> Result<SharedBusSolution, SolveError> {
        let r = self.params.resources as usize;
        let lam = self.arrival_rate();
        let (mu_n, mu_s) = (self.params.mu_n, self.params.mu_s);
        let n1 = r + 1; // block size of repeating stages
        let n0 = 2 * r + 1; // stage-0 size

        let a1 = self.block_a1();
        let a2 = self.block_a2();

        // Stage-0 indexing: j ∈ 0..=r ↦ N^0_{0,j}; j ∈ r+1..=2r ↦ N^0_{1,j-r-1}.
        let i00 = |s: usize| s;
        let i01 = |s: usize| r + 1 + s;

        // B00: stage-0 internal generator (diagonal carries total outflow,
        // including flows that leave stage 0).
        let mut b00 = Mat::zeros(n0, n0);
        for s in 0..=r {
            b00[(i00(s), i00(s))] = -(lam + s as f64 * mu_s);
            if s >= 1 {
                b00[(i00(s), i00(s - 1))] = s as f64 * mu_s;
            }
            if s < r {
                b00[(i00(s), i01(s))] = lam;
            }
        }
        for s in 0..r {
            b00[(i01(s), i01(s))] = -(lam + mu_n + s as f64 * mu_s);
            b00[(i01(s), i00(s + 1))] = mu_n;
            if s >= 1 {
                b00[(i01(s), i01(s - 1))] = s as f64 * mu_s;
            }
        }
        // B01: stage 0 → stage 1 (arrivals).
        let mut b01 = Mat::zeros(n0, n1);
        b01[(i00(r), r)] = lam;
        for s in 0..r {
            b01[(i01(s), s)] = lam;
        }
        // B10: stage 1 → stage 0.
        let mut b10 = Mat::zeros(n1, n0);
        for s in 0..r.saturating_sub(1) {
            b10[(s, i01(s + 1))] = mu_n;
        }
        b10[(r, i01(r - 1))] = r as f64 * mu_s;

        // Unknowns x = [π0 (n0), π1 (n1)].
        // Equations: balance at each stage-0 state (π0·B00 + π1·B10 = 0),
        // balance at each stage-1 state (π0·B01 + π1·(A1 + R·A2) = 0),
        // with one equation replaced by normalization
        // π0·1 + π1·(I−R)⁻¹·1 = 1.
        let dim = n0 + n1;
        let mut m = Mat::zeros(dim, dim);
        let mut rhs = vec![0.0; dim];
        for j in 0..n0 {
            for i in 0..n0 {
                m[(j, i)] = b00[(i, j)];
            }
            for k in 0..n1 {
                m[(j, n0 + k)] = b10[(k, j)];
            }
        }
        let a1_ra2 = a1.add(&r_mat.mul(&a2));
        for j in 0..n1 {
            for i in 0..n0 {
                m[(n0 + j, i)] = b01[(i, j)];
            }
            for k in 0..n1 {
                m[(n0 + j, n0 + k)] = a1_ra2[(k, j)];
            }
        }
        let i_minus_r = Mat::identity(n1).sub(r_mat);
        let sum_r = i_minus_r.inverse().ok_or(SolveError::NoConvergence {
            iterations: 0,
            residual: f64::INFINITY,
        })?;
        let tail_weights = sum_r.mat_vec(&vec![1.0; n1]);
        // Replace the first equation with normalization.
        for i in 0..n0 {
            m[(0, i)] = 1.0;
        }
        for k in 0..n1 {
            m[(0, n0 + k)] = tail_weights[k];
        }
        rhs[0] = 1.0;

        let x = solve_linear(&m, &rhs).ok_or(SolveError::NoConvergence {
            iterations: 0,
            residual: f64::INFINITY,
        })?;
        let pi0 = &x[..n0];
        let pi1 = &x[n0..];

        // Tail sums: Σ_{ℓ≥1} π_ℓ = π1·(I−R)⁻¹, Σ ℓ·π_ℓ = π1·(I−R)⁻².
        let tail_mass = sum_r.row_vec_mul(pi1);
        let tail_weighted = sum_r.row_vec_mul(&tail_mass);

        let mean_queue: f64 = tail_weighted.iter().sum();
        let mut bus_busy: f64 = (0..r).map(|s| pi0[i01(s)]).sum();
        bus_busy += tail_mass[..r].iter().sum::<f64>();
        let mut busy_res: f64 = (0..=r).map(|s| s as f64 * pi0[i00(s)]).sum();
        busy_res += (0..r).map(|s| s as f64 * pi0[i01(s)]).sum::<f64>();
        busy_res += tail_mass
            .iter()
            .enumerate()
            .map(|(k, &p)| if k < r { k as f64 * p } else { r as f64 * p })
            .sum::<f64>();

        // Residual diagnostic: balance at stages 0..2 with π2 = π1·R.
        let pi2 = r_mat.row_vec_mul(pi1);
        let pi3 = r_mat.row_vec_mul(&pi2);
        let mut residual = 0.0_f64;
        {
            let v0 = b00.row_vec_mul(pi0);
            let v1 = b10.row_vec_mul(pi1);
            for j in 0..n0 {
                residual = residual.max((v0[j] + v1[j]).abs());
            }
            let w0 = b01.row_vec_mul(pi0);
            let w1 = a1.row_vec_mul(pi1);
            let w2 = a2.row_vec_mul(&pi2);
            for j in 0..n1 {
                residual = residual.max((w0[j] + w1[j] + w2[j]).abs());
            }
            let a0 = self.block_a0();
            let u0 = a0.row_vec_mul(pi1);
            let u1 = a1.row_vec_mul(&pi2);
            let u2 = a2.row_vec_mul(&pi3);
            for j in 0..n1 {
                residual = residual.max((u0[j] + u1[j] + u2[j]).abs());
            }
        }

        let d = mean_queue / lam;
        Ok(SharedBusSolution {
            mean_queue_delay: d,
            normalized_delay: d * mu_s,
            mean_response_time: d + 1.0 / mu_n + 1.0 / mu_s,
            mean_queue_length: mean_queue,
            bus_utilization: bus_busy,
            resource_utilization: busy_res / r as f64,
            stages: usize::MAX,
            residual,
        })
    }

    /// The paper's iterative stage-recursion procedure.
    ///
    /// Solves with elementary stages `q = 4, 8, 16, …`, each time expressing
    /// all lower stages in terms of the elementary states via eq. (2) and
    /// fixing the elementary vector from the boundary balance equations plus
    /// normalization, and stops when the delay estimate stabilizes or starts
    /// to decrease (the paper's numeric-precision stopping rule).
    ///
    /// # Errors
    ///
    /// [`SolveError::NoConvergence`] if no `q` yields a solvable boundary
    /// system.
    pub fn solve_paper_iterative(&self) -> Result<SharedBusSolution, SolveError> {
        self.solve_paper_iterative_from(None)
    }

    /// [`SharedBusChain::solve_paper_iterative`] with a starting hint for
    /// the elementary-stage count `q` — typically `stages - 1` of a
    /// neighboring grid point's solution, which skips the warm-up doublings
    /// below the hint. The stopping rule is unchanged, so the hint only
    /// shortens the search.
    ///
    /// # Errors
    ///
    /// [`SolveError::NoConvergence`] if no `q` yields a solvable boundary
    /// system.
    pub fn solve_paper_iterative_from(
        &self,
        q_hint: Option<usize>,
    ) -> Result<SharedBusSolution, SolveError> {
        let mut best: Option<SharedBusSolution> = None;
        // Start one doubling below the hint so the convergence comparison
        // still brackets it.
        let mut q = q_hint.map_or(4, |h| (h / 2).next_power_of_two().clamp(4, 4096));
        while q <= 4096 {
            if let Some(sol) = self.stage_recursion(q) {
                if let Some(prev) = best {
                    let change = sol.mean_queue_delay - prev.mean_queue_delay;
                    if change < 0.0 {
                        // Precision exhausted: keep the previous estimate.
                        return Ok(prev);
                    }
                    if change / sol.mean_queue_delay.max(1e-300) < 1e-12 {
                        return Ok(sol);
                    }
                }
                best = Some(sol);
            }
            q *= 2;
        }
        best.ok_or(SolveError::NoConvergence {
            iterations: 4096,
            residual: f64::INFINITY,
        })
    }

    /// One stage-recursion solve with elementary states at stage `q+1`.
    ///
    /// Runs the downward recursion once per elementary basis vector, then
    /// solves for the basis coefficients using the `r` boundary balance
    /// equations at `N^0_{1,s}` plus normalization.
    fn stage_recursion(&self, q: usize) -> Option<SharedBusSolution> {
        let r = self.params.resources as usize;
        let lam = self.arrival_rate();
        let (mu_n, mu_s) = (self.params.mu_n, self.params.mu_s);
        let width = r + 1;
        let stages = q + 1;

        struct BasisRun {
            total: f64,
            queue: f64,
            bus: f64,
            busy: f64,
            boundary_residual: Vec<f64>,
        }

        let mut runs = Vec::with_capacity(width);
        for b in 0..width {
            // u[ℓ] for ℓ in 1..=stages; stage index 0 of `u` is ℓ=1.
            let mut u = vec![vec![0.0_f64; width]; stages];
            u[stages - 1][b] = 1.0;
            for l in (2..=stages).rev() {
                let cur = u[l - 1].clone();
                let above = if l < stages {
                    u[l].clone()
                } else {
                    vec![0.0; width]
                };
                let prev = &mut u[l - 2];
                for s in 0..r {
                    let mut v = (lam + mu_n + s as f64 * mu_s) * cur[s];
                    if s < r - 1 {
                        v -= (s + 1) as f64 * mu_s * cur[s + 1];
                    }
                    if s >= 1 {
                        v -= mu_n * above[s - 1];
                    }
                    if s == r - 1 {
                        v -= r as f64 * mu_s * above[r];
                    }
                    prev[s] = v / lam;
                }
                prev[r] = ((lam + r as f64 * mu_s) * cur[r] - mu_n * cur[r - 1]) / lam;
                let m = prev.iter().fold(0.0_f64, |a, &v| a.max(v.abs()));
                if m > 1e220 {
                    for stage in u.iter_mut() {
                        for v in stage.iter_mut() {
                            *v *= 1e-200;
                        }
                    }
                }
            }
            // Stage-0 states from stage-1 balance.
            let s1 = u[0].clone();
            let s2 = if stages >= 2 {
                u[1].clone()
            } else {
                vec![0.0; width]
            };
            let mut zero_n1 = vec![0.0_f64; r];
            let mut zero_n0 = vec![0.0_f64; r + 1];
            for s in 0..r {
                let mut v = (lam + mu_n + s as f64 * mu_s) * s1[s];
                if s < r - 1 {
                    v -= (s + 1) as f64 * mu_s * s1[s + 1];
                }
                if s >= 1 {
                    v -= mu_n * s2[s - 1];
                }
                if s == r - 1 {
                    v -= r as f64 * mu_s * s2[r];
                }
                zero_n1[s] = v / lam;
            }
            zero_n0[r] = ((lam + r as f64 * mu_s) * s1[r] - mu_n * s1[r - 1]) / lam;
            for s in (0..r).rev() {
                let mut v = (s + 1) as f64 * mu_s * zero_n0[s + 1];
                if s >= 1 {
                    v += mu_n * zero_n1[s - 1];
                }
                zero_n0[s] = v / (lam + s as f64 * mu_s);
            }
            // Boundary residuals at N^0_{1,s} (the equations not yet used).
            let mut boundary = vec![0.0_f64; r];
            for (s, slot) in boundary.iter_mut().enumerate() {
                let mut inflow = lam * zero_n0[s];
                if s < r - 1 {
                    inflow += (s + 1) as f64 * mu_s * zero_n1[s + 1];
                }
                if s >= 1 {
                    inflow += mu_n * s1[s - 1];
                }
                if s == r - 1 {
                    inflow += r as f64 * mu_s * s1[r];
                }
                let outflow = (lam + mu_n + s as f64 * mu_s) * zero_n1[s];
                *slot = inflow - outflow;
            }
            // Linear functionals of this basis run.
            let mut total: f64 = zero_n0.iter().sum::<f64>() + zero_n1.iter().sum::<f64>();
            let mut queue = 0.0;
            let mut bus: f64 = zero_n1.iter().sum();
            let mut busy: f64 = zero_n0
                .iter()
                .enumerate()
                .map(|(s, &p)| s as f64 * p)
                .sum::<f64>()
                + zero_n1
                    .iter()
                    .enumerate()
                    .map(|(s, &p)| s as f64 * p)
                    .sum::<f64>();
            for (i, stage) in u.iter().enumerate() {
                let l = (i + 1) as f64;
                let mass: f64 = stage.iter().sum();
                total += mass;
                queue += l * mass;
                bus += stage[..r].iter().sum::<f64>();
                busy += stage
                    .iter()
                    .enumerate()
                    .map(|(k, &p)| if k < r { k as f64 * p } else { r as f64 * p })
                    .sum::<f64>();
            }
            runs.push(BasisRun {
                total,
                queue,
                bus,
                busy,
                boundary_residual: boundary,
            });
        }

        // Solve for coefficients: r boundary equations + normalization.
        let mut m = Mat::zeros(width, width);
        let mut rhs = vec![0.0; width];
        for s in 0..r {
            for (b, run) in runs.iter().enumerate() {
                m[(s, b)] = run.boundary_residual[s];
            }
        }
        for (b, run) in runs.iter().enumerate() {
            m[(r, b)] = run.total;
        }
        rhs[r] = 1.0;
        let c = solve_linear(&m, &rhs)?;

        let mean_queue: f64 = runs.iter().zip(&c).map(|(r_, &cb)| cb * r_.queue).sum();
        let bus_busy: f64 = runs.iter().zip(&c).map(|(r_, &cb)| cb * r_.bus).sum();
        let busy_res: f64 = runs.iter().zip(&c).map(|(r_, &cb)| cb * r_.busy).sum();
        if !(mean_queue.is_finite() && mean_queue >= 0.0) {
            return None;
        }
        let d = mean_queue / lam;
        Some(SharedBusSolution {
            mean_queue_delay: d,
            normalized_delay: d * mu_s,
            mean_response_time: d + 1.0 / mu_n + 1.0 / mu_s,
            mean_queue_length: mean_queue,
            bus_utilization: bus_busy,
            resource_utilization: busy_res / r as f64,
            stages: q + 1,
            residual: f64::NAN, // diagnostic defined only for the exact solvers
        })
    }

    /// Reference solver: builds the truncated chain explicitly (queue capped
    /// at `max_stage`) and solves every balance equation simultaneously via
    /// Gauss–Seidel — the comparison method mentioned in the paper.
    ///
    /// # Errors
    ///
    /// Propagates [`SolveError::NoConvergence`] from the CTMC solver.
    pub fn solve_truncated(&self, max_stage: usize) -> Result<SharedBusSolution, SolveError> {
        let r = self.params.resources as usize;
        let lam = self.arrival_rate();
        let (mu_n, mu_s) = (self.params.mu_n, self.params.mu_s);

        let stage0 = 2 * r + 1;
        let idx0_n0 = |s: usize| s;
        let idx0_n1 = |s: usize| r + 1 + s;
        let idx = |l: usize, k: usize| stage0 + (l - 1) * (r + 1) + k;
        let n = stage0 + max_stage * (r + 1);
        let mut c = Ctmc::new(n);

        for s in 0..=r {
            if s < r {
                c.add(idx0_n0(s), idx0_n1(s), lam);
            } else {
                c.add(idx0_n0(r), idx(1, r), lam);
            }
            if s >= 1 {
                c.add(idx0_n0(s), idx0_n0(s - 1), s as f64 * mu_s);
            }
        }
        for s in 0..r {
            c.add(idx0_n1(s), idx(1, s), lam);
            c.add(idx0_n1(s), idx0_n0(s + 1), mu_n);
            if s >= 1 {
                c.add(idx0_n1(s), idx0_n1(s - 1), s as f64 * mu_s);
            }
        }
        for l in 1..=max_stage {
            for s in 0..r {
                if l < max_stage {
                    c.add(idx(l, s), idx(l + 1, s), lam);
                }
                if s < r - 1 {
                    let dest = if l == 1 {
                        idx0_n1(s + 1)
                    } else {
                        idx(l - 1, s + 1)
                    };
                    c.add(idx(l, s), dest, mu_n);
                } else {
                    c.add(idx(l, s), idx(l, r), mu_n);
                }
                if s >= 1 {
                    c.add(idx(l, s), idx(l, s - 1), s as f64 * mu_s);
                }
            }
            if l < max_stage {
                c.add(idx(l, r), idx(l + 1, r), lam);
            }
            let dest = if l == 1 {
                idx0_n1(r - 1)
            } else {
                idx(l - 1, r - 1)
            };
            c.add(idx(l, r), dest, r as f64 * mu_s);
        }

        let pi = c.solve()?;
        let residual = c.balance_residual(&pi);

        let mut mean_queue = 0.0;
        let mut bus_busy = 0.0;
        let mut busy_res = 0.0;
        for s in 0..=r {
            busy_res += s as f64 * pi[idx0_n0(s)];
        }
        for s in 0..r {
            bus_busy += pi[idx0_n1(s)];
            busy_res += s as f64 * pi[idx0_n1(s)];
        }
        for l in 1..=max_stage {
            for k in 0..=r {
                let p = pi[idx(l, k)];
                mean_queue += l as f64 * p;
                if k < r {
                    bus_busy += p;
                    busy_res += k as f64 * p;
                } else {
                    busy_res += r as f64 * p;
                }
            }
        }
        let d = mean_queue / lam;
        Ok(SharedBusSolution {
            mean_queue_delay: d,
            normalized_delay: d * mu_s,
            mean_response_time: d + 1.0 / mu_n + 1.0 / mu_s,
            mean_queue_length: mean_queue,
            bus_utilization: bus_busy,
            resource_utilization: busy_res / r as f64,
            stages: max_stage,
            residual,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mm1::Mm1;
    use crate::mmr::Mmr;

    fn params(p: u32, r: u32, lambda: f64, mu_n: f64, mu_s: f64) -> SharedBusParams {
        SharedBusParams {
            processors: p,
            resources: r,
            lambda,
            mu_n,
            mu_s,
        }
    }

    /// The rho grid of the perf-report warm/cold kernels: every stable
    /// point of the 2-processor/4-resource bus across the figure loads.
    fn kernel_grid() -> Vec<SharedBusParams> {
        let (mu_n, mu_s) = (1.0, 0.1);
        std::iter::once(0.05)
            .chain((1..=9).map(|i| f64::from(i) / 10.0))
            .map(|rho| SharedBusParams {
                processors: 2,
                resources: 4,
                lambda: crate::traffic::lambda_for_intensity(16, 32, rho, mu_n, mu_s),
                mu_n,
                mu_s,
            })
            .filter(|&p| SharedBusChain::new(p).is_ok())
            .collect()
    }

    #[test]
    fn seeded_newton_matches_cold_and_converges_in_single_digit_steps() {
        let grid = kernel_grid();
        assert!(grid.len() >= 8, "grid unexpectedly small");
        let mut seed: Option<Mat> = None;
        for (k, &p) in grid.iter().enumerate() {
            let chain = SharedBusChain::new(p).expect("stable");
            let (cold, cold_iters) = chain.rate_matrix_from(None).expect("cold converges");
            if let Some(s) = &seed {
                let (newton, steps) = chain
                    .rate_matrix_newton(s)
                    .expect("newton converges from a neighbor seed");
                assert!(
                    newton.max_abs_diff(&cold) < 1e-10,
                    "point {k}: newton diverged from the minimal solution"
                );
                // Quadratic convergence is the entire point of the warm
                // path: a neighbor seed must land in single digits where
                // the functional iteration needs `cold_iters` (hundreds
                // near saturation).
                assert!(
                    steps <= 9,
                    "point {k}: newton took {steps} steps (cold takes {cold_iters})"
                );
            }
            seed = Some(cold);
        }
    }

    #[test]
    fn seeded_solve_equals_cold_solve_across_the_grid() {
        let mut seed = None;
        for &p in &kernel_grid() {
            let chain = SharedBusChain::new(p).expect("stable");
            let cold = chain.solve().expect("cold solves");
            let (warm, next) = chain.solve_seeded(seed.as_ref()).expect("warm solves");
            seed = Some(next);
            assert!(
                (warm.mean_queue_delay - cold.mean_queue_delay).abs()
                    / cold.mean_queue_delay.max(1e-12)
                    < 1e-9,
                "warm and cold disagree at lambda={}",
                p.lambda
            );
            assert!(warm.residual < 1e-8, "warm residual too large");
        }
    }

    #[test]
    fn newton_rejects_a_wildly_wrong_seed_gracefully() {
        let chain = SharedBusChain::new(params(2, 4, 0.1, 1.0, 0.1)).expect("stable");
        // A seed far outside the contraction basin must either converge to
        // the same minimal solution or be declined — never return garbage.
        let mut bad = Mat::zeros(5, 5);
        for v in &mut bad.a {
            *v = 10.0;
        }
        let (cold, _) = chain.rate_matrix_from(None).expect("cold converges");
        if let Some((m, _)) = chain.rate_matrix_newton(&bad) {
            assert!(m.max_abs_diff(&cold) < 1e-10, "accepted a non-minimal root");
        }
        // And the public API is immune either way: a nonsense-dimension
        // seed is filtered before Newton ever sees it.
        let (sol, _) = chain.solve_seeded(None).expect("solves");
        assert!(sol.mean_queue_delay > 0.0);
    }

    #[test]
    fn rejects_bad_and_unstable_parameters() {
        assert!(SharedBusChain::new(params(0, 1, 1.0, 1.0, 1.0)).is_err());
        assert!(SharedBusChain::new(params(1, 0, 1.0, 1.0, 1.0)).is_err());
        assert!(SharedBusChain::new(params(1, 1, -1.0, 1.0, 1.0)).is_err());
        // Saturation for r=1, mu_n=mu_s=1: a=1, B=1/2, cap=0.5.
        assert!(matches!(
            SharedBusChain::new(params(1, 1, 0.6, 1.0, 1.0)),
            Err(SolveError::Unstable { .. })
        ));
        assert!(SharedBusChain::new(params(1, 1, 0.4, 1.0, 1.0)).is_ok());
    }

    #[test]
    fn saturation_throughput_closed_form() {
        let c = SharedBusChain::new(params(1, 2, 0.1, 1.0, 1.0)).expect("stable");
        // a=1, r=2: b1 = 1/2, b2 = .5/(2+.5) = .2 → cap = 0.8.
        assert!((c.saturation_throughput() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn matrix_geometric_matches_truncated_solver() {
        for (p, r, lam, mu_n, mu_s) in [
            (4, 2, 0.05, 1.0, 0.5),
            (1, 3, 0.2, 2.0, 1.0),
            (8, 4, 0.03, 1.0, 1.0),
            (2, 1, 0.1, 1.0, 2.0),
        ] {
            let chain = SharedBusChain::new(params(p, r, lam, mu_n, mu_s)).expect("stable");
            let a = chain.solve().expect("matrix-geometric");
            let b = chain.solve_truncated(96).expect("gs converges");
            let rel =
                (a.mean_queue_delay - b.mean_queue_delay).abs() / b.mean_queue_delay.max(1e-12);
            assert!(
                rel < 1e-5,
                "p={p} r={r}: exact {} vs truncated {} (rel {rel})",
                a.mean_queue_delay,
                b.mean_queue_delay
            );
            assert!((a.bus_utilization - b.bus_utilization).abs() < 1e-5);
            assert!((a.resource_utilization - b.resource_utilization).abs() < 1e-5);
        }
    }

    #[test]
    fn paper_iterative_matches_matrix_geometric() {
        for (p, r, lam, mu_n, mu_s) in [
            (4, 2, 0.05, 1.0, 0.5),
            (1, 3, 0.2, 2.0, 1.0),
            (16, 2, 0.004, 1.0, 0.1),
        ] {
            let chain = SharedBusChain::new(params(p, r, lam, mu_n, mu_s)).expect("stable");
            let exact = chain.solve().expect("exact").mean_queue_delay;
            let paper = chain
                .solve_paper_iterative()
                .expect("paper method")
                .mean_queue_delay;
            // The paper reports its two methods agree "within four digits";
            // hold the reimplementation to the same standard.
            let rel = (exact - paper).abs() / exact.max(1e-12);
            assert!(
                rel < 5e-4,
                "p={p} r={r}: exact {exact} vs paper {paper} (rel {rel})"
            );
        }
    }

    #[test]
    fn paper_iterative_degrades_gracefully_under_heavy_load() {
        // At ~70% utilization the elementary-state columns become nearly
        // collinear and the paper's method loses digits before the tail is
        // fully captured — the behavior the paper describes as "maximum
        // precision ... attained". It must still land within a few percent.
        let chain = SharedBusChain::new(params(16, 2, 0.008, 1.0, 0.1)).expect("stable");
        let exact = chain.solve().expect("exact").mean_queue_delay;
        let paper = chain
            .solve_paper_iterative()
            .expect("paper method")
            .mean_queue_delay;
        let rel = (exact - paper).abs() / exact;
        assert!(rel < 0.05, "exact {exact} vs paper {paper} (rel {rel})");
    }

    #[test]
    fn fast_transmission_limit_is_mmr() {
        // mu_n huge: waiting is dominated by waiting for a free resource.
        let (p, r, lam, mu_s) = (4, 3, 0.6, 1.0);
        let chain = SharedBusChain::new(params(p, r, lam, 1e5, mu_s)).expect("stable");
        let sol = chain.solve().expect("converges");
        let mmr = Mmr::new(p as f64 * lam, mu_s, r).expect("stable");
        let rel =
            (sol.mean_queue_delay - mmr.mean_wait_in_queue()).abs() / mmr.mean_wait_in_queue();
        assert!(
            rel < 0.01,
            "chain d {} vs M/M/r Wq {}",
            sol.mean_queue_delay,
            mmr.mean_wait_in_queue()
        );
    }

    #[test]
    fn fast_service_limit_is_mm1() {
        // mu_s huge: resources always free; bus is an M/M/1 server.
        let (p, r, lam, mu_n) = (4, 2, 0.15, 1.0);
        let chain = SharedBusChain::new(params(p, r, lam, mu_n, 1e5)).expect("stable");
        let sol = chain.solve().expect("converges");
        let mm1 = Mm1::new(p as f64 * lam, mu_n).expect("stable");
        let rel =
            (sol.mean_queue_delay - mm1.mean_wait_in_queue()).abs() / mm1.mean_wait_in_queue();
        assert!(
            rel < 0.01,
            "chain d {} vs M/M/1 Wq {}",
            sol.mean_queue_delay,
            mm1.mean_wait_in_queue()
        );
    }

    #[test]
    fn many_resources_limit_is_mm1() {
        // r large: a free resource always exists.
        let chain = SharedBusChain::new(params(2, 64, 0.3, 1.0, 0.05)).expect("stable");
        let sol = chain.solve().expect("converges");
        let mm1 = Mm1::new(0.6, 1.0).expect("stable");
        let rel =
            (sol.mean_queue_delay - mm1.mean_wait_in_queue()).abs() / mm1.mean_wait_in_queue();
        assert!(rel < 0.02, "rel {rel}");
    }

    #[test]
    fn delay_increases_with_load() {
        let mut prev = 0.0;
        for i in 1..8 {
            let lam = 0.05 * i as f64;
            let chain = SharedBusChain::new(params(1, 2, lam, 1.0, 1.0)).expect("stable");
            let d = chain.solve().expect("converges").mean_queue_delay;
            assert!(d > prev, "delay must grow with load: {d} after {prev}");
            prev = d;
        }
    }

    #[test]
    fn utilizations_match_flow_arguments() {
        let chain = SharedBusChain::new(params(4, 3, 0.05, 1.0, 0.5)).expect("stable");
        let sol = chain.solve().expect("converges");
        // Bus carries all Λ at rate mu_n: utilization = Λ/µ_n.
        assert!((sol.bus_utilization - 0.2 / 1.0).abs() < 1e-6);
        // Resources carry Λ at rate µ_s each: E[s] = Λ/µ_s; util = Λ/(rµ_s).
        assert!((sol.resource_utilization - 0.2 / (3.0 * 0.5)).abs() < 1e-6);
    }

    #[test]
    fn normalized_delay_and_response_consistent() {
        let chain = SharedBusChain::new(params(2, 2, 0.1, 2.0, 1.0)).expect("stable");
        let sol = chain.solve().expect("converges");
        assert!((sol.normalized_delay - sol.mean_queue_delay * 1.0).abs() < 1e-12);
        assert!((sol.mean_response_time - (sol.mean_queue_delay + 0.5 + 1.0)).abs() < 1e-12);
        assert!((sol.mean_queue_length - 0.2 * sol.mean_queue_delay).abs() < 1e-9);
    }

    #[test]
    fn heavy_load_still_solves() {
        // 95% of saturation.
        let cap = SharedBusChain::new(params(16, 2, 1e-6, 1.0, 1.0))
            .expect("stable")
            .saturation_throughput();
        let lam = 0.95 * cap / 16.0;
        let chain = SharedBusChain::new(params(16, 2, lam, 1.0, 1.0)).expect("stable");
        let sol = chain.solve().expect("converges");
        assert!(sol.mean_queue_delay > 5.0, "heavy load ⇒ long delay");
        assert!(sol.residual < 1e-8);
    }

    #[test]
    fn exact_solution_has_tiny_residual() {
        let chain = SharedBusChain::new(params(8, 4, 0.02, 1.0, 0.2)).expect("stable");
        let sol = chain.solve().expect("converges");
        assert!(sol.residual < 1e-10, "residual {}", sol.residual);
    }
}
