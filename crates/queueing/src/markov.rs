//! Sparse continuous-time Markov chains and steady-state solvers.
//!
//! The paper solves the shared-bus chain by expressing stage probabilities in
//! terms of elementary states and, as a cross-check, by solving all
//! `(r+1)(q+1)` balance equations simultaneously. This module provides the
//! general machinery: a sparse generator built transition-by-transition, a
//! Gauss–Seidel balance-equation solver for large chains, and a dense
//! Gaussian-elimination solver used to validate the iterative one on small
//! chains.

use crate::error::SolveError;

/// A transition of a CTMC: `from --rate--> to`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Transition {
    /// Source state index.
    pub from: usize,
    /// Destination state index.
    pub to: usize,
    /// Transition rate (must be positive).
    pub rate: f64,
}

/// A sparse CTMC generator under construction.
///
/// # Examples
///
/// A two-state flip-flop with rates 1 and 2 has stationary distribution
/// (2/3, 1/3):
///
/// ```
/// use rsin_queueing::Ctmc;
///
/// let mut c = Ctmc::new(2);
/// c.add(0, 1, 1.0);
/// c.add(1, 0, 2.0);
/// let pi = c.solve()?;
/// assert!((pi[0] - 2.0 / 3.0).abs() < 1e-9);
/// # Ok::<(), rsin_queueing::SolveError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Ctmc {
    n: usize,
    /// Outgoing transitions per state.
    out: Vec<Vec<(usize, f64)>>,
    /// Incoming transitions per state (mirror of `out`).
    inc: Vec<Vec<(usize, f64)>>,
    /// Total outflow rate per state.
    out_rate: Vec<f64>,
}

impl Ctmc {
    /// Creates a chain with `n` states and no transitions.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "chain needs at least one state");
        Ctmc {
            n,
            out: vec![Vec::new(); n],
            inc: vec![Vec::new(); n],
            out_rate: vec![0.0; n],
        }
    }

    /// Number of states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.n
    }

    /// Adds a transition `from --rate--> to`. Parallel transitions between
    /// the same pair accumulate.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices, self-loops, or non-positive rates.
    pub fn add(&mut self, from: usize, to: usize, rate: f64) {
        assert!(from < self.n && to < self.n, "state index out of range");
        assert!(from != to, "self-loops have no effect in a CTMC");
        assert!(
            rate.is_finite() && rate > 0.0,
            "rate must be positive, got {rate}"
        );
        self.out[from].push((to, rate));
        self.inc[to].push((from, rate));
        self.out_rate[from] += rate;
    }

    /// Iterates over all transitions.
    pub fn transitions(&self) -> impl Iterator<Item = Transition> + '_ {
        self.out.iter().enumerate().flat_map(|(from, outs)| {
            outs.iter()
                .map(move |&(to, rate)| Transition { from, to, rate })
        })
    }

    /// Solves for the stationary distribution with Gauss–Seidel on the
    /// balance equations, using default tolerances.
    ///
    /// # Errors
    ///
    /// [`SolveError::NoConvergence`] if the residual does not drop below
    /// `1e-12` within 100 000 sweeps (reducible or pathological chains).
    pub fn solve(&self) -> Result<Vec<f64>, SolveError> {
        self.solve_with(1e-12, 100_000)
    }

    /// Solves with explicit tolerance and sweep cap. See [`Ctmc::solve`].
    ///
    /// # Errors
    ///
    /// [`SolveError::NoConvergence`] when the residual stays above `tol`.
    pub fn solve_with(&self, tol: f64, max_sweeps: usize) -> Result<Vec<f64>, SolveError> {
        self.solve_with_guess(None, tol, max_sweeps)
    }

    /// [`Ctmc::solve_with`] warm-started from an initial guess for π.
    ///
    /// A guess close to the stationary distribution (e.g. the solution of a
    /// neighboring parameter point, or of a smaller truncation of the same
    /// chain) cuts the sweep count substantially; the converged result
    /// still satisfies the same tolerance as a cold solve. A guess with the
    /// wrong length, non-finite entries, or no positive mass is ignored and
    /// the solve falls back to the uniform start.
    ///
    /// # Errors
    ///
    /// [`SolveError::NoConvergence`] when the residual stays above `tol`.
    pub fn solve_with_guess(
        &self,
        guess: Option<&[f64]>,
        tol: f64,
        max_sweeps: usize,
    ) -> Result<Vec<f64>, SolveError> {
        let n = self.n;
        if n == 1 {
            return Ok(vec![1.0]);
        }
        let mut pi = match guess {
            Some(g)
                if g.len() == n
                    && g.iter().all(|v| v.is_finite() && *v >= 0.0)
                    && g.iter().sum::<f64>() > 0.0 =>
            {
                let total: f64 = g.iter().sum();
                g.iter().map(|v| v / total).collect()
            }
            _ => vec![1.0 / n as f64; n],
        };
        // Damped Gauss–Seidel: the undamped sweep can oscillate on chains
        // with strong same-level cycles (e.g. the shared-bus chain's
        // N_{1,r-1} → N_{0,r} transitions); under-relaxation restores
        // convergence at a modest cost.
        let omega = 0.9;
        for sweep in 0..max_sweeps {
            let mut max_delta = 0.0_f64;
            for j in 0..n {
                if self.out_rate[j] == 0.0 {
                    // A zero-outflow state cannot carry stationary mass in an
                    // irreducible chain; pinning it to zero avoids silently
                    // parking probability on disconnected artifacts.
                    max_delta = max_delta.max(pi[j]);
                    pi[j] = 0.0;
                    continue;
                }
                let inflow: f64 = self.inc[j].iter().map(|&(i, q)| pi[i] * q).sum();
                let next = (1.0 - omega) * pi[j] + omega * inflow / self.out_rate[j];
                max_delta = max_delta.max((next - pi[j]).abs());
                pi[j] = next;
            }
            let total: f64 = pi.iter().sum();
            if total <= 0.0 {
                return Err(SolveError::NoConvergence {
                    iterations: sweep,
                    residual: f64::INFINITY,
                });
            }
            for p in &mut pi {
                *p /= total;
            }
            if max_delta / total < tol {
                return Ok(pi);
            }
        }
        Err(SolveError::NoConvergence {
            iterations: max_sweeps,
            residual: self.balance_residual(&pi),
        })
    }

    /// Solves by dense Gaussian elimination on `πQ = 0` with the
    /// normalization constraint replacing the last column.
    ///
    /// Intended for small chains (n ≲ 500) as a cross-check of
    /// [`Ctmc::solve`].
    ///
    /// # Errors
    ///
    /// [`SolveError::NoConvergence`] if the system is singular beyond the
    /// normalization deficiency (reducible chain).
    pub fn solve_dense(&self) -> Result<Vec<f64>, SolveError> {
        let n = self.n;
        // Build A = Q^T with the last row replaced by all-ones (normalization),
        // solving A x = e_last.
        let mut a = vec![vec![0.0_f64; n]; n];
        for t in self.transitions() {
            a[t.to][t.from] += t.rate;
            a[t.from][t.from] -= t.rate;
        }
        a[n - 1].fill(1.0);
        let mut b = vec![0.0_f64; n];
        b[n - 1] = 1.0;

        // Gaussian elimination with partial pivoting.
        for col in 0..n {
            let pivot = (col..n)
                .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
                .expect("nonempty range");
            if a[pivot][col].abs() < 1e-300 {
                return Err(SolveError::NoConvergence {
                    iterations: 0,
                    residual: f64::INFINITY,
                });
            }
            a.swap(col, pivot);
            b.swap(col, pivot);
            for row in (col + 1)..n {
                let factor = a[row][col] / a[col][col];
                if factor == 0.0 {
                    continue;
                }
                let (upper, lower) = a.split_at_mut(row);
                let pivot_row = &upper[col];
                for (v, p) in lower[0][col..].iter_mut().zip(&pivot_row[col..]) {
                    *v -= factor * p;
                }
                b[row] -= factor * b[col];
            }
        }
        let mut x = vec![0.0_f64; n];
        for row in (0..n).rev() {
            let mut acc = b[row];
            for k in (row + 1)..n {
                acc -= a[row][k] * x[k];
            }
            x[row] = acc / a[row][row];
        }
        // Numerical noise can make tiny entries slightly negative.
        for v in &mut x {
            if *v < 0.0 && *v > -1e-9 {
                *v = 0.0;
            }
        }
        let total: f64 = x.iter().sum();
        for v in &mut x {
            *v /= total;
        }
        Ok(x)
    }

    /// Maximum absolute balance-equation residual of a candidate
    /// distribution — a direct measure of solution quality.
    #[must_use]
    pub fn balance_residual(&self, pi: &[f64]) -> f64 {
        assert_eq!(pi.len(), self.n, "distribution length mismatch");
        (0..self.n)
            .map(|j| {
                let inflow: f64 = self.inc[j].iter().map(|&(i, q)| pi[i] * q).sum();
                (inflow - pi[j] * self.out_rate[j]).abs()
            })
            .fold(0.0, f64::max)
    }

    /// Expected value of `f` under a stationary distribution.
    #[must_use]
    pub fn expectation(&self, pi: &[f64], mut f: impl FnMut(usize) -> f64) -> f64 {
        assert_eq!(pi.len(), self.n, "distribution length mismatch");
        pi.iter().enumerate().map(|(s, &p)| p * f(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Birth-death chain helper: M/M/1/K with K+1 states.
    fn mm1k(lambda: f64, mu: f64, k: usize) -> Ctmc {
        let mut c = Ctmc::new(k + 1);
        for s in 0..k {
            c.add(s, s + 1, lambda);
            c.add(s + 1, s, mu);
        }
        c
    }

    #[test]
    fn two_state_chain_exact() {
        let mut c = Ctmc::new(2);
        c.add(0, 1, 3.0);
        c.add(1, 0, 1.0);
        let pi = c.solve().expect("converges");
        assert!((pi[0] - 0.25).abs() < 1e-10);
        assert!((pi[1] - 0.75).abs() < 1e-10);
        assert!(c.balance_residual(&pi) < 1e-10);
    }

    #[test]
    fn mm1k_matches_geometric_form() {
        let (lambda, mu, k) = (0.8, 1.0, 20);
        let c = mm1k(lambda, mu, k);
        let pi = c.solve().expect("converges");
        let rho: f64 = lambda / mu;
        let norm: f64 = (0..=k).map(|i| rho.powi(i as i32)).sum();
        for (i, &p) in pi.iter().enumerate() {
            let expect = rho.powi(i as i32) / norm;
            assert!((p - expect).abs() < 1e-9, "state {i}: {p} vs {expect}");
        }
    }

    #[test]
    fn dense_and_iterative_agree() {
        let c = mm1k(1.3, 1.0, 15); // overloaded truncated queue still has a steady state
        let a = c.solve().expect("gs");
        let b = c.solve_dense().expect("dense");
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    #[test]
    fn distribution_sums_to_one() {
        let c = mm1k(0.5, 1.0, 30);
        let pi = c.solve().expect("converges");
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(pi.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn expectation_computes_mean_queue() {
        let c = mm1k(0.5, 1.0, 60);
        let pi = c.solve().expect("converges");
        let l = c.expectation(&pi, |s| s as f64);
        // Practically M/M/1: L = rho/(1-rho) = 1.
        assert!((l - 1.0).abs() < 1e-6, "L = {l}");
    }

    #[test]
    fn transitions_iterator_roundtrips() {
        let mut c = Ctmc::new(3);
        c.add(0, 1, 1.0);
        c.add(1, 2, 2.0);
        c.add(2, 0, 3.0);
        let ts: Vec<Transition> = c.transitions().collect();
        assert_eq!(ts.len(), 3);
        assert!(ts.contains(&Transition {
            from: 1,
            to: 2,
            rate: 2.0
        }));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        Ctmc::new(2).add(1, 1, 1.0);
    }

    #[test]
    fn single_state_chain() {
        let c = Ctmc::new(1);
        assert_eq!(c.solve().expect("trivial"), vec![1.0]);
    }

    #[test]
    fn three_state_cycle_asymmetric() {
        // 0->1 (1), 1->2 (2), 2->0 (4): pi ∝ (1/out) along cycle flow:
        // flow f equal on all edges => pi_i = f/rate_i => pi ∝ (1, 1/2, 1/4).
        let mut c = Ctmc::new(3);
        c.add(0, 1, 1.0);
        c.add(1, 2, 2.0);
        c.add(2, 0, 4.0);
        let pi = c.solve().expect("converges");
        assert!((pi[0] - 4.0 / 7.0).abs() < 1e-9);
        assert!((pi[1] - 2.0 / 7.0).abs() < 1e-9);
        assert!((pi[2] - 1.0 / 7.0).abs() < 1e-9);
    }
}
