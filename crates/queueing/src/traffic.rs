//! Traffic-intensity conventions used on the paper's figures.
//!
//! All delay figures in the paper are plotted against the traffic intensity
//! of a *hypothetical reference system*: a single bus of service rate
//! `p·µ_n` feeding a single resource of service rate `R·µ_s`, where `p` is
//! the total processor count and `R` the total resource count. That is
//!
//! ```text
//! ρ = pλ · ( 1/(p·µ_n) + 1/(R·µ_s) )
//! ```
//!
//! so different configurations of the *same* hardware can be compared at
//! equal offered load.

/// The reference traffic intensity `ρ = pλ(1/(pµ_n) + 1/(Rµ_s))`.
///
/// # Panics
///
/// Panics if any count is zero or any rate is non-positive.
///
/// # Examples
///
/// ```
/// use rsin_queueing::traffic::reference_intensity;
///
/// // The paper's 16-processor, 32-resource system.
/// let rho = reference_intensity(16, 32, 0.4, 1.0, 0.1);
/// assert!((rho - (16.0 * 0.4) * (1.0 / 16.0 + 1.0 / 3.2)).abs() < 1e-12);
/// ```
#[must_use]
pub fn reference_intensity(p: u32, total_resources: u32, lambda: f64, mu_n: f64, mu_s: f64) -> f64 {
    assert!(p > 0 && total_resources > 0, "counts must be positive");
    assert!(
        lambda > 0.0 && mu_n > 0.0 && mu_s > 0.0,
        "rates must be positive"
    );
    let pl = p as f64 * lambda;
    pl * (1.0 / (p as f64 * mu_n) + 1.0 / (total_resources as f64 * mu_s))
}

/// Inverts [`reference_intensity`]: the per-processor arrival rate that
/// produces reference intensity `rho`.
///
/// # Panics
///
/// Panics if any count is zero, any rate is non-positive, or `rho <= 0`.
///
/// # Examples
///
/// ```
/// use rsin_queueing::traffic::{lambda_for_intensity, reference_intensity};
///
/// let lambda = lambda_for_intensity(16, 32, 0.7, 1.0, 0.1);
/// let rho = reference_intensity(16, 32, lambda, 1.0, 0.1);
/// assert!((rho - 0.7).abs() < 1e-12);
/// ```
#[must_use]
pub fn lambda_for_intensity(p: u32, total_resources: u32, rho: f64, mu_n: f64, mu_s: f64) -> f64 {
    assert!(p > 0 && total_resources > 0, "counts must be positive");
    assert!(mu_n > 0.0 && mu_s > 0.0, "rates must be positive");
    assert!(rho > 0.0, "intensity must be positive");
    let denom = 1.0 / (p as f64 * mu_n) + 1.0 / (total_resources as f64 * mu_s);
    rho / (p as f64 * denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_identity() {
        for rho in [0.1, 0.5, 0.9] {
            let lambda = lambda_for_intensity(16, 32, rho, 1.0, 1.0);
            assert!((reference_intensity(16, 32, lambda, 1.0, 1.0) - rho).abs() < 1e-12);
        }
    }

    #[test]
    fn matches_paper_formula() {
        // rho_s = 16λ(1/(16µ_n) + 1/(32µ_s)) for the paper's system.
        let (lambda, mu_n, mu_s) = (0.2, 1.0, 0.1);
        let rho = reference_intensity(16, 32, lambda, mu_n, mu_s);
        let by_hand = 16.0 * lambda * (1.0 / (16.0 * mu_n) + 1.0 / (32.0 * mu_s));
        assert!((rho - by_hand).abs() < 1e-12);
    }

    #[test]
    fn intensity_scales_linearly_with_lambda() {
        let r1 = reference_intensity(8, 8, 0.1, 1.0, 1.0);
        let r2 = reference_intensity(8, 8, 0.2, 1.0, 1.0);
        assert!((r2 - 2.0 * r1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_processors_rejected() {
        let _ = reference_intensity(0, 1, 1.0, 1.0, 1.0);
    }
}
