//! Light- and heavy-load approximations for multiple shared buses
//! (Section IV of the paper).
//!
//! An exact Markov analysis of a `p × m` crossbar with `r` resources per bus
//! needs `(r+1)^m` states per stage, so the paper approximates:
//!
//! * **Light load** — each processor behaves as if alone: the crossbar looks
//!   like a *private* bus to all `m·r` resources (accurate for `µ_s·d ≤ 1`).
//! * **Heavy load** — the buses partition among the processors: with
//!   `p ≥ m`, `p/m` processors share a single bus with `r` resources; with
//!   `m > p`, each processor owns `m/p` buses and `m·r/p` resources but
//!   (transmitting one task at a time) gains nothing over a single private
//!   bus to `m·r/p` resources.

use crate::error::SolveError;
use crate::sbus::{SharedBusChain, SharedBusParams, SharedBusSolution};

/// Parameters of a multiple-shared-bus (crossbar) system for approximation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CrossbarParams {
    /// Number of processors `p` (crossbar rows).
    pub processors: u32,
    /// Number of output buses `m` (crossbar columns).
    pub buses: u32,
    /// Resources per bus `r`.
    pub resources_per_bus: u32,
    /// Per-processor arrival rate `λ`.
    pub lambda: f64,
    /// Transmission rate `µ_n`.
    pub mu_n: f64,
    /// Service rate `µ_s`.
    pub mu_s: f64,
}

impl CrossbarParams {
    fn validate(&self) -> Result<(), SolveError> {
        if self.processors == 0 || self.buses == 0 || self.resources_per_bus == 0 {
            return Err(SolveError::BadParameter {
                what: "processors, buses, and resources per bus must be positive",
            });
        }
        Ok(())
    }
}

/// Light-load approximation: one processor with a private path to every
/// resource (`m·r` of them) behind its own port of rate `µ_n`.
///
/// The paper reports this is "very close to the simulation results for
/// `µ_s·d ≤ 1`".
///
/// # Errors
///
/// Propagates parameter and stability errors from the shared-bus chain.
pub fn crossbar_light_load(p: &CrossbarParams) -> Result<SharedBusSolution, SolveError> {
    p.validate()?;
    let total = p
        .buses
        .checked_mul(p.resources_per_bus)
        .ok_or(SolveError::BadParameter {
            what: "total resource count overflows",
        })?;
    let chain = SharedBusChain::new(SharedBusParams {
        processors: 1,
        resources: total.min(512), // beyond a few hundred the M/M/1 limit is exact
        lambda: p.lambda,
        mu_n: p.mu_n,
        mu_s: p.mu_s,
    })?;
    chain.solve()
}

/// Heavy-load approximation: the buses partition among the processors.
///
/// * `p ≥ m` (and `m` divides `p`): `p/m` processors share one bus with `r`
///   resources.
/// * `m > p` (and `p` divides `m`): one processor with `m·r/p` resources on
///   a private bus.
///
/// # Errors
///
/// [`SolveError::BadParameter`] when neither count divides the other;
/// otherwise propagates errors from the shared-bus chain.
pub fn crossbar_heavy_load(p: &CrossbarParams) -> Result<SharedBusSolution, SolveError> {
    p.validate()?;
    let (procs, resources) = if p.processors >= p.buses {
        if !p.processors.is_multiple_of(p.buses) {
            return Err(SolveError::BadParameter {
                what: "heavy-load partitioning needs m to divide p",
            });
        }
        (p.processors / p.buses, p.resources_per_bus)
    } else {
        if !p.buses.is_multiple_of(p.processors) {
            return Err(SolveError::BadParameter {
                what: "heavy-load partitioning needs p to divide m",
            });
        }
        (1, (p.buses / p.processors) * p.resources_per_bus)
    };
    let chain = SharedBusChain::new(SharedBusParams {
        processors: procs,
        resources,
        lambda: p.lambda,
        mu_n: p.mu_n,
        mu_s: p.mu_s,
    })?;
    chain.solve()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(p: u32, m: u32, r: u32, lambda: f64) -> CrossbarParams {
        CrossbarParams {
            processors: p,
            buses: m,
            resources_per_bus: r,
            lambda,
            mu_n: 1.0,
            mu_s: 0.1,
        }
    }

    #[test]
    fn light_load_bounds_heavy_load() {
        // Under any load, a private view of all resources (light) must be at
        // least as optimistic as the partitioned view (heavy).
        let p = params(16, 4, 8, 0.02);
        let light = crossbar_light_load(&p).expect("light");
        let heavy = crossbar_heavy_load(&p).expect("heavy");
        assert!(light.mean_queue_delay <= heavy.mean_queue_delay + 1e-9);
    }

    #[test]
    fn square_crossbar_heavy_load_is_single_bus_per_processor() -> Result<(), SolveError> {
        let p = params(8, 8, 2, 0.05);
        let heavy = crossbar_heavy_load(&p)?;
        let direct = SharedBusChain::new(SharedBusParams {
            processors: 1,
            resources: 2,
            lambda: 0.05,
            mu_n: 1.0,
            mu_s: 0.1,
        })?
        .solve()?;
        assert!((heavy.mean_queue_delay - direct.mean_queue_delay).abs() < 1e-9);
        Ok(())
    }

    #[test]
    fn wide_crossbar_pools_resources() -> Result<(), SolveError> {
        // m > p: each processor sees m*r/p resources.
        let p = params(2, 8, 1, 0.05);
        let heavy = crossbar_heavy_load(&p)?;
        let direct = SharedBusChain::new(SharedBusParams {
            processors: 1,
            resources: 4,
            lambda: 0.05,
            mu_n: 1.0,
            mu_s: 0.1,
        })?
        .solve()?;
        assert!((heavy.mean_queue_delay - direct.mean_queue_delay).abs() < 1e-9);
        Ok(())
    }

    #[test]
    fn indivisible_partitioning_rejected() {
        let p = params(6, 4, 1, 0.01);
        assert!(matches!(
            crossbar_heavy_load(&p),
            Err(SolveError::BadParameter { .. })
        ));
    }

    #[test]
    fn zero_counts_rejected() {
        let mut p = params(4, 4, 1, 0.01);
        p.buses = 0;
        assert!(crossbar_light_load(&p).is_err());
        assert!(crossbar_heavy_load(&p).is_err());
    }
}
