//! Error types for analytical solvers.

use std::fmt;

/// Errors returned by the analytical queueing solvers.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveError {
    /// The offered load meets or exceeds capacity, so no steady state exists.
    Unstable {
        /// Offered load relative to capacity (≥ 1 means unstable).
        utilization: f64,
    },
    /// An iterative solver failed to reach the requested tolerance.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual at the last iteration.
        residual: f64,
    },
    /// A model parameter was outside its valid domain.
    BadParameter {
        /// Human-readable description of the violated constraint.
        what: &'static str,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Unstable { utilization } => {
                write!(f, "system is unstable: utilization {utilization:.4} >= 1")
            }
            SolveError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "solver did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            SolveError::BadParameter { what } => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SolveError::Unstable { utilization: 1.2 };
        assert!(e.to_string().contains("unstable"));
        let e = SolveError::NoConvergence {
            iterations: 10,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("10"));
        let e = SolveError::BadParameter {
            what: "r must be positive",
        };
        assert!(e.to_string().contains("r must be positive"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(SolveError::Unstable { utilization: 1.0 });
        assert!(!e.to_string().is_empty());
    }
}
