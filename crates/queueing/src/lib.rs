//! # rsin-queueing — analytical models for resource-sharing networks
//!
//! The analytical substrate of the RSIN reproduction (Wah, 1983):
//!
//! - [`Mm1`] and [`Mmr`]: the degenerate limits of the single shared bus
//!   (infinitely many resources → M/M/1 on the bus; instantaneous
//!   transmission → M/M/r on the resources).
//! - [`Ctmc`]: sparse continuous-time Markov chains with Gauss–Seidel and
//!   dense steady-state solvers.
//! - [`SharedBusChain`]: the paper's exact model of a single shared bus
//!   (Section III, Fig. 3) with the stage-recursion solver of eq. (2) and a
//!   truncated full-balance reference solver.
//! - [`approx`]: the light-/heavy-load crossbar approximations of
//!   Section IV.
//! - [`traffic`]: the reference traffic-intensity convention the figures
//!   are plotted against.
//!
//! # Example
//!
//! Reproduce one point of Fig. 4 (16 processors and 32 resources on one
//! shared bus, `µ_s/µ_n = 0.1`, ρ = 0.3 — this configuration saturates its
//! single bus at ρ = 0.375, one of the effects the figure shows):
//!
//! ```
//! use rsin_queueing::{traffic, SharedBusChain, SharedBusParams};
//!
//! let (mu_n, mu_s) = (1.0, 0.1);
//! let lambda = traffic::lambda_for_intensity(16, 32, 0.3, mu_n, mu_s);
//! let chain = SharedBusChain::new(SharedBusParams {
//!     processors: 16,
//!     resources: 32,
//!     lambda,
//!     mu_n,
//!     mu_s,
//! })?;
//! let sol = chain.solve()?;
//! println!("normalized delay = {:.3}", sol.normalized_delay);
//! # Ok::<(), rsin_queueing::SolveError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod approx;
mod cache;
mod error;
mod linalg;
mod markov;
mod mm1;
mod mmr;
pub mod provisioning;
mod sbus;
pub mod traffic;
mod xbar_chain;

pub use cache::{
    shared_bus_cache_stats, solve_shared_bus_cached, solve_shared_bus_chained, CacheStats,
};
pub use error::SolveError;
pub use markov::{Ctmc, Transition};
pub use mm1::Mm1;
pub use mmr::Mmr;
pub use sbus::{SharedBusChain, SharedBusParams, SharedBusSeed, SharedBusSolution};
pub use xbar_chain::{
    SmallCrossbarChain, SmallCrossbarParams, SmallCrossbarSeed, SmallCrossbarSolution,
};
