//! Minimal dense linear algebra for the matrix-geometric solver.
//!
//! Matrices are row-major `Vec<f64>` with explicit dimension; everything here
//! is `pub(crate)` — the public API never exposes these types.

/// Row-major dense matrix.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Mat {
    pub n_rows: usize,
    pub n_cols: usize,
    pub a: Vec<f64>,
}

impl Mat {
    pub(crate) fn zeros(n_rows: usize, n_cols: usize) -> Self {
        Mat {
            n_rows,
            n_cols,
            a: vec![0.0; n_rows * n_cols],
        }
    }

    pub(crate) fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// C = A · B.
    pub(crate) fn mul(&self, b: &Mat) -> Mat {
        assert_eq!(self.n_cols, b.n_rows, "dimension mismatch");
        let mut c = Mat::zeros(self.n_rows, b.n_cols);
        for i in 0..self.n_rows {
            for k in 0..self.n_cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..b.n_cols {
                    c[(i, j)] += aik * b[(k, j)];
                }
            }
        }
        c
    }

    /// y = xᵀ · A for a row vector x.
    pub(crate) fn row_vec_mul(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n_rows, "dimension mismatch");
        let mut y = vec![0.0; self.n_cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for j in 0..self.n_cols {
                y[j] += xi * self[(i, j)];
            }
        }
        y
    }

    /// y = A · x for a column vector x.
    pub(crate) fn mat_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n_cols, "dimension mismatch");
        (0..self.n_rows)
            .map(|i| (0..self.n_cols).map(|j| self[(i, j)] * x[j]).sum())
            .collect()
    }

    pub(crate) fn add(&self, b: &Mat) -> Mat {
        assert_eq!((self.n_rows, self.n_cols), (b.n_rows, b.n_cols));
        let mut c = self.clone();
        for (x, y) in c.a.iter_mut().zip(&b.a) {
            *x += y;
        }
        c
    }

    pub(crate) fn sub(&self, b: &Mat) -> Mat {
        assert_eq!((self.n_rows, self.n_cols), (b.n_rows, b.n_cols));
        let mut c = self.clone();
        for (x, y) in c.a.iter_mut().zip(&b.a) {
            *x -= y;
        }
        c
    }

    pub(crate) fn max_abs_diff(&self, b: &Mat) -> f64 {
        self.a
            .iter()
            .zip(&b.a)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    /// A⁻¹ by Gauss–Jordan with partial pivoting. Returns `None` if singular.
    pub(crate) fn inverse(&self) -> Option<Mat> {
        assert_eq!(self.n_rows, self.n_cols, "inverse of non-square matrix");
        let n = self.n_rows;
        let mut a = self.clone();
        let mut inv = Mat::identity(n);
        for col in 0..n {
            let pivot =
                (col..n).max_by(|&i, &j| a[(i, col)].abs().total_cmp(&a[(j, col)].abs()))?;
            if a[(pivot, col)].abs() < 1e-300 {
                return None;
            }
            for j in 0..n {
                let tmp = a[(col, j)];
                a[(col, j)] = a[(pivot, j)];
                a[(pivot, j)] = tmp;
                let tmp = inv[(col, j)];
                inv[(col, j)] = inv[(pivot, j)];
                inv[(pivot, j)] = tmp;
            }
            let d = a[(col, col)];
            for j in 0..n {
                a[(col, j)] /= d;
                inv[(col, j)] /= d;
            }
            for row in 0..n {
                if row == col {
                    continue;
                }
                let f = a[(row, col)];
                if f == 0.0 {
                    continue;
                }
                for j in 0..n {
                    a[(row, j)] -= f * a[(col, j)];
                    inv[(row, j)] -= f * inv[(col, j)];
                }
            }
        }
        Some(inv)
    }
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.a[i * self.n_cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.a[i * self.n_cols + j]
    }
}

/// Solves the dense square system `A x = b` with partial pivoting.
pub(crate) fn solve_linear(a: &Mat, b: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(a.n_rows, a.n_cols, "system matrix must be square");
    assert_eq!(a.n_rows, b.len(), "rhs length mismatch");
    let n = a.n_rows;
    let mut m = a.clone();
    let mut rhs = b.to_vec();
    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| m[(i, col)].abs().total_cmp(&m[(j, col)].abs()))?;
        if m[(pivot, col)].abs() < 1e-300 {
            return None;
        }
        for j in 0..n {
            let tmp = m[(col, j)];
            m[(col, j)] = m[(pivot, j)];
            m[(pivot, j)] = tmp;
        }
        rhs.swap(col, pivot);
        for row in (col + 1)..n {
            let f = m[(row, col)] / m[(col, col)];
            if f == 0.0 {
                continue;
            }
            for j in col..n {
                m[(row, j)] -= f * m[(col, j)];
            }
            rhs[row] -= f * rhs[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for j in (row + 1)..n {
            acc -= m[(row, j)] * x[j];
        }
        x[row] = acc / m[(row, row)];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiply_and_identity() {
        let mut a = Mat::zeros(2, 2);
        a[(0, 0)] = 1.0;
        a[(0, 1)] = 2.0;
        a[(1, 0)] = 3.0;
        a[(1, 1)] = 4.0;
        let i = Mat::identity(2);
        assert_eq!(a.mul(&i), a);
        let sq = a.mul(&a);
        assert_eq!(sq[(0, 0)], 7.0);
        assert_eq!(sq[(1, 1)], 22.0);
    }

    #[test]
    fn inverse_roundtrips() {
        let mut a = Mat::zeros(3, 3);
        let vals = [4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0];
        a.a.copy_from_slice(&vals);
        let inv = a.inverse().expect("nonsingular");
        let prod = a.mul(&inv);
        assert!(prod.max_abs_diff(&Mat::identity(3)) < 1e-12);
    }

    #[test]
    fn singular_matrix_detected() {
        let mut a = Mat::zeros(2, 2);
        a[(0, 0)] = 1.0;
        a[(0, 1)] = 2.0;
        a[(1, 0)] = 2.0;
        a[(1, 1)] = 4.0;
        assert!(a.inverse().is_none());
        assert!(solve_linear(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn linear_solve_matches_hand_computation() {
        let mut a = Mat::zeros(2, 2);
        a[(0, 0)] = 2.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(1, 1)] = 3.0;
        let x = solve_linear(&a, &[5.0, 10.0]).expect("solvable");
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn row_and_col_vector_products() {
        let mut a = Mat::zeros(2, 3);
        for (k, v) in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0].iter().enumerate() {
            a.a[k] = *v;
        }
        assert_eq!(a.row_vec_mul(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
        assert_eq!(a.mat_vec(&[1.0, 0.0, 1.0]), vec![4.0, 10.0]);
    }

    #[test]
    fn add_sub_are_elementwise() {
        let a = Mat::identity(2);
        let b = Mat::identity(2);
        assert_eq!(a.add(&b)[(0, 0)], 2.0);
        assert_eq!(a.sub(&b)[(1, 1)], 0.0);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }
}
