//! The M/M/r multi-server queue (Erlang delay system).
//!
//! The paper's other degenerate shared-bus limit: when the task transmission
//! time is negligible (`µ_n ≫ µ_s`), the bus never constrains the system and
//! a bus with `r` resources behaves as an M/M/r queue on the resources
//! (Section III).

use crate::error::SolveError;

/// Closed-form metrics of an M/M/r queue.
///
/// # Examples
///
/// ```
/// use rsin_queueing::Mmr;
///
/// let q = Mmr::new(1.5, 1.0, 2)?;
/// assert!(q.erlang_c() > 0.0 && q.erlang_c() < 1.0);
/// # Ok::<(), rsin_queueing::SolveError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mmr {
    lambda: f64,
    mu: f64,
    servers: u32,
}

impl Mmr {
    /// Creates an M/M/r model: arrival rate `lambda`, per-server rate `mu`,
    /// `servers` parallel servers.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::BadParameter`] for non-positive parameters and
    /// [`SolveError::Unstable`] when `lambda >= servers * mu`.
    pub fn new(lambda: f64, mu: f64, servers: u32) -> Result<Self, SolveError> {
        if servers == 0 {
            return Err(SolveError::BadParameter {
                what: "server count must be positive",
            });
        }
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(SolveError::BadParameter {
                what: "arrival rate must be positive and finite",
            });
        }
        if !(mu.is_finite() && mu > 0.0) {
            return Err(SolveError::BadParameter {
                what: "service rate must be positive and finite",
            });
        }
        let util = lambda / (servers as f64 * mu);
        if util >= 1.0 {
            return Err(SolveError::Unstable { utilization: util });
        }
        Ok(Mmr {
            lambda,
            mu,
            servers,
        })
    }

    /// Offered load in Erlangs, a = λ/µ.
    #[must_use]
    pub fn offered_load(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Per-server utilization ρ = λ/(rµ).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.lambda / (self.servers as f64 * self.mu)
    }

    /// Erlang-B blocking probability of the associated loss system.
    ///
    /// Computed with the numerically stable recurrence
    /// `B(0) = 1; B(k) = aB(k−1) / (k + aB(k−1))`.
    #[must_use]
    pub fn erlang_b(&self) -> f64 {
        let a = self.offered_load();
        let mut b = 1.0;
        for k in 1..=self.servers {
            b = a * b / (k as f64 + a * b);
        }
        b
    }

    /// Erlang-C probability that an arrival must wait (all servers busy).
    #[must_use]
    pub fn erlang_c(&self) -> f64 {
        let rho = self.utilization();
        let b = self.erlang_b();
        b / (1.0 - rho * (1.0 - b))
    }

    /// Mean waiting time in queue, W_q = C / (rµ − λ).
    #[must_use]
    pub fn mean_wait_in_queue(&self) -> f64 {
        self.erlang_c() / (self.servers as f64 * self.mu - self.lambda)
    }

    /// Mean number waiting in queue (Little's law on W_q).
    #[must_use]
    pub fn mean_in_queue(&self) -> f64 {
        self.lambda * self.mean_wait_in_queue()
    }

    /// Mean time in system, W = W_q + 1/µ.
    #[must_use]
    pub fn mean_time_in_system(&self) -> f64 {
        self.mean_wait_in_queue() + 1.0 / self.mu
    }

    /// Mean number in system (Little's law on W).
    #[must_use]
    pub fn mean_in_system(&self) -> f64 {
        self.lambda * self.mean_time_in_system()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mm1::Mm1;

    #[test]
    fn reduces_to_mm1_for_one_server() {
        let r = Mmr::new(0.6, 1.0, 1).expect("stable");
        let q = Mm1::new(0.6, 1.0).expect("stable");
        assert!((r.mean_wait_in_queue() - q.mean_wait_in_queue()).abs() < 1e-12);
        assert!((r.erlang_c() - q.utilization()).abs() < 1e-12);
        assert!((r.mean_in_system() - q.mean_in_system()).abs() < 1e-12);
    }

    #[test]
    fn erlang_b_textbook_value() {
        // a = 2 Erlangs over 3 servers: B = (8/6)/(1 + 2 + 2 + 8/6) = 0.2105...
        let q = Mmr::new(2.0, 1.0, 3).expect("stable");
        assert!((q.erlang_b() - 4.0 / 19.0).abs() < 1e-12);
    }

    #[test]
    fn erlang_c_textbook_value() {
        // M/M/2 with rho = 0.75: C = rho_b form; known value 0.6428571...
        let q = Mmr::new(1.5, 1.0, 2).expect("stable");
        let c = q.erlang_c();
        assert!((c - 0.642_857_142_857).abs() < 1e-9, "C = {c}");
    }

    #[test]
    fn more_servers_means_less_waiting() {
        let w2 = Mmr::new(1.5, 1.0, 2).expect("ok").mean_wait_in_queue();
        let w4 = Mmr::new(1.5, 1.0, 4).expect("ok").mean_wait_in_queue();
        let w8 = Mmr::new(1.5, 1.0, 8).expect("ok").mean_wait_in_queue();
        assert!(w2 > w4 && w4 > w8);
    }

    #[test]
    fn littles_law_holds() {
        let q = Mmr::new(3.0, 1.0, 5).expect("stable");
        assert!((q.mean_in_queue() - 3.0 * q.mean_wait_in_queue()).abs() < 1e-12);
        assert!((q.mean_in_system() - 3.0 * q.mean_time_in_system()).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(matches!(
            Mmr::new(2.0, 1.0, 2),
            Err(SolveError::Unstable { .. })
        ));
        assert!(matches!(
            Mmr::new(1.0, 1.0, 0),
            Err(SolveError::BadParameter { .. })
        ));
    }
}
