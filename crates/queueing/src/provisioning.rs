//! Configuration design: sizing a shared-bus system to a delay target.
//!
//! The paper frames its results as a designer's guide ("the performance
//! results we have obtained can guide the designers in selecting the
//! appropriate configuration") and cites Briggs et al.'s PUMPS throughput
//! analysis for choosing resource counts. This module answers the two
//! concrete sizing questions the exact chain makes cheap:
//!
//! * the **fewest resources** per bus that meet a normalized-delay target;
//! * the **fewest partitions** of a processor pool that meet the target with
//!   a fixed total resource budget.

use crate::cache::solve_shared_bus_cached;
use crate::error::SolveError;
use crate::mm1::Mm1;
use crate::sbus::SharedBusParams;

/// Result of a sizing search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sizing {
    /// The chosen parameter (resources per bus, or partitions).
    pub chosen: u32,
    /// Normalized delay achieved at the chosen size.
    pub achieved: f64,
}

/// Finds the smallest `r` (resources on one bus of `processors`) whose
/// normalized queueing delay is at most `target`, searching `1..=max_r`.
///
/// # Errors
///
/// [`SolveError::BadParameter`] if no `r ≤ max_r` meets the target (the bus
/// itself may be the bottleneck, in which case adding resources cannot
/// help — the Fig. 5 regime).
pub fn min_resources_for_delay(
    processors: u32,
    lambda: f64,
    mu_n: f64,
    mu_s: f64,
    target: f64,
    max_r: u32,
) -> Result<Sizing, SolveError> {
    if !(target.is_finite() && target > 0.0) {
        return Err(SolveError::BadParameter {
            what: "delay target must be positive",
        });
    }
    // Fast infeasibility check: with infinitely many resources the bus is an
    // M/M/1 queue, a lower bound on delay for every finite r. If even that
    // misses the target, no resource count can help (the Fig. 5 regime).
    match Mm1::new(processors as f64 * lambda, mu_n) {
        Ok(bus) => {
            if bus.mean_wait_in_queue() * mu_s > target {
                return Err(SolveError::BadParameter {
                    what: "the bus alone exceeds the delay target; add buses, not resources",
                });
            }
        }
        Err(_) => {
            return Err(SolveError::BadParameter {
                what: "the bus is saturated; no resource count can stabilize it",
            });
        }
    }
    for r in 1..=max_r {
        // The cached solve makes repeated searches over overlapping ranges
        // (and the figure/table paths hitting the same points) free.
        let sol = match solve_shared_bus_cached(SharedBusParams {
            processors,
            resources: r,
            lambda,
            mu_n,
            mu_s,
        }) {
            Ok(sol) => sol,
            Err(SolveError::Unstable { .. }) => continue,
            Err(e) => return Err(e),
        };
        if sol.normalized_delay <= target {
            return Ok(Sizing {
                chosen: r,
                achieved: sol.normalized_delay,
            });
        }
    }
    Err(SolveError::BadParameter {
        what: "no resource count within the budget meets the delay target",
    })
}

/// Finds the smallest number of equal partitions of `processors` processors
/// and `total_resources` resources (both must divide evenly) whose
/// normalized delay meets `target`.
///
/// # Errors
///
/// [`SolveError::BadParameter`] if no divisor configuration meets the
/// target.
pub fn min_partitions_for_delay(
    processors: u32,
    total_resources: u32,
    lambda: f64,
    mu_n: f64,
    mu_s: f64,
    target: f64,
) -> Result<Sizing, SolveError> {
    if !(target.is_finite() && target > 0.0) {
        return Err(SolveError::BadParameter {
            what: "delay target must be positive",
        });
    }
    for parts in 1..=processors {
        if !processors.is_multiple_of(parts) || !total_resources.is_multiple_of(parts) {
            continue;
        }
        let sol = match solve_shared_bus_cached(SharedBusParams {
            processors: processors / parts,
            resources: total_resources / parts,
            lambda,
            mu_n,
            mu_s,
        }) {
            Ok(sol) => sol,
            Err(SolveError::Unstable { .. }) => continue,
            Err(e) => return Err(e),
        };
        if sol.normalized_delay <= target {
            return Ok(Sizing {
                chosen: parts,
                achieved: sol.normalized_delay,
            });
        }
    }
    Err(SolveError::BadParameter {
        what: "no partitioning meets the delay target",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sbus::SharedBusChain;

    #[test]
    fn more_demanding_targets_need_more_resources() {
        let (p, lam, mu_n, mu_s) = (1, 0.8, 10.0, 1.0);
        let loose = min_resources_for_delay(p, lam, mu_n, mu_s, 0.5, 32).expect("feasible");
        let tight = min_resources_for_delay(p, lam, mu_n, mu_s, 0.05, 32).expect("feasible");
        assert!(tight.chosen >= loose.chosen);
        assert!(tight.achieved <= 0.05);
        assert!(loose.achieved <= 0.5);
    }

    #[test]
    fn sizing_is_minimal() {
        let s = min_resources_for_delay(1, 0.8, 10.0, 1.0, 0.1, 32).expect("feasible");
        assert!(s.chosen >= 1);
        if s.chosen > 1 {
            // One fewer resource must miss the target (or be unstable).
            let worse = SharedBusChain::new(SharedBusParams {
                processors: 1,
                resources: s.chosen - 1,
                lambda: 0.8,
                mu_n: 10.0,
                mu_s: 1.0,
            })
            .and_then(|c| c.solve());
            match worse {
                Ok(sol) => assert!(sol.normalized_delay > 0.1),
                Err(SolveError::Unstable { .. }) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }

    #[test]
    fn bus_bound_targets_are_infeasible() {
        // mu_s/mu_n = 1: the bus saturates; no resource count can push the
        // delay near zero.
        let err = min_resources_for_delay(16, 0.06, 1.0, 1.0, 0.001, 64);
        assert!(matches!(err, Err(SolveError::BadParameter { .. })));
    }

    #[test]
    fn partitioning_search_prefers_fewest_partitions() {
        // 16 processors, 32 resources, ratio 0.1: one partition saturates
        // (the single bus), but a small number of partitions suffices.
        let s = min_partitions_for_delay(16, 32, 0.05, 10.0, 1.0, 0.05).expect("feasible");
        assert!(s.chosen >= 1 && 16 % s.chosen == 0);
        assert!(s.achieved <= 0.05);
    }

    #[test]
    fn rejects_bad_target() {
        assert!(min_resources_for_delay(1, 0.1, 1.0, 1.0, 0.0, 8).is_err());
        assert!(min_partitions_for_delay(4, 8, 0.1, 1.0, 1.0, -1.0).is_err());
    }
}
