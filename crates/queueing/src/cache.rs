//! A keyed cache over the analytic solvers.
//!
//! The figure suite, the provisioning searches, and the Table-II advisor
//! paths all solve the same chains repeatedly — the same `(p, r, λ, µ_n,
//! µ_s)` point shows up in several figures and again in the tables. The
//! cache memoizes [`SharedBusChain::solve`] by exact parameter value
//! (`f64` bit patterns, so keys never alias across distinct inputs) and
//! returns the stored solution verbatim: a cache hit is bit-for-bit the
//! value a fresh chain would produce, making the cache safe for artifact
//! paths that print full-precision floats.

use crate::error::SolveError;
use crate::sbus::{SharedBusChain, SharedBusParams, SharedBusSolution};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Exact-value key: integer fields plus the bit patterns of the rates.
type Key = (u32, u32, u64, u64, u64);

fn key(p: &SharedBusParams) -> Key {
    (
        p.processors,
        p.resources,
        p.lambda.to_bits(),
        p.mu_n.to_bits(),
        p.mu_s.to_bits(),
    )
}

fn cache() -> &'static Mutex<HashMap<Key, Result<SharedBusSolution, SolveError>>> {
    static CACHE: OnceLock<Mutex<HashMap<Key, Result<SharedBusSolution, SolveError>>>> =
        OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Upper bound on retained entries — far above any suite run's working set;
/// purely a leak guard for long-lived processes sweeping huge grids.
const MAX_ENTRIES: usize = 65_536;

/// [`SharedBusChain::new`] + [`SharedBusChain::solve`], memoized process-wide
/// by exact parameter value. Errors (unstable or invalid parameter points)
/// are cached too, so a grid sweep pays for each infeasible point once.
///
/// # Errors
///
/// Exactly the errors of [`SharedBusChain::new`] and
/// [`SharedBusChain::solve`] for these parameters.
pub fn solve_shared_bus_cached(params: SharedBusParams) -> Result<SharedBusSolution, SolveError> {
    let k = key(&params);
    let guard = cache().lock().unwrap_or_else(|p| p.into_inner());
    if let Some(hit) = guard.get(&k) {
        return hit.clone();
    }
    drop(guard);
    // Solve outside the lock: chains are independent and a slow solve must
    // not serialize the parallel suite workers.
    let result = SharedBusChain::new(params).and_then(|c| c.solve());
    let mut guard = cache().lock().unwrap_or_else(|p| p.into_inner());
    if guard.len() >= MAX_ENTRIES {
        guard.clear();
    }
    guard.entry(k).or_insert_with(|| result.clone());
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(lambda: f64) -> SharedBusParams {
        SharedBusParams {
            processors: 4,
            resources: 3,
            lambda,
            mu_n: 1.0,
            mu_s: 0.25,
        }
    }

    #[test]
    fn hit_is_bitwise_identical_to_fresh_solve() {
        let p = params(0.011);
        let fresh = SharedBusChain::new(p).expect("valid").solve().expect("ok");
        let first = solve_shared_bus_cached(p).expect("ok");
        let second = solve_shared_bus_cached(p).expect("ok");
        // PartialEq on the solution compares every f64 field exactly.
        assert_eq!(first, fresh);
        assert_eq!(second, fresh);
    }

    #[test]
    fn errors_are_cached_and_reproduced() {
        let p = SharedBusParams {
            processors: 1,
            resources: 1,
            lambda: 10.0, // far beyond saturation
            mu_n: 1.0,
            mu_s: 1.0,
        };
        let direct = SharedBusChain::new(p).and_then(|c| c.solve());
        let cached = solve_shared_bus_cached(p);
        let again = solve_shared_bus_cached(p);
        assert_eq!(cached, direct);
        assert_eq!(again, direct);
        assert!(cached.is_err());
    }

    #[test]
    fn distinct_params_do_not_alias() {
        let a = solve_shared_bus_cached(params(0.012)).expect("ok");
        let b = solve_shared_bus_cached(params(0.013)).expect("ok");
        assert_ne!(a.mean_queue_delay, b.mean_queue_delay);
    }
}
