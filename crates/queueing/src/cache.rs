//! A keyed, bounded cache over the analytic solvers.
//!
//! The figure suite, the provisioning searches, and the Table-II advisor
//! paths all solve the same chains repeatedly — the same `(p, r, λ, µ_n,
//! µ_s)` point shows up in several figures and again in the tables. The
//! cache memoizes [`SharedBusChain::solve`] by exact parameter value
//! (`f64` bit patterns, so keys never alias across distinct inputs) and
//! returns the stored solution verbatim: a cache hit is bit-for-bit the
//! value a fresh chain would produce, making the cache safe for artifact
//! paths that print full-precision floats.
//!
//! The cache is bounded: a thousands-of-configs provisioning sweep touches
//! far more distinct points than any figure run, so retained entries are
//! capped and the least-recently-used quarter is evicted when the cap is
//! reached. Hit/miss/eviction counters are exposed through
//! [`shared_bus_cache_stats`] so long sweeps can report their reuse rate.

use crate::error::SolveError;
use crate::sbus::{SharedBusChain, SharedBusParams, SharedBusSeed, SharedBusSolution};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Exact-value key: integer fields plus the bit patterns of the rates.
type Key = (u32, u32, u64, u64, u64);

fn key(p: &SharedBusParams) -> Key {
    (
        p.processors,
        p.resources,
        p.lambda.to_bits(),
        p.mu_n.to_bits(),
        p.mu_s.to_bits(),
    )
}

/// One retained solution, stamped with the logical time of its last use.
struct Entry {
    stamp: u64,
    result: Result<SharedBusSolution, SolveError>,
}

/// The cache body plus its bookkeeping, all behind one lock.
struct CacheState {
    map: HashMap<Key, Entry>,
    /// Logical clock: bumped on every lookup, written into the touched
    /// entry's stamp. Recency order, not wall time.
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Counters describing the cache's reuse behavior since process start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a retained solution.
    pub hits: u64,
    /// Lookups that had to run the solver.
    pub misses: u64,
    /// Entries discarded by the LRU bound.
    pub evictions: u64,
    /// Entries currently retained.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none yet).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

fn cache() -> &'static Mutex<CacheState> {
    static CACHE: OnceLock<Mutex<CacheState>> = OnceLock::new();
    CACHE.get_or_init(|| {
        Mutex::new(CacheState {
            map: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        })
    })
}

/// Upper bound on retained entries. Far above any figure run's working set;
/// a provisioning sweep that exceeds it sheds its coldest quarter and keeps
/// going at bounded memory.
const MAX_ENTRIES: usize = 16_384;

/// Evicts the least-recently-used quarter of a full cache. O(n), but runs
/// once per `MAX_ENTRIES/4` insertions, so the amortized cost per insert is
/// constant.
fn evict_lru(state: &mut CacheState) {
    let mut stamps: Vec<u64> = state.map.values().map(|e| e.stamp).collect();
    let cut_index = stamps.len() / 4;
    let (_, &mut cutoff, _) = stamps.select_nth_unstable(cut_index);
    // Everything at or below the cutoff stamp goes (stamps are unique:
    // the clock increments on every touch).
    state.map.retain(|_, e| e.stamp > cutoff);
    state.evictions += (cut_index + 1) as u64;
}

/// [`SharedBusChain::new`] + [`SharedBusChain::solve`], memoized process-wide
/// by exact parameter value with an LRU bound of [`MAX_ENTRIES`] retained
/// solutions. Errors (unstable or invalid parameter points) are cached too,
/// so a grid sweep pays for each infeasible point once.
///
/// # Errors
///
/// Exactly the errors of [`SharedBusChain::new`] and
/// [`SharedBusChain::solve`] for these parameters.
pub fn solve_shared_bus_cached(params: SharedBusParams) -> Result<SharedBusSolution, SolveError> {
    let k = key(&params);
    let mut guard = cache().lock().unwrap_or_else(|p| p.into_inner());
    guard.clock += 1;
    let now = guard.clock;
    if let Some(hit) = guard.map.get_mut(&k) {
        hit.stamp = now;
        let result = hit.result.clone();
        guard.hits += 1;
        return result;
    }
    guard.misses += 1;
    drop(guard);
    // Solve outside the lock: chains are independent and a slow solve must
    // not serialize the parallel suite workers.
    let result = SharedBusChain::new(params).and_then(|c| c.solve());
    let mut guard = cache().lock().unwrap_or_else(|p| p.into_inner());
    if guard.map.len() >= MAX_ENTRIES {
        evict_lru(&mut guard);
    }
    guard.clock += 1;
    let stamp = guard.clock;
    guard.map.entry(k).or_insert_with(|| Entry {
        stamp,
        result: result.clone(),
    });
    result
}

/// [`solve_shared_bus_cached`] with warm-start seed threading for grid
/// sweeps: a hit returns the retained solution (and no new seed — the
/// caller keeps the one it has); a miss solves via
/// [`SharedBusChain::solve_seeded`] and returns the refreshed seed.
///
/// The cache's bit-exactness invariant — a hit is exactly what a fresh
/// [`SharedBusChain::solve`] would return — is preserved by construction:
/// only *cold* solves (no usable seed, a path identical to `solve`) are
/// inserted. Warm results agree with cold ones only to solver tolerance,
/// so they are returned to the caller but never retained.
///
/// # Errors
///
/// Exactly the errors of [`SharedBusChain::new`] and
/// [`SharedBusChain::solve_seeded`] for these parameters.
pub fn solve_shared_bus_chained(
    params: SharedBusParams,
    seed: Option<&SharedBusSeed>,
) -> Result<(SharedBusSolution, Option<SharedBusSeed>), SolveError> {
    let k = key(&params);
    {
        let mut guard = cache().lock().unwrap_or_else(|p| p.into_inner());
        guard.clock += 1;
        let now = guard.clock;
        if let Some(hit) = guard.map.get_mut(&k) {
            hit.stamp = now;
            let result = hit.result.clone();
            guard.hits += 1;
            return result.map(|sol| (sol, None));
        }
        guard.misses += 1;
    }
    let usable = seed.filter(|s| s.seed_resources() == params.resources);
    let solved = SharedBusChain::new(params).and_then(|c| c.solve_seeded(usable));
    if usable.is_none() {
        // Cold path: identical to `solve`, so the solution is safe to retain.
        let to_store = solved.clone().map(|(sol, _)| sol);
        let mut guard = cache().lock().unwrap_or_else(|p| p.into_inner());
        if guard.map.len() >= MAX_ENTRIES {
            evict_lru(&mut guard);
        }
        guard.clock += 1;
        let stamp = guard.clock;
        guard.map.entry(k).or_insert_with(|| Entry {
            stamp,
            result: to_store,
        });
    }
    solved.map(|(sol, next)| (sol, Some(next)))
}

/// A snapshot of the cache's hit/miss/eviction counters and current size.
///
/// Counters are process-wide and monotone; to measure one sweep's reuse,
/// snapshot before and after and difference the fields.
#[must_use]
pub fn shared_bus_cache_stats() -> CacheStats {
    let guard = cache().lock().unwrap_or_else(|p| p.into_inner());
    CacheStats {
        hits: guard.hits,
        misses: guard.misses,
        evictions: guard.evictions,
        entries: guard.map.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(lambda: f64) -> SharedBusParams {
        SharedBusParams {
            processors: 4,
            resources: 3,
            lambda,
            mu_n: 1.0,
            mu_s: 0.25,
        }
    }

    #[test]
    fn hit_is_bitwise_identical_to_fresh_solve() {
        let p = params(0.011);
        let fresh = SharedBusChain::new(p).expect("valid").solve().expect("ok");
        let first = solve_shared_bus_cached(p).expect("ok");
        let second = solve_shared_bus_cached(p).expect("ok");
        // PartialEq on the solution compares every f64 field exactly.
        assert_eq!(first, fresh);
        assert_eq!(second, fresh);
    }

    #[test]
    fn errors_are_cached_and_reproduced() {
        let p = SharedBusParams {
            processors: 1,
            resources: 1,
            lambda: 10.0, // far beyond saturation
            mu_n: 1.0,
            mu_s: 1.0,
        };
        let direct = SharedBusChain::new(p).and_then(|c| c.solve());
        let cached = solve_shared_bus_cached(p);
        let again = solve_shared_bus_cached(p);
        assert_eq!(cached, direct);
        assert_eq!(again, direct);
        assert!(cached.is_err());
    }

    #[test]
    fn distinct_params_do_not_alias() {
        let a = solve_shared_bus_cached(params(0.012)).expect("ok");
        let b = solve_shared_bus_cached(params(0.013)).expect("ok");
        assert_ne!(a.mean_queue_delay, b.mean_queue_delay);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let before = shared_bus_cache_stats();
        let p = params(0.017_171); // unlikely to collide with other tests
        let _ = solve_shared_bus_cached(p);
        let _ = solve_shared_bus_cached(p);
        let after = shared_bus_cache_stats();
        assert!(after.misses > before.misses, "first lookup misses");
        assert!(after.hits > before.hits, "second lookup hits");
        assert!(after.entries >= 1);
        assert!(after.hit_rate() > 0.0);
    }

    #[test]
    fn chained_solves_cache_cold_results_only() {
        // A cold chained solve populates the cache and returns a seed...
        let p0 = params(0.018_131);
        let (cold, seed) = solve_shared_bus_chained(p0, None).expect("ok");
        let seed = seed.expect("cold solve yields a seed");
        assert_eq!(cold, solve_shared_bus_cached(p0).expect("ok"), "retained");
        // ...a hit returns the retained value and no refreshed seed...
        let (hit, none) = solve_shared_bus_chained(p0, Some(&seed)).expect("ok");
        assert_eq!(hit, cold);
        assert!(none.is_none(), "hits keep the caller's seed");
        // ...and a warm miss returns a result but never retains it: the
        // later cache lookup must still produce the fresh cold value.
        let p1 = params(0.018_132);
        let (warm, _) = solve_shared_bus_chained(p1, Some(&seed)).expect("ok");
        let fresh = SharedBusChain::new(p1).expect("valid").solve().expect("ok");
        let cached = solve_shared_bus_cached(p1).expect("ok");
        assert_eq!(cached, fresh, "cache still bit-exact after warm solve");
        assert!((warm.mean_queue_delay - fresh.mean_queue_delay).abs() < 1e-6);
    }

    #[test]
    fn lru_eviction_keeps_the_recently_used_entry() {
        // Exercise the eviction path directly on a private state: fill past
        // the cap, touch one old key, and check the touched key survives the
        // quarter-eviction while the coldest entries go.
        let mut state = CacheState {
            map: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        };
        let sol: Result<SharedBusSolution, SolveError> = Err(SolveError::BadParameter {
            what: "test filler",
        });
        for i in 0..1000u32 {
            state.clock += 1;
            let stamp = state.clock;
            state.map.insert(
                (i, 0, 0, 0, 0),
                Entry {
                    stamp,
                    result: sol.clone(),
                },
            );
        }
        // Touch the very first key so it becomes the most recent.
        state.clock += 1;
        let now = state.clock;
        state.map.get_mut(&(0, 0, 0, 0, 0)).expect("present").stamp = now;
        evict_lru(&mut state);
        assert!(state.map.contains_key(&(0, 0, 0, 0, 0)), "hot key survives");
        assert!(
            !state.map.contains_key(&(1, 0, 0, 0, 0)),
            "coldest key evicted"
        );
        assert_eq!(state.map.len(), 1000 - 251);
        assert_eq!(state.evictions, 251);
    }
}
