//! Exact Markov chain for multiple shared buses with *very small* `m`
//! (Section IV).
//!
//! "A Markovian analysis similar to that of the single bus is difficult due
//! to the extensive number of states. For a system with m buses and r
//! resources on each bus, the number of states in each stage is (r+1)^m.
//! The analysis method shown in the last section can only be applied when m
//! is very small." This module is that analysis: the state is
//!
//! ```text
//! ( ℓ queued , t_1..t_m transmitting flags , s_1..s_m busy resources )
//! ```
//!
//! with `(r+1)^m · 2^m` states per queue level, built on the generic sparse
//! [`Ctmc`](crate::Ctmc) solver with a finite queue cap.
//!
//! One modelling note: the chain pools all queued tasks, i.e. it assumes a
//! queued task may be dispatched to any free bus. That is exact when the
//! queue never holds two tasks of the same processor — a good approximation
//! for `p ≫ m` at moderate load, and exactly the regime the paper's
//! crossbar figures study (p = 16, m ≤ 4 buses per partition). Dispatch is
//! fixed-priority (lowest bus index), matching the hardware's asymmetric
//! wave.

use crate::error::SolveError;
use crate::markov::Ctmc;

/// Parameters of the small-`m` crossbar chain.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SmallCrossbarParams {
    /// Number of processors (sets the aggregate arrival rate `pλ`).
    pub processors: u32,
    /// Number of buses `m` (keep ≤ 3; the state space is `(2(r+1))^m` per
    /// level).
    pub buses: u32,
    /// Resources per bus `r`.
    pub resources_per_bus: u32,
    /// Per-processor arrival rate `λ`.
    pub lambda: f64,
    /// Transmission rate `µ_n`.
    pub mu_n: f64,
    /// Service rate `µ_s`.
    pub mu_s: f64,
}

/// Steady-state metrics of the small-`m` crossbar chain.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SmallCrossbarSolution {
    /// Mean delay from arrival until a bus is granted (the paper's `d`).
    pub mean_queue_delay: f64,
    /// `d · µ_s`.
    pub normalized_delay: f64,
    /// Mean number of queued tasks.
    pub mean_queue_length: f64,
    /// Mean fraction of buses transmitting.
    pub bus_utilization: f64,
    /// Mean fraction of busy resources.
    pub resource_utilization: f64,
    /// Queue levels carried by the truncation.
    pub levels: usize,
}

/// A warm-start seed for [`SmallCrossbarChain::solve_seeded`]: the
/// stationary distribution of a previously solved truncation, plus the
/// state-space shape it was solved on (seeds never transfer across chains
/// with a different per-level structure).
#[derive(Clone, Debug)]
pub struct SmallCrossbarSeed {
    buses: u32,
    resources_per_bus: u32,
    l0_count: usize,
    per_level: usize,
    pi: Vec<f64>,
}

/// The exact chain for `m ∈ {1, 2, 3}` buses.
#[derive(Clone, Copy, Debug)]
pub struct SmallCrossbarChain {
    params: SmallCrossbarParams,
}

impl SmallCrossbarChain {
    /// Validates parameters and builds the model.
    ///
    /// # Errors
    ///
    /// [`SolveError::BadParameter`] for zero counts, non-positive rates, or
    /// `m > 3` (state-space blowup — use simulation, as the paper does);
    /// [`SolveError::Unstable`] when the offered load exceeds the aggregate
    /// bus-pipeline capacity.
    pub fn new(params: SmallCrossbarParams) -> Result<Self, SolveError> {
        if params.processors == 0 || params.buses == 0 || params.resources_per_bus == 0 {
            return Err(SolveError::BadParameter {
                what: "counts must be positive",
            });
        }
        if params.buses > 3 {
            return Err(SolveError::BadParameter {
                what: "the exact chain is only practical for m <= 3 (the paper's point)",
            });
        }
        for (v, what) in [
            (params.lambda, "lambda must be positive and finite"),
            (params.mu_n, "mu_n must be positive and finite"),
            (params.mu_s, "mu_s must be positive and finite"),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(SolveError::BadParameter { what });
            }
        }
        let chain = SmallCrossbarChain { params };
        let cap = chain.saturation_throughput();
        if chain.arrival_rate() >= cap {
            return Err(SolveError::Unstable {
                utilization: chain.arrival_rate() / cap,
            });
        }
        Ok(chain)
    }

    /// Aggregate arrival rate `pλ`.
    #[must_use]
    pub fn arrival_rate(&self) -> f64 {
        self.params.processors as f64 * self.params.lambda
    }

    /// Aggregate saturation throughput: `m` independent bus pipelines.
    #[must_use]
    pub fn saturation_throughput(&self) -> f64 {
        let a = self.params.mu_n / self.params.mu_s;
        let mut b = 1.0;
        for k in 1..=self.params.resources_per_bus {
            b = a * b / (k as f64 + a * b);
        }
        self.params.buses as f64 * self.params.mu_n * (1.0 - b)
    }

    /// Solves the truncated chain, growing the queue cap until the delay
    /// stabilizes. Every truncation is solved cold; this is the library's
    /// reference path (see [`SmallCrossbarChain::solve_seeded`] for the
    /// warm-started one).
    ///
    /// # Errors
    ///
    /// Propagates solver errors; [`SolveError::NoConvergence`] if the delay
    /// never stabilizes within the level budget.
    pub fn solve(&self) -> Result<SmallCrossbarSolution, SolveError> {
        let mut levels = 24usize;
        let mut last: Option<SmallCrossbarSolution> = None;
        while levels <= 1536 {
            let sol = self.solve_truncated(levels)?;
            if let Some(prev) = last {
                let diff = (sol.mean_queue_delay - prev.mean_queue_delay).abs();
                // Stabilized when the doubling changes d by less than either
                // a relative 1e-6 or the iterative solver's own absolute
                // noise floor.
                if diff < 1e-6 * sol.mean_queue_delay.max(1e-300) || diff < 1e-10 {
                    return Ok(sol);
                }
            }
            last = Some(sol);
            levels *= 2;
        }
        Err(SolveError::NoConvergence {
            iterations: 1536,
            residual: f64::NAN,
        })
    }

    /// [`SmallCrossbarChain::solve`] warm-started: each truncation's
    /// Gauss–Seidel solve is seeded with the previous (smaller) truncation's
    /// π — a smaller truncation's states are exactly a prefix of a larger
    /// one's numbering — and the first truncation with `seed` when given
    /// (e.g. the solution of a neighboring rho-grid point). The growth
    /// ladder and stopping rule match [`SmallCrossbarChain::solve`], so the
    /// result agrees with the cold solve up to the CTMC solver's `1e-12`
    /// convergence noise.
    ///
    /// Returns the solution together with a seed for the next solve. A seed
    /// from a chain of a different shape is ignored.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SmallCrossbarChain::solve`].
    pub fn solve_seeded(
        &self,
        seed: Option<&SmallCrossbarSeed>,
    ) -> Result<(SmallCrossbarSolution, SmallCrossbarSeed), SolveError> {
        let mut levels = 24usize;
        let mut last: Option<(SmallCrossbarSolution, SmallCrossbarSeed)> = None;
        while levels <= 1536 {
            let (sol, new_seed) = {
                let prev_seed = last.as_ref().map(|(_, s)| s).or(seed);
                self.solve_truncated_inner(levels, prev_seed)?
            };
            if let Some((prev, _)) = &last {
                let diff = (sol.mean_queue_delay - prev.mean_queue_delay).abs();
                if diff < 1e-6 * sol.mean_queue_delay.max(1e-300) || diff < 1e-10 {
                    return Ok((sol, new_seed));
                }
            }
            last = Some((sol, new_seed));
            levels *= 2;
        }
        Err(SolveError::NoConvergence {
            iterations: 1536,
            residual: f64::NAN,
        })
    }

    /// Solves with a fixed queue cap.
    ///
    /// # Errors
    ///
    /// Propagates [`SolveError::NoConvergence`] from the CTMC solver.
    pub fn solve_truncated(&self, levels: usize) -> Result<SmallCrossbarSolution, SolveError> {
        self.solve_truncated_inner(levels, None).map(|(sol, _)| sol)
    }

    fn solve_truncated_inner(
        &self,
        levels: usize,
        seed: Option<&SmallCrossbarSeed>,
    ) -> Result<(SmallCrossbarSolution, SmallCrossbarSeed), SolveError> {
        let m = self.params.buses as usize;
        let r = self.params.resources_per_bus as usize;
        let lam = self.arrival_rate();
        let (mu_n, mu_s) = (self.params.mu_n, self.params.mu_s);

        // Enumerate only the *reachable* states. Two structural facts prune
        // the naive (2(r+1))^m product: a transmitting bus always has a free
        // resource reserved (t_j ⇒ s_j < r), and a nonempty queue coexists
        // only with "no bus dispatchable" (dispatch opportunities are
        // consumed the instant they appear). Without this pruning the
        // truncated chain acquires disconnected zero-outflow states and the
        // balance system turns singular.
        let mut subs: Vec<(Vec<bool>, Vec<usize>)> = Vec::new();
        {
            let mut t = vec![false; m];
            let mut s_vec = vec![0usize; m];
            loop {
                if (0..m).all(|j| !t[j] || s_vec[j] < r) {
                    subs.push((t.clone(), s_vec.clone()));
                }
                // Mixed-radix increment over (t_j, s_j).
                let mut j = 0;
                loop {
                    if j == m {
                        break;
                    }
                    if !t[j] {
                        t[j] = true;
                        break;
                    }
                    t[j] = false;
                    if s_vec[j] < r {
                        s_vec[j] += 1;
                        break;
                    }
                    s_vec[j] = 0;
                    j += 1;
                }
                if j == m {
                    break;
                }
            }
        }
        // Fixed-priority dispatch: the first bus that is idle with a free
        // resource.
        let dispatch =
            |t: &[bool], s: &[usize]| -> Option<usize> { (0..m).find(|&j| !t[j] && s[j] < r) };
        let queue_ok: Vec<bool> = subs.iter().map(|(t, s)| dispatch(t, s).is_none()).collect();
        let key = |t: &[bool], s: &[usize]| -> u64 {
            let mut k = 0u64;
            for j in 0..m {
                k = k * 2 * (r as u64 + 1) + (s[j] as u64 * 2 + u64::from(t[j]));
            }
            k
        };
        let sub_index: std::collections::HashMap<u64, usize> = subs
            .iter()
            .enumerate()
            .map(|(i, (t, s))| (key(t, s), i))
            .collect();
        // Dense state numbering: level-0 states first (all subs), then for
        // each level ≥ 1 only the queue-compatible subs.
        let l0_count = subs.len();
        let queued_subs: Vec<usize> = (0..subs.len()).filter(|&i| queue_ok[i]).collect();
        let queued_pos: std::collections::HashMap<usize, usize> = queued_subs
            .iter()
            .enumerate()
            .map(|(pos, &i)| (i, pos))
            .collect();
        let per_level = queued_subs.len();
        let n_states = l0_count + levels * per_level;
        let idx = |l: usize, sub: usize| -> usize {
            if l == 0 {
                sub
            } else {
                l0_count + (l - 1) * per_level + queued_pos[&sub]
            }
        };

        let mut c = Ctmc::new(n_states);
        for l in 0..=levels {
            for (sub, (t, s)) in subs.iter().enumerate() {
                if l > 0 && !queue_ok[sub] {
                    continue;
                }
                // Arrival.
                if l == 0 {
                    if let Some(j) = dispatch(t, s) {
                        let mut t2 = t.clone();
                        t2[j] = true;
                        c.add(idx(0, sub), idx(0, sub_index[&key(&t2, s)]), lam);
                    } else {
                        c.add(idx(0, sub), idx(1, sub), lam);
                    }
                } else if l < levels {
                    c.add(idx(l, sub), idx(l + 1, sub), lam);
                }
                for j in 0..m {
                    // Transmission completion on bus j.
                    if t[j] {
                        let mut t2 = t.clone();
                        let mut s2 = s.clone();
                        t2[j] = false;
                        s2[j] += 1;
                        let (l2, sub2) = if l > 0 {
                            match dispatch(&t2, &s2) {
                                Some(k) => {
                                    let mut t3 = t2.clone();
                                    t3[k] = true;
                                    (l - 1, sub_index[&key(&t3, &s2)])
                                }
                                None => (l, sub_index[&key(&t2, &s2)]),
                            }
                        } else {
                            (0, sub_index[&key(&t2, &s2)])
                        };
                        c.add(idx(l, sub), idx(l2, sub2), mu_n);
                    }
                    // Service completion on bus j.
                    if s[j] > 0 {
                        let mut s2 = s.clone();
                        s2[j] -= 1;
                        let (l2, sub2) = if l > 0 && !t[j] {
                            // The freed resource makes bus j dispatchable.
                            let mut t2 = t.clone();
                            t2[j] = true;
                            (l - 1, sub_index[&key(&t2, &s2)])
                        } else {
                            (l, sub_index[&key(t, &s2)])
                        };
                        c.add(idx(l, sub), idx(l2, sub2), s[j] as f64 * mu_s);
                    }
                }
            }
        }

        // A seed from a smaller truncation of the same chain maps onto the
        // prefix of this one's state numbering (level-0 subs first, then the
        // queued subs per level); the missing tail levels start at zero. The
        // shape is checked alongside the counts: distinct `m × r` shapes
        // (e.g. 2×2 and 3×1) can coincide in state-space dimensions while
        // numbering entirely different states.
        let guess: Option<Vec<f64>> = seed
            .filter(|s| {
                s.buses == self.params.buses
                    && s.resources_per_bus == self.params.resources_per_bus
                    && s.l0_count == l0_count
                    && s.per_level == per_level
            })
            .map(|s| {
                let mut g = vec![0.0_f64; n_states];
                let shared = s.pi.len().min(n_states);
                g[..shared].copy_from_slice(&s.pi[..shared]);
                g
            });
        let pi = c.solve_with_guess(guess.as_deref(), 1e-12, 100_000)?;
        let mut mean_queue = 0.0;
        let mut buses_busy = 0.0;
        let mut res_busy = 0.0;
        for l in 0..=levels {
            for (sub, (t, s)) in subs.iter().enumerate() {
                if l > 0 && !queue_ok[sub] {
                    continue;
                }
                let p = pi[idx(l, sub)];
                if p == 0.0 {
                    continue;
                }
                mean_queue += l as f64 * p;
                buses_busy += p * t.iter().filter(|&&b| b).count() as f64;
                res_busy += p * s.iter().sum::<usize>() as f64;
            }
        }
        let d = mean_queue / lam;
        let sol = SmallCrossbarSolution {
            mean_queue_delay: d,
            normalized_delay: d * mu_s,
            mean_queue_length: mean_queue,
            bus_utilization: buses_busy / m as f64,
            resource_utilization: res_busy / (m * r) as f64,
            levels,
        };
        Ok((
            sol,
            SmallCrossbarSeed {
                buses: self.params.buses,
                resources_per_bus: self.params.resources_per_bus,
                l0_count,
                per_level,
                pi,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sbus::{SharedBusChain, SharedBusParams};

    #[test]
    fn m_equals_one_reduces_to_shared_bus_chain() {
        for (p, r, lam, mu_n, mu_s) in [(4, 2, 0.05, 1.0, 0.5), (8, 3, 0.02, 1.0, 0.2)] {
            let xc = SmallCrossbarChain::new(SmallCrossbarParams {
                processors: p,
                buses: 1,
                resources_per_bus: r,
                lambda: lam,
                mu_n,
                mu_s,
            })
            .expect("stable")
            .solve()
            .expect("solves");
            let sb = SharedBusChain::new(SharedBusParams {
                processors: p,
                resources: r,
                lambda: lam,
                mu_n,
                mu_s,
            })
            .expect("stable")
            .solve()
            .expect("solves");
            let rel =
                (xc.mean_queue_delay - sb.mean_queue_delay).abs() / sb.mean_queue_delay.max(1e-12);
            assert!(
                rel < 1e-6,
                "m=1 crossbar {} vs shared bus {}",
                xc.mean_queue_delay,
                sb.mean_queue_delay
            );
        }
    }

    #[test]
    fn two_buses_beat_one_at_equal_total_resources() {
        let one = SmallCrossbarChain::new(SmallCrossbarParams {
            processors: 8,
            buses: 1,
            resources_per_bus: 4,
            lambda: 0.08,
            mu_n: 1.0,
            mu_s: 1.0,
        })
        .expect("stable")
        .solve()
        .expect("solves");
        let two = SmallCrossbarChain::new(SmallCrossbarParams {
            processors: 8,
            buses: 2,
            resources_per_bus: 2,
            lambda: 0.08,
            mu_n: 1.0,
            mu_s: 1.0,
        })
        .expect("stable")
        .solve()
        .expect("solves");
        assert!(
            two.mean_queue_delay < one.mean_queue_delay,
            "2 buses {} must beat 1 bus {}",
            two.mean_queue_delay,
            one.mean_queue_delay
        );
    }

    #[test]
    fn utilizations_are_flow_determined() {
        let chain = SmallCrossbarChain::new(SmallCrossbarParams {
            processors: 8,
            buses: 2,
            resources_per_bus: 2,
            lambda: 0.05,
            mu_n: 1.0,
            mu_s: 0.5,
        })
        .expect("stable");
        let sol = chain.solve().expect("solves");
        let lam = chain.arrival_rate();
        // Buses carry Λ at rate µ_n spread over m buses.
        assert!((sol.bus_utilization - lam / 2.0).abs() < 1e-6);
        // Resources carry Λ at rate µ_s spread over m·r resources.
        assert!((sol.resource_utilization - lam / (4.0 * 0.5)).abs() < 1e-6);
    }

    #[test]
    fn rejects_large_m_and_unstable_loads() {
        assert!(matches!(
            SmallCrossbarChain::new(SmallCrossbarParams {
                processors: 8,
                buses: 4,
                resources_per_bus: 1,
                lambda: 0.01,
                mu_n: 1.0,
                mu_s: 1.0,
            }),
            Err(SolveError::BadParameter { .. })
        ));
        assert!(matches!(
            SmallCrossbarChain::new(SmallCrossbarParams {
                processors: 8,
                buses: 2,
                resources_per_bus: 1,
                lambda: 1.0,
                mu_n: 1.0,
                mu_s: 1.0,
            }),
            Err(SolveError::Unstable { .. })
        ));
    }
}
