//! The M/M/1 queue.
//!
//! In the paper this is the degenerate limit of the single shared bus when
//! each processor owns *infinitely many* private resources: a free resource
//! is always available, so the bus (service rate µ_n) is the only server and
//! the system saturates at `pλ = µ_n` (Section III, Fig. 4's `r = ∞` curve).

use crate::error::SolveError;

/// Closed-form metrics of an M/M/1 queue.
///
/// # Examples
///
/// ```
/// use rsin_queueing::Mm1;
///
/// let q = Mm1::new(0.5, 1.0)?;
/// assert!((q.utilization() - 0.5).abs() < 1e-12);
/// assert!((q.mean_wait_in_queue() - 1.0).abs() < 1e-12); // rho/(mu-lambda)
/// # Ok::<(), rsin_queueing::SolveError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mm1 {
    lambda: f64,
    mu: f64,
}

impl Mm1 {
    /// Creates an M/M/1 model with arrival rate `lambda` and service rate `mu`.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::BadParameter`] for non-positive rates and
    /// [`SolveError::Unstable`] when `lambda >= mu`.
    pub fn new(lambda: f64, mu: f64) -> Result<Self, SolveError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(SolveError::BadParameter {
                what: "arrival rate must be positive and finite",
            });
        }
        if !(mu.is_finite() && mu > 0.0) {
            return Err(SolveError::BadParameter {
                what: "service rate must be positive and finite",
            });
        }
        if lambda >= mu {
            return Err(SolveError::Unstable {
                utilization: lambda / mu,
            });
        }
        Ok(Mm1 { lambda, mu })
    }

    /// Server utilization ρ = λ/µ.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Mean number in system, L = ρ/(1−ρ).
    #[must_use]
    pub fn mean_in_system(&self) -> f64 {
        let rho = self.utilization();
        rho / (1.0 - rho)
    }

    /// Mean number waiting in queue, L_q = ρ²/(1−ρ).
    #[must_use]
    pub fn mean_in_queue(&self) -> f64 {
        let rho = self.utilization();
        rho * rho / (1.0 - rho)
    }

    /// Mean time in system, W = 1/(µ−λ).
    #[must_use]
    pub fn mean_time_in_system(&self) -> f64 {
        1.0 / (self.mu - self.lambda)
    }

    /// Mean waiting time before service begins, W_q = ρ/(µ−λ).
    #[must_use]
    pub fn mean_wait_in_queue(&self) -> f64 {
        self.utilization() / (self.mu - self.lambda)
    }

    /// Stationary probability of `n` customers in the system.
    #[must_use]
    pub fn prob_n(&self, n: u32) -> f64 {
        let rho = self.utilization();
        (1.0 - rho) * rho.powi(n as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_values() {
        let q = Mm1::new(2.0, 3.0).expect("stable");
        assert!((q.utilization() - 2.0 / 3.0).abs() < 1e-12);
        assert!((q.mean_in_system() - 2.0).abs() < 1e-12);
        assert!((q.mean_time_in_system() - 1.0).abs() < 1e-12);
        assert!((q.mean_wait_in_queue() - 2.0 / 3.0).abs() < 1e-12);
        assert!((q.mean_in_queue() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn littles_law_holds() {
        let q = Mm1::new(0.7, 1.3).expect("stable");
        assert!((q.mean_in_system() - 0.7 * q.mean_time_in_system()).abs() < 1e-12);
        assert!((q.mean_in_queue() - 0.7 * q.mean_wait_in_queue()).abs() < 1e-12);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let q = Mm1::new(0.9, 1.0).expect("stable");
        let total: f64 = (0..2000).map(|n| q.prob_n(n)).sum();
        assert!((total - 1.0).abs() < 1e-8);
    }

    #[test]
    fn unstable_rejected() {
        assert!(matches!(
            Mm1::new(1.0, 1.0),
            Err(SolveError::Unstable { .. })
        ));
        assert!(matches!(
            Mm1::new(-1.0, 1.0),
            Err(SolveError::BadParameter { .. })
        ));
        assert!(matches!(
            Mm1::new(1.0, f64::NAN),
            Err(SolveError::BadParameter { .. })
        ));
    }
}
