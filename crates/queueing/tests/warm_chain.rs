//! Warm-start transfer along a *large-p* chain.
//!
//! The provisioning optimizer walks the processor axis (16 → 4096 and
//! beyond) reusing each solve's seed for the next, and relies on the
//! chained cache entry point never poisoning the shared cache with
//! warm-iterated values. These tests pin both contracts at scale, where
//! the figure-grid tests (`warm_start.rs`) stay at p ≤ 16.

use rsin_queueing::{
    shared_bus_cache_stats, solve_shared_bus_chained, SharedBusChain, SharedBusParams,
    SmallCrossbarChain, SmallCrossbarParams,
};

fn rel_err(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1e-300)
}

/// Processors per bus doubling 16 → 4096 at a fixed per-bus pool and a
/// fixed aggregate offered load `pλ = 0.8` (just under the bus's unit
/// saturation throughput, so every step stays stable). The seed dimension
/// is the resource count, so it transfers across every step.
fn large_p_params() -> impl Iterator<Item = SharedBusParams> {
    const RESOURCES: u32 = 32;
    (4..=12).map(|exp| {
        let p = 1u32 << exp;
        let lambda = 0.8 / f64::from(p);
        SharedBusParams {
            processors: p,
            resources: RESOURCES,
            lambda,
            mu_n: 1.0,
            mu_s: 0.1,
        }
    })
}

#[test]
fn sbus_warm_large_p_chain_matches_cold_within_1e9() {
    let mut seed = None;
    let mut steps = 0;
    for params in large_p_params() {
        let chain = SharedBusChain::new(params).expect("reference load stays stable");
        let cold = chain.solve().expect("cold solve");
        let (warm, next_seed) = chain.solve_seeded(seed.as_ref()).expect("warm solve");
        seed = Some(next_seed);
        steps += 1;
        for (w, c) in [
            (warm.normalized_delay, cold.normalized_delay),
            (warm.mean_queue_length, cold.mean_queue_length),
            (warm.bus_utilization, cold.bus_utilization),
            (warm.resource_utilization, cold.resource_utilization),
        ] {
            assert!(
                rel_err(w, c) < 1e-9,
                "p={}: warm {w} vs cold {c}",
                params.processors
            );
        }
    }
    assert_eq!(steps, 9, "the whole 16..=4096 chain must stay solvable");
}

#[test]
fn chained_cache_entry_point_tracks_cold_solves_along_large_p() {
    // solve_shared_bus_chained must (a) agree with a fresh cold solve at
    // every step and (b) leave the cache holding only values a cold solve
    // would produce — checked by comparing a post-hoc cached lookup
    // (guaranteed hit) against the fresh chain, bit for bit.
    let mut seed = None;
    for params in large_p_params() {
        let fresh = SharedBusChain::new(params)
            .expect("stable")
            .solve()
            .expect("solves");
        let (sol, next_seed) =
            solve_shared_bus_chained(params, seed.as_ref()).expect("chained solve");
        if let Some(s) = next_seed {
            seed = Some(s);
        }
        assert!(
            rel_err(sol.normalized_delay, fresh.normalized_delay) < 1e-9,
            "p={}: chained {} vs cold {}",
            params.processors,
            sol.normalized_delay,
            fresh.normalized_delay
        );
        let before = shared_bus_cache_stats();
        let (cached, _) = solve_shared_bus_chained(params, None).expect("lookup");
        let after = shared_bus_cache_stats();
        if after.hits > before.hits {
            assert_eq!(
                cached, fresh,
                "p={}: cache must hold the cold value",
                params.processors
            );
        }
    }
}

#[test]
fn xbar_warm_seed_transfers_only_at_equal_shape() {
    // The crossbar seed is π over a shape-dependent state space: chaining
    // across lambda at fixed shape must agree with cold; a shape change
    // must fall back to cold exactly.
    let at = |buses, r, lambda| SmallCrossbarParams {
        processors: 64,
        buses,
        resources_per_bus: r,
        lambda,
        mu_n: 1.0,
        mu_s: 0.1,
    };
    let chain_a = SmallCrossbarChain::new(at(2, 2, 0.003)).expect("stable");
    let (_, seed_a) = chain_a.solve_seeded(None).expect("solves");
    // Same shape, new load: warm agrees with cold to tolerance.
    let chain_b = SmallCrossbarChain::new(at(2, 2, 0.004)).expect("stable");
    let cold_b = chain_b.solve().expect("cold");
    let (warm_b, _) = chain_b.solve_seeded(Some(&seed_a)).expect("warm");
    // The truncation ladder stops when a doubling moves the delay by less
    // than 1e-6 relative, and a warm start may settle one rung away from
    // the cold solve — so agreement is pinned at that stopping tolerance,
    // not at the CTMC solver's 1e-12 convergence noise.
    assert!(rel_err(warm_b.normalized_delay, cold_b.normalized_delay) < 1e-6);
    // Different shape — 3×1 has the same state-space dimensions as 2×2 but
    // numbers entirely different states, so the seed must be ignored: the
    // seeded run must match an unseeded `solve_seeded` bit for bit (the
    // internal truncation-ladder warm-starting is identical either way).
    let chain_c = SmallCrossbarChain::new(at(3, 1, 0.003)).expect("stable");
    let (unseeded_c, _) = chain_c.solve_seeded(None).expect("unseeded");
    let (warm_c, _) = chain_c.solve_seeded(Some(&seed_a)).expect("warm");
    assert_eq!(warm_c, unseeded_c, "mismatched shape must ignore the seed");
}
