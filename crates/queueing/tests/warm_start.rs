//! Warm-started solves agree with cold solves across the figure grids.
//!
//! The warm-start machinery (R-matrix seeding in the shared-bus chain,
//! π chaining in the small-crossbar chain, the q hint in the paper's
//! stage recursion) only accelerates iteration toward a unique fixed
//! point — these tests pin the contract: every warm result matches the
//! cold result within 1e-9 relative error, over every rho-grid point of
//! every figure configuration.

use rsin_queueing::{
    solve_shared_bus_cached, traffic, SharedBusChain, SharedBusParams, SmallCrossbarChain,
    SmallCrossbarParams,
};

/// The figure rho grid (see `rsin-bench::figures::rho_grid`).
fn rho_grid() -> Vec<f64> {
    std::iter::once(0.05)
        .chain((1..=9).map(|i| f64::from(i) / 10.0))
        .collect()
}

/// Every analytic shared-bus series drawn on Figs. 4, 5, 12, 13:
/// `(procs_per_bus, resources_per_bus)`.
const SBUS_FIGURE_CONFIGS: [(u32, u32); 6] = [(16, 32), (8, 16), (2, 4), (1, 2), (1, 3), (1, 4)];

/// The figures' transmission-to-service ratios `µ_s/µ_n`.
const RATIOS: [f64; 2] = [0.1, 1.0];

fn rel_err(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1e-300)
}

#[test]
fn sbus_warm_grid_matches_cold_within_1e9() {
    for ratio in RATIOS {
        let (mu_n, mu_s) = (1.0, ratio);
        for (procs, res) in SBUS_FIGURE_CONFIGS {
            let mut seed = None;
            for rho in rho_grid() {
                let lambda = traffic::lambda_for_intensity(16, 32, rho, mu_n, mu_s);
                let params = SharedBusParams {
                    processors: procs,
                    resources: res,
                    lambda,
                    mu_n,
                    mu_s,
                };
                let Ok(chain) = SharedBusChain::new(params) else {
                    break; // saturated: the figure curve ends here
                };
                let cold = chain.solve().expect("cold solve");
                let (warm, next_seed) = chain.solve_seeded(seed.as_ref()).expect("warm solve");
                seed = Some(next_seed);
                for (w, c) in [
                    (warm.normalized_delay, cold.normalized_delay),
                    (warm.mean_queue_length, cold.mean_queue_length),
                    (warm.bus_utilization, cold.bus_utilization),
                    (warm.resource_utilization, cold.resource_utilization),
                ] {
                    assert!(
                        rel_err(w, c) < 1e-9,
                        "{procs}x{res} ratio {ratio} rho {rho}: warm {w} vs cold {c}"
                    );
                }
            }
        }
    }
}

#[test]
fn sbus_unseeded_solve_seeded_equals_solve_exactly() {
    // With no seed, solve_seeded runs the very same code path as solve();
    // the results must agree bit for bit, not just to tolerance.
    let chain = SharedBusChain::new(SharedBusParams {
        processors: 2,
        resources: 4,
        lambda: 0.1,
        mu_n: 1.0,
        mu_s: 0.1,
    })
    .expect("stable");
    let cold = chain.solve().expect("solves");
    let (warm, _) = chain.solve_seeded(None).expect("solves");
    assert_eq!(warm, cold);
}

#[test]
fn sbus_wrong_dimension_seed_is_ignored() {
    let small = SharedBusChain::new(SharedBusParams {
        processors: 1,
        resources: 2,
        lambda: 0.1,
        mu_n: 1.0,
        mu_s: 0.1,
    })
    .expect("stable");
    let (_, seed_r2) = small.solve_seeded(None).expect("solves");
    let big = SharedBusChain::new(SharedBusParams {
        processors: 1,
        resources: 4,
        lambda: 0.1,
        mu_n: 1.0,
        mu_s: 0.1,
    })
    .expect("stable");
    let cold = big.solve().expect("solves");
    let (warm, _) = big.solve_seeded(Some(&seed_r2)).expect("solves");
    assert_eq!(warm, cold, "a mismatched seed must fall back to cold");
}

#[test]
fn paper_iterative_hint_matches_unhinted_within_1e9() {
    for ratio in RATIOS {
        let (mu_n, mu_s) = (1.0, ratio);
        let mut hint = None;
        for rho in [0.05, 0.1, 0.2, 0.3] {
            let lambda = traffic::lambda_for_intensity(16, 32, rho, mu_n, mu_s);
            let Ok(chain) = SharedBusChain::new(SharedBusParams {
                processors: 1,
                resources: 2,
                lambda,
                mu_n,
                mu_s,
            }) else {
                break;
            };
            let cold = chain.solve_paper_iterative().expect("cold");
            let warm = chain.solve_paper_iterative_from(hint).expect("warm");
            hint = Some(warm.stages - 1);
            assert!(
                rel_err(warm.mean_queue_delay, cold.mean_queue_delay) < 1e-9,
                "ratio {ratio} rho {rho}: warm {} vs cold {}",
                warm.mean_queue_delay,
                cold.mean_queue_delay
            );
        }
    }
}

#[test]
fn xbar_warm_grid_matches_cold_within_1e9() {
    // Small-m crossbar chains for every tractable bus count, warm-chained
    // across an arrival-rate grid the way a figure sweep would.
    for (m, r) in [(1u32, 2u32), (2, 1), (3, 1)] {
        let mut seed = None;
        for lam in [0.01, 0.03, 0.05] {
            let params = SmallCrossbarParams {
                processors: 4,
                buses: m,
                resources_per_bus: r,
                lambda: lam,
                mu_n: 1.0,
                mu_s: 0.5,
            };
            let Ok(chain) = SmallCrossbarChain::new(params) else {
                break;
            };
            let cold = chain.solve().expect("cold solve");
            let (warm, next_seed) = chain.solve_seeded(seed.as_ref()).expect("warm solve");
            seed = Some(next_seed);
            for (w, c) in [
                (warm.normalized_delay, cold.normalized_delay),
                (warm.mean_queue_length, cold.mean_queue_length),
                (warm.bus_utilization, cold.bus_utilization),
            ] {
                assert!(
                    rel_err(w, c) < 1e-9,
                    "m={m} r={r} lambda {lam}: warm {w} vs cold {c}"
                );
            }
        }
    }
}

#[test]
fn cache_returns_what_a_fresh_chain_returns() {
    // Satellite contract: the solution cache is transparent — a hit is the
    // exact value a fresh chain would produce.
    for rho in [0.05, 0.3, 0.6] {
        let lambda = traffic::lambda_for_intensity(16, 32, rho, 1.0, 0.1);
        let params = SharedBusParams {
            processors: 2,
            resources: 4,
            lambda,
            mu_n: 1.0,
            mu_s: 0.1,
        };
        let fresh = SharedBusChain::new(params)
            .expect("stable")
            .solve()
            .expect("solves");
        assert_eq!(solve_shared_bus_cached(params).expect("ok"), fresh);
        assert_eq!(solve_shared_bus_cached(params).expect("ok"), fresh, "hit");
    }
}
