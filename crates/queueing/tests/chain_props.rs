//! Property-based tests of the shared-bus Markov chain and its solvers.

use proptest::prelude::*;
use rsin_queueing::{Mm1, Mmr, SharedBusChain, SharedBusParams, SolveError};

fn stable_chain(p: u32, r: u32, util: f64, mu_n: f64, mu_s: f64) -> Option<SharedBusChain> {
    // Build at a target fraction of saturation, so every sample is stable.
    let probe = SharedBusChain::new(SharedBusParams {
        processors: p,
        resources: r,
        lambda: 1e-9,
        mu_n,
        mu_s,
    })
    .ok()?;
    let lambda = util * probe.saturation_throughput() / p as f64;
    SharedBusChain::new(SharedBusParams {
        processors: p,
        resources: r,
        lambda,
        mu_n,
        mu_s,
    })
    .ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The exact solver and the truncated full-balance solver agree.
    #[test]
    fn solvers_agree(
        p in 1u32..8,
        r in 1u32..6,
        util in 0.05f64..0.7,
        mu_n in 0.5f64..4.0,
        mu_s in 0.5f64..4.0,
    ) {
        let Some(chain) = stable_chain(p, r, util, mu_n, mu_s) else {
            return Ok(());
        };
        let exact = chain.solve().expect("exact solver");
        // Gauss–Seidel can hit its sweep cap on stiff random parameters;
        // it is the cross-check, so skip those samples rather than require
        // the reference to converge everywhere.
        let Ok(truncated) = chain.solve_truncated(64) else {
            return Ok(());
        };
        let rel = (exact.mean_queue_delay - truncated.mean_queue_delay).abs()
            / truncated.mean_queue_delay.max(1e-9);
        prop_assert!(rel < 1e-4, "exact {} vs truncated {}", exact.mean_queue_delay,
                     truncated.mean_queue_delay);
    }

    /// Flow conservation: bus utilization is Λ/µ_n and resource utilization
    /// Λ/(rµ_s), independent of anything else.
    #[test]
    fn utilizations_are_flow_determined(
        p in 1u32..8,
        r in 1u32..6,
        util in 0.05f64..0.8,
    ) {
        let Some(chain) = stable_chain(p, r, util, 1.0, 1.0) else {
            return Ok(());
        };
        let lam = chain.arrival_rate();
        let sol = chain.solve().expect("solves");
        prop_assert!((sol.bus_utilization - lam).abs() < 1e-6);
        prop_assert!((sol.resource_utilization - lam / r as f64).abs() < 1e-6);
    }

    /// Delay is monotone in the arrival rate.
    #[test]
    fn delay_monotone_in_lambda(
        p in 1u32..6,
        r in 1u32..5,
        base_util in 0.05f64..0.4,
    ) {
        let Some(lo) = stable_chain(p, r, base_util, 1.0, 1.0) else {
            return Ok(());
        };
        let Some(hi) = stable_chain(p, r, base_util * 1.8, 1.0, 1.0) else {
            return Ok(());
        };
        let d_lo = lo.solve().expect("solves").mean_queue_delay;
        let d_hi = hi.solve().expect("solves").mean_queue_delay;
        prop_assert!(d_hi >= d_lo, "delay must grow with load: {d_hi} < {d_lo}");
    }

    /// The chain's delay always dominates the M/M/1 (r = ∞) lower bound and
    /// the M/M/r (µ_n = ∞) lower bound.
    #[test]
    fn bounded_below_by_degenerate_limits(
        p in 1u32..6,
        r in 1u32..5,
        util in 0.05f64..0.6,
    ) {
        let Some(chain) = stable_chain(p, r, util, 1.0, 1.0) else {
            return Ok(());
        };
        let d = chain.solve().expect("solves").mean_queue_delay;
        let lam = chain.arrival_rate();
        if let Ok(bus) = Mm1::new(lam, 1.0) {
            prop_assert!(d >= bus.mean_wait_in_queue() - 1e-9);
        }
        if let Ok(pool) = Mmr::new(lam, 1.0, r) {
            prop_assert!(d >= pool.mean_wait_in_queue() - 1e-9);
        }
    }

    /// Validation rejects exactly the degenerate parameters.
    #[test]
    fn validation_is_total(lambda in -1.0f64..2.0, mu_n in -1.0f64..2.0) {
        let res = SharedBusChain::new(SharedBusParams {
            processors: 2,
            resources: 2,
            lambda,
            mu_n,
            mu_s: 1.0,
        });
        match res {
            Ok(c) => {
                prop_assert!(lambda > 0.0 && mu_n > 0.0);
                prop_assert!(c.utilization() < 1.0);
            }
            Err(SolveError::BadParameter { .. }) => {
                prop_assert!(lambda <= 0.0 || mu_n <= 0.0);
            }
            Err(SolveError::Unstable { utilization }) => {
                prop_assert!(utilization >= 1.0);
            }
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }
}
