//! Property-based tests of the shared-bus Markov chain and its solvers.

use rsin_minicheck::check;
use rsin_queueing::{Mm1, Mmr, SharedBusChain, SharedBusParams, SolveError};

fn stable_chain(p: u32, r: u32, util: f64, mu_n: f64, mu_s: f64) -> Option<SharedBusChain> {
    // Build at a target fraction of saturation, so every sample is stable.
    let probe = SharedBusChain::new(SharedBusParams {
        processors: p,
        resources: r,
        lambda: 1e-9,
        mu_n,
        mu_s,
    })
    .ok()?;
    let lambda = util * probe.saturation_throughput() / p as f64;
    SharedBusChain::new(SharedBusParams {
        processors: p,
        resources: r,
        lambda,
        mu_n,
        mu_s,
    })
    .ok()
}

/// The exact solver and the truncated full-balance solver agree.
#[test]
fn solvers_agree() {
    check(16, |g| {
        let p = g.u32_in(1, 8);
        let r = g.u32_in(1, 6);
        let util = g.f64_in(0.05, 0.7);
        let mu_n = g.f64_in(0.5, 4.0);
        let mu_s = g.f64_in(0.5, 4.0);
        let Some(chain) = stable_chain(p, r, util, mu_n, mu_s) else {
            return;
        };
        let exact = chain.solve().expect("exact solver");
        // Gauss–Seidel can hit its sweep cap on stiff random parameters;
        // it is the cross-check, so skip those samples rather than require
        // the reference to converge everywhere.
        let Ok(truncated) = chain.solve_truncated(64) else {
            return;
        };
        let rel = (exact.mean_queue_delay - truncated.mean_queue_delay).abs()
            / truncated.mean_queue_delay.max(1e-9);
        assert!(
            rel < 1e-4,
            "exact {} vs truncated {}",
            exact.mean_queue_delay,
            truncated.mean_queue_delay
        );
    });
}

/// Flow conservation: bus utilization is Λ/µ_n and resource utilization
/// Λ/(rµ_s), independent of anything else.
#[test]
fn utilizations_are_flow_determined() {
    check(16, |g| {
        let p = g.u32_in(1, 8);
        let r = g.u32_in(1, 6);
        let util = g.f64_in(0.05, 0.8);
        let Some(chain) = stable_chain(p, r, util, 1.0, 1.0) else {
            return;
        };
        let lam = chain.arrival_rate();
        let sol = chain.solve().expect("solves");
        assert!((sol.bus_utilization - lam).abs() < 1e-6);
        assert!((sol.resource_utilization - lam / r as f64).abs() < 1e-6);
    });
}

/// Delay is monotone in the arrival rate.
#[test]
fn delay_monotone_in_lambda() {
    check(16, |g| {
        let p = g.u32_in(1, 6);
        let r = g.u32_in(1, 5);
        let base_util = g.f64_in(0.05, 0.4);
        let Some(lo) = stable_chain(p, r, base_util, 1.0, 1.0) else {
            return;
        };
        let Some(hi) = stable_chain(p, r, base_util * 1.8, 1.0, 1.0) else {
            return;
        };
        let d_lo = lo.solve().expect("solves").mean_queue_delay;
        let d_hi = hi.solve().expect("solves").mean_queue_delay;
        assert!(d_hi >= d_lo, "delay must grow with load: {d_hi} < {d_lo}");
    });
}

/// The chain's delay always dominates the M/M/1 (r = ∞) lower bound and
/// the M/M/r (µ_n = ∞) lower bound.
#[test]
fn bounded_below_by_degenerate_limits() {
    check(16, |g| {
        let p = g.u32_in(1, 6);
        let r = g.u32_in(1, 5);
        let util = g.f64_in(0.05, 0.6);
        let Some(chain) = stable_chain(p, r, util, 1.0, 1.0) else {
            return;
        };
        let d = chain.solve().expect("solves").mean_queue_delay;
        let lam = chain.arrival_rate();
        if let Ok(bus) = Mm1::new(lam, 1.0) {
            assert!(d >= bus.mean_wait_in_queue() - 1e-9);
        }
        if let Ok(pool) = Mmr::new(lam, 1.0, r) {
            assert!(d >= pool.mean_wait_in_queue() - 1e-9);
        }
    });
}

/// Validation rejects exactly the degenerate parameters.
#[test]
fn validation_is_total() {
    check(64, |g| {
        let lambda = g.f64_in(-1.0, 2.0);
        let mu_n = g.f64_in(-1.0, 2.0);
        let res = SharedBusChain::new(SharedBusParams {
            processors: 2,
            resources: 2,
            lambda,
            mu_n,
            mu_s: 1.0,
        });
        match res {
            Ok(c) => {
                assert!(lambda > 0.0 && mu_n > 0.0);
                assert!(c.utilization() < 1.0);
            }
            Err(SolveError::BadParameter { .. }) => {
                assert!(lambda <= 0.0 || mu_n <= 0.0);
            }
            Err(SolveError::Unstable { utilization }) => {
                assert!(utilization >= 1.0);
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    });
}
