//! Address-mapping baseline: the conventional Omega network the paper
//! compares against (Section V).
//!
//! Under address mapping a request must carry the address of a *specific*
//! free resource before entering the network — supplied here, as in the
//! prior work the paper cites, by a centralized scheduler that assigns each
//! request a random free resource. The request then routes by destination
//! tag; if any link on its unique path is occupied, the request is blocked
//! and must retry later. The inability to divert to another free resource
//! mid-network is exactly what distributed resource scheduling removes, and
//! is why the paper measures ≈ 0.3 blocking for address mapping versus
//! ≈ 0.15 for the RSIN on an 8×8 network.

use rsin_core::{Grant, NetworkCounters, ResourceNetwork, SystemConfig};
use rsin_des::SimRng;
use rsin_topology::{Multistage, OmegaTopology, Route};
use std::collections::HashMap;

/// A partitioned address-mapped Omega network with a centralized random
/// resource assigner.
#[derive(Debug)]
pub struct AddressMappedOmega {
    topo: OmegaTopology,
    resources_per_port: u32,
    partitions: usize,
    /// Links held by active circuits, per partition.
    link_busy: Vec<Vec<Vec<bool>>>,
    busy_resources: Vec<Vec<u32>>,
    /// Active routes keyed by global processor index.
    routes: HashMap<usize, Route>,
    counters: NetworkCounters,
}

use crate::model::WrongKindError;

impl AddressMappedOmega {
    /// Builds the baseline for an OMEGA configuration.
    ///
    /// # Errors
    ///
    /// [`WrongKindError`] when the configuration names another network type.
    pub fn from_config(config: &SystemConfig) -> Result<Self, WrongKindError> {
        if config.kind() != rsin_core::NetworkKind::Omega {
            return Err(WrongKindError {
                found: config.kind(),
            });
        }
        Ok(AddressMappedOmega::new(
            config.networks() as usize,
            config.inputs() as usize,
            config.resources_per_port(),
        ))
    }

    /// Builds `partitions` independent `size × size` address-mapped Omega
    /// networks with `resources_per_port` resources per output port.
    ///
    /// # Panics
    ///
    /// Panics if counts are zero or `size` is not a power of two ≥ 2.
    #[must_use]
    pub fn new(partitions: usize, size: usize, resources_per_port: u32) -> Self {
        assert!(partitions > 0, "need at least one partition");
        assert!(
            resources_per_port > 0,
            "resources per port must be positive"
        );
        let topo = OmegaTopology::new(size).unwrap_or_else(|e| panic!("invalid Omega size: {e}"));
        let stages = topo.stages() as usize;
        AddressMappedOmega {
            topo,
            resources_per_port,
            partitions,
            link_busy: vec![vec![vec![false; size]; stages]; partitions],
            busy_resources: vec![vec![0; size]; partitions],
            routes: HashMap::new(),
            counters: NetworkCounters::default(),
        }
    }

    fn size(&self) -> usize {
        self.topo.size()
    }

    fn route_is_free(&self, pi: usize, route: &Route) -> bool {
        route
            .links
            .iter()
            .all(|l| !self.link_busy[pi][l.stage as usize][l.wire])
    }

    fn set_route(&mut self, pi: usize, route: &Route, busy: bool) {
        for l in &route.links {
            self.link_busy[pi][l.stage as usize][l.wire] = busy;
        }
    }
}

impl ResourceNetwork for AddressMappedOmega {
    fn processors(&self) -> usize {
        self.partitions * self.size()
    }

    fn total_resources(&self) -> usize {
        self.partitions * self.size() * self.resources_per_port as usize
    }

    fn request_cycle(&mut self, pending: &[bool], rng: &mut SimRng) -> Vec<Grant> {
        assert_eq!(pending.len(), self.processors(), "pending vector size");
        let size = self.size();
        let mut grants = Vec::new();
        for pi in 0..self.partitions {
            let base = pi * size;
            let mut requesters: Vec<usize> = (0..size)
                .filter(|&l| pending[base + l] && !self.routes.contains_key(&(base + l)))
                .collect();
            if requesters.is_empty() {
                continue;
            }
            // The centralized scheduler serves requests in random order and
            // hands each a random free resource port (with capacity left
            // after earlier assignments this cycle).
            rng.shuffle(&mut requesters);
            self.counters.attempts += requesters.len() as u64;
            let mut assigned_ports: Vec<u32> = vec![0; size];
            for &local in &requesters {
                let free_ports: Vec<usize> = (0..size)
                    .filter(|&port| {
                        self.busy_resources[pi][port] + assigned_ports[port]
                            < self.resources_per_port
                    })
                    .collect();
                if free_ports.is_empty() {
                    self.counters.rejections += 1;
                    continue;
                }
                let port = free_ports[rng.index(free_ports.len())];
                let route = self.topo.route(local, port);
                if self.route_is_free(pi, &route) {
                    self.set_route(pi, &route, true);
                    assigned_ports[port] += 1;
                    self.counters.boxes_traversed += route.links.len() as u64;
                    self.routes.insert(base + local, route);
                    grants.push(Grant {
                        processor: base + local,
                        port: base + port,
                    });
                } else {
                    // Blocked in the network: the request retries later with
                    // a fresh assignment. This is the address-mapping
                    // penalty — no mid-network diversion.
                    self.counters.rejections += 1;
                }
            }
        }
        grants
    }

    fn end_transmission(&mut self, grant: Grant) {
        let size = self.size();
        let pi = grant.processor / size;
        let route = self
            .routes
            .remove(&grant.processor)
            .expect("transmission ends only on an active route");
        self.set_route(pi, &route, false);
        self.busy_resources[pi][grant.port % size] += 1;
        debug_assert!(self.busy_resources[pi][grant.port % size] <= self.resources_per_port);
    }

    fn end_service(&mut self, grant: Grant) {
        let size = self.size();
        let pi = grant.port / size;
        debug_assert!(self.busy_resources[pi][grant.port % size] > 0);
        self.busy_resources[pi][grant.port % size] -= 1;
    }

    fn take_counters(&mut self) -> NetworkCounters {
        std::mem::take(&mut self.counters)
    }

    fn label(&self) -> &'static str {
        "OMEGA-AM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending(n: usize, set: &[usize]) -> Vec<bool> {
        let mut v = vec![false; n];
        for &i in set {
            v[i] = true;
        }
        v
    }

    #[test]
    fn single_request_is_always_served_on_empty_network() {
        let mut net = AddressMappedOmega::new(1, 8, 1);
        let mut rng = SimRng::new(1);
        let g = net.request_cycle(&pending(8, &[3]), &mut rng);
        assert_eq!(g.len(), 1);
        net.end_transmission(g[0]);
        net.end_service(g[0]);
    }

    #[test]
    fn no_free_resource_means_rejection() {
        let mut net = AddressMappedOmega::new(1, 2, 1);
        let mut rng = SimRng::new(2);
        let g1 = net.request_cycle(&pending(2, &[0]), &mut rng);
        net.end_transmission(g1[0]);
        let g2 = net.request_cycle(&pending(2, &[1]), &mut rng);
        net.end_transmission(g2[0]);
        assert!(net.request_cycle(&pending(2, &[0]), &mut rng).is_empty());
        let c = net.take_counters();
        assert!(c.rejections >= 1);
    }

    #[test]
    fn held_links_block_conflicting_routes() {
        // With one resource per port, saturating requests one at a time
        // eventually hits link conflicts that a free network would not have.
        let mut net = AddressMappedOmega::new(1, 8, 1);
        let mut rng = SimRng::new(3);
        let mut total = 0;
        for round in 0..20 {
            let all: Vec<usize> = (0..8).collect();
            let g = net.request_cycle(&pending(8, &all), &mut rng);
            total += g.len();
            if round == 0 {
                assert!(g.len() < 8, "simultaneous random routing should block some");
            }
            for grant in g {
                net.end_transmission(grant);
                net.end_service(grant);
            }
        }
        assert!(total > 0);
    }

    #[test]
    fn from_config_checks_kind() {
        let cfg: SystemConfig = "16/16x1x1 SBUS/2".parse().expect("valid");
        assert!(AddressMappedOmega::from_config(&cfg).is_err());
        let cfg: SystemConfig = "16/1x16x16 OMEGA/2".parse().expect("valid");
        let net = AddressMappedOmega::from_config(&cfg).expect("omega");
        assert_eq!(net.processors(), 16);
        assert_eq!(net.total_resources(), 32);
    }
}
