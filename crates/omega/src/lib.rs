//! # rsin-omega — the Omega multistage RSIN (Section V)
//!
//! A `log₂N`-stage Omega network whose 2×2 interchange boxes carry the
//! scheduling intelligence: resource-availability bits flood backward from
//! the output ports, requests flow forward toward set availability
//! registers, and conflicts produce rejects that backtrack and divert to
//! alternate free resources. The headline result is a blocking probability
//! of ≈ 0.15 on an 8×8 network versus ≈ 0.3 for the same network under
//! conventional address mapping — a request that can *search* is much
//! harder to block.
//!
//! - [`OmegaState`] / [`Admission`] / [`Circuit`]: the distributed
//!   resolution protocol with circuit-held links and box-visit accounting
//!   (Fig. 11's example reproduces, 3.5 boxes per request).
//! - [`OmegaNetwork`]: the simulatable
//!   [`ResourceNetwork`](rsin_core::ResourceNetwork).
//! - [`AddressMappedOmega`]: the conventional baseline with a centralized
//!   random assigner.
//! - [`CentralOmegaNetwork`] / [`SequentialScheduler`]: the
//!   centralized-scheduler baseline — sequential allocation with a single
//!   point of failure for the fault study.
//! - [`blocking`]: the Monte Carlo blocking-probability experiment.
//!
//! # Example
//!
//! ```
//! use rsin_des::SimRng;
//! use rsin_omega::blocking::{run_blocking_experiment, BlockingExperiment};
//!
//! let mut rng = SimRng::new(1);
//! let exp = BlockingExperiment { trials: 500, ..BlockingExperiment::default() };
//! let res = run_blocking_experiment(&exp, &mut rng);
//! assert!(res.rsin < res.address_mapping);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod address_map;
pub mod blocking;
mod central;
mod interchange;
mod model;
mod resolver;
mod return_path;
mod typed;

pub use address_map::AddressMappedOmega;
pub use central::{CentralOmegaNetwork, SequentialOutcome, SequentialScheduler};
pub use interchange::{InterchangeBox, QueryOutcome, RejectOutcome};
pub use model::{OmegaNetwork, WrongKindError};
pub use resolver::{
    Admission, Circuit, MultistageState, OmegaState, Resolution, StatusFreshness, Wiring,
};
pub use return_path::OmegaReturnPath;
pub use typed::{Placement, TypedOmegaNetwork};

#[cfg(test)]
mod integration_tests {
    use super::*;
    use rsin_core::{simulate, SimOptions, SystemConfig, Workload};
    use rsin_des::SimRng;

    fn run(cfg: &SystemConfig, w: &Workload, seed: u64) -> rsin_core::SimReport {
        let mut net = OmegaNetwork::from_config(cfg, Admission::Simultaneous).expect("omega");
        let mut rng = SimRng::new(seed);
        let opts = SimOptions {
            warmup_tasks: 4_000,
            measured_tasks: 40_000,
        };
        simulate(&mut net, w, &opts, &mut rng)
    }

    /// Fig. 12's observation: eight 2×2 networks and one 16×16 network are
    /// nearly interchangeable except under heavy load.
    #[test]
    fn small_partitions_match_large_network_at_light_load() {
        let big: SystemConfig = "16/1x16x16 OMEGA/2".parse().expect("valid");
        let small: SystemConfig = "16/8x2x2 OMEGA/2".parse().expect("valid");
        let w_big = Workload::for_intensity(&big, 0.3, 0.1).expect("valid");
        let d_big = run(&big, &w_big, 21).mean_delay();
        let w_small = Workload::for_intensity(&small, 0.3, 0.1).expect("valid");
        let d_small = run(&small, &w_small, 22).mean_delay();
        // At light load both delays are a small fraction of a service time;
        // the curves coincide in absolute terms (Fig. 12's message).
        assert!(
            (d_big - d_small).abs() < 0.1,
            "light-load delays should be close: {d_big} vs {d_small}"
        );
    }

    /// Under heavier load the large network's path diversity wins.
    #[test]
    fn large_network_wins_under_heavy_load() {
        let big: SystemConfig = "16/1x16x16 OMEGA/2".parse().expect("valid");
        let small: SystemConfig = "16/8x2x2 OMEGA/2".parse().expect("valid");
        let rho = 0.75;
        let d_big = run(
            &big,
            &Workload::for_intensity(&big, rho, 0.1).expect("valid"),
            23,
        )
        .mean_delay();
        let d_small = run(
            &small,
            &Workload::for_intensity(&small, rho, 0.1).expect("valid"),
            24,
        )
        .mean_delay();
        assert!(
            d_big < d_small,
            "16x16 ({d_big}) should beat 8 small nets ({d_small}) at rho={rho}"
        );
    }

    /// The distributed RSIN must not do worse than the address-mapping
    /// baseline at equal configuration and load.
    #[test]
    fn rsin_beats_address_mapping_end_to_end() {
        let cfg: SystemConfig = "8/1x8x8 OMEGA/1".parse().expect("valid");
        let w = Workload::for_intensity(&cfg, 0.6, 1.0).expect("valid");
        let opts = SimOptions {
            warmup_tasks: 4_000,
            measured_tasks: 40_000,
        };
        let mut rsin = OmegaNetwork::from_config(&cfg, Admission::Simultaneous).expect("omega");
        let mut rng = SimRng::new(31);
        let d_rsin = simulate(&mut rsin, &w, &opts, &mut rng).mean_delay();
        let mut am = AddressMappedOmega::from_config(&cfg).expect("omega");
        let mut rng = SimRng::new(31);
        let d_am = simulate(&mut am, &w, &opts, &mut rng).mean_delay();
        assert!(
            d_rsin <= d_am * 1.05,
            "distributed scheduling {d_rsin} should not lose to address mapping {d_am}"
        );
    }
}
