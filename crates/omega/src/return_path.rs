//! The result-return network: a second, address-mapped Omega fabric.
//!
//! Section II: results are routed back to their originating processor "by a
//! separate address-mapping network with parallel routing since the
//! destination address is known". This is that network — a mirror-image
//! Omega carrying circuits from resource ports back to processors, with no
//! scheduling intelligence needed (the destination is known) but with real
//! link contention.

use rsin_core::roundtrip::{ReturnNetwork, ReturnTicket};
use rsin_topology::{Multistage, OmegaTopology, Route};
use std::collections::HashMap;

/// An address-mapped Omega return fabric.
///
/// # Examples
///
/// ```
/// use rsin_core::roundtrip::ReturnNetwork;
/// use rsin_omega::OmegaReturnPath;
///
/// let mut ret = OmegaReturnPath::new(8)?;
/// let t = ret.try_send(3, 5).expect("idle network routes anything");
/// ret.end_return(t);
/// # Ok::<(), rsin_topology::TopologyError>(())
/// ```
#[derive(Debug)]
pub struct OmegaReturnPath {
    topo: OmegaTopology,
    link_busy: Vec<Vec<bool>>,
    active: HashMap<u64, Route>,
    next_ticket: u64,
}

impl OmegaReturnPath {
    /// Builds an `size × size` return fabric.
    ///
    /// # Errors
    ///
    /// [`rsin_topology::TopologyError`] unless `size` is a power of two ≥ 2.
    pub fn new(size: usize) -> Result<Self, rsin_topology::TopologyError> {
        let topo = OmegaTopology::new(size)?;
        let stages = topo.stages() as usize;
        Ok(OmegaReturnPath {
            topo,
            link_busy: vec![vec![false; size]; stages],
            active: HashMap::new(),
            next_ticket: 0,
        })
    }

    /// Number of circuits currently held.
    #[must_use]
    pub fn active_circuits(&self) -> usize {
        self.active.len()
    }
}

impl ReturnNetwork for OmegaReturnPath {
    fn try_send(&mut self, port: usize, processor: usize) -> Option<ReturnTicket> {
        // The return fabric's inputs are the resource ports; its outputs are
        // the processors.
        let route = self
            .topo
            .route(port % self.topo.size(), processor % self.topo.size());
        if route
            .links
            .iter()
            .any(|l| self.link_busy[l.stage as usize][l.wire])
        {
            return None;
        }
        for l in &route.links {
            self.link_busy[l.stage as usize][l.wire] = true;
        }
        self.next_ticket += 1;
        self.active.insert(self.next_ticket, route);
        Some(ReturnTicket(self.next_ticket))
    }

    fn end_return(&mut self, ticket: ReturnTicket) {
        let route = self
            .active
            .remove(&ticket.0)
            .expect("ticket must identify an active return circuit");
        for l in &route.links {
            debug_assert!(self.link_busy[l.stage as usize][l.wire]);
            self.link_busy[l.stage as usize][l.wire] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsin_core::roundtrip::{simulate_round_trip, InstantReturn};
    use rsin_core::{SimOptions, SystemConfig, Workload};
    use rsin_des::SimRng;

    #[test]
    fn idle_network_routes_everything() {
        let mut ret = OmegaReturnPath::new(8).expect("8x8");
        let t1 = ret.try_send(0, 7).expect("free");
        let t2 = ret.try_send(1, 3).expect("still free on distinct links");
        assert_eq!(ret.active_circuits(), 2);
        ret.end_return(t1);
        ret.end_return(t2);
        assert_eq!(ret.active_circuits(), 0);
    }

    #[test]
    fn conflicting_returns_block_until_released() {
        let mut ret = OmegaReturnPath::new(8).expect("8x8");
        // Same final wire: port X → processor 5 twice must conflict.
        let t = ret.try_send(0, 5).expect("free");
        assert!(ret.try_send(4, 5).is_none(), "same destination wire blocks");
        ret.end_return(t);
        assert!(ret.try_send(4, 5).is_some());
    }

    #[test]
    fn round_trip_through_forward_and_return_omegas() {
        // Full Fig. 1 system: forward RSIN Omega + return address-mapped
        // Omega, 8 processors, one resource per port.
        let cfg: SystemConfig = "8/1x8x8 OMEGA/1".parse().expect("valid");
        let w = Workload::for_intensity(&cfg, 0.4, 0.1).expect("valid");
        let opts = SimOptions {
            warmup_tasks: 1_000,
            measured_tasks: 32_000,
        };
        let mut fwd =
            crate::OmegaNetwork::from_config(&cfg, crate::Admission::Simultaneous).expect("omega");
        let mut ret = OmegaReturnPath::new(8).expect("8x8");
        let mut rng = SimRng::new(3);
        let report = simulate_round_trip(&mut fwd, &mut ret, &w, w.mu_n(), &opts, &mut rng);
        assert_eq!(report.round_trip.count(), 32_000);
        // Round trip ≥ transmission + service + return means.
        let floor = 1.0 / w.mu_n() + 1.0 / w.mu_s() + 1.0 / w.mu_n();
        assert!(report.round_trip.mean() > floor);

        // The paper's justification for ignoring the return leg: at this
        // load its waiting contribution is tiny relative to a service time.
        assert!(
            report.return_wait.mean() < 0.1 / w.mu_s(),
            "return-path wait {} should be negligible",
            report.return_wait.mean()
        );

        // And d matches the plain (no-return) simulation within noise.
        let mut fwd2 =
            crate::OmegaNetwork::from_config(&cfg, crate::Admission::Simultaneous).expect("omega");
        let mut rng = SimRng::new(3);
        let plain =
            simulate_round_trip(&mut fwd2, &mut InstantReturn, &w, w.mu_n(), &opts, &mut rng);
        let a = report.queueing_delay.mean();
        let b = plain.queueing_delay.mean();
        assert!((a - b).abs() / b.max(1e-9) < 0.15, "d: {a} vs {b}");
    }

    #[test]
    #[should_panic(expected = "active return circuit")]
    fn double_release_is_a_bug() {
        let mut ret = OmegaReturnPath::new(4).expect("4x4");
        let t = ret.try_send(0, 0).expect("free");
        ret.end_return(t);
        ret.end_return(t);
    }
}
