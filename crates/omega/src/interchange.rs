//! The 2×2 interchange-box control automaton (Fig. 9 and Fig. 10).
//!
//! Each box carries five control signals per port — `Q` (resource request),
//! `L` (release), `S` (status), `J` (reject), `C` (resource found) — and a
//! one-bit resource-availability register per output port. The control
//! algorithm services signals in the paper's priority order: **releases,
//! then rejects, then queries, then founds** ("rejects are serviced before
//! queries because they belong to requests that have waited longer").
//!
//! Key behaviors reproduced here, each with the paper's rationale:
//!
//! * after a query is switched to an output port, that port's availability
//!   register is **zeroed** — resources are no longer reachable through it
//!   until fresh status arrives;
//! * when a connection is **released**, the registers do *not* change —
//!   "resources may still be processing the tasks";
//! * a **reject** arriving on an output port retries the box's other port
//!   if its register is set, and otherwise propagates the reject upstream.
//!
//! The network-level engine ([`MultistageState`](crate::MultistageState))
//! models whole-fabric resolution; this module pins down the per-box
//! contract at the signal level, the way [`rsin_xbar::Cell`] pins down
//! Table I.
//!
//! [`rsin_xbar::Cell`]: https://docs.rs/rsin-xbar

/// Outcome of a query (`Q`) arriving on an input port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryOutcome {
    /// The query was switched to this output port (register now zeroed).
    Forwarded {
        /// Output port (0 = upper, 1 = lower).
        output: usize,
    },
    /// No output port had availability: reject `J` returns upstream.
    Rejected,
}

/// Outcome of a reject (`J`) arriving on an output port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectOutcome {
    /// The request was re-switched to the box's other output port.
    Reforwarded {
        /// The newly tried output port.
        output: usize,
    },
    /// Both ports exhausted: the reject propagates to the input the request
    /// came from, and the connection state is cleared.
    PropagatedUp {
        /// Input port (0 = upper, 1 = lower) to send `J` to.
        input: usize,
    },
}

/// A 2×2 interchange box: availability registers plus connection state.
///
/// # Examples
///
/// ```
/// use rsin_omega::{InterchangeBox, QueryOutcome};
///
/// let mut b = InterchangeBox::new();
/// b.set_availability(0, true);
/// b.set_availability(1, true);
/// // Two simultaneous queries: both are switched, to distinct ports.
/// let q0 = b.query(0, 0);
/// let q1 = b.query(1, 1);
/// assert_eq!(q0, QueryOutcome::Forwarded { output: 0 });
/// assert_eq!(q1, QueryOutcome::Forwarded { output: 1 });
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InterchangeBox {
    /// Resource-availability registers `A_j` (true = ≥1 resource reachable).
    avail: [bool; 2],
    /// Which input is connected through each output port.
    conn_out: [Option<usize>; 2],
}

impl InterchangeBox {
    /// A box with empty registers and no connections.
    #[must_use]
    pub fn new() -> Self {
        InterchangeBox::default()
    }

    /// Updates the availability register of `output` from downstream status
    /// (`S`). Returns the box's input-side status if it *changed* — the
    /// signal that must be relayed to the previous stage ("if any change is
    /// detected, this status information is passed back").
    ///
    /// # Panics
    ///
    /// Panics if `output > 1`.
    pub fn set_availability(&mut self, output: usize, avail: bool) -> Option<bool> {
        assert!(output < 2, "output port out of range");
        let before = self.input_status();
        self.avail[output] = avail;
        let after = self.input_status();
        (after != before).then_some(after)
    }

    /// The status the box reports upstream: ≥1 resource reachable through
    /// some output port that is not already carrying a connection.
    #[must_use]
    pub fn input_status(&self) -> bool {
        (0..2).any(|j| self.avail[j] && self.conn_out[j].is_none())
    }

    /// The availability register of `output`.
    ///
    /// # Panics
    ///
    /// Panics if `output > 1`.
    #[must_use]
    pub fn availability(&self, output: usize) -> bool {
        self.avail[output]
    }

    /// Which input port (if any) holds `output`.
    ///
    /// # Panics
    ///
    /// Panics if `output > 1`.
    #[must_use]
    pub fn connection(&self, output: usize) -> Option<usize> {
        self.conn_out[output]
    }

    /// Services a query (`Q`) from `input`, preferring output `prefer`.
    /// On success the chosen register is zeroed and the connection latched.
    ///
    /// # Panics
    ///
    /// Panics if the ports are out of range or `input` already holds a
    /// connection through this box.
    pub fn query(&mut self, input: usize, prefer: usize) -> QueryOutcome {
        assert!(input < 2 && prefer < 2, "port out of range");
        assert!(
            !self.conn_out.contains(&Some(input)),
            "input {input} already connected through this box"
        );
        for &j in &[prefer, prefer ^ 1] {
            if self.avail[j] && self.conn_out[j].is_none() {
                self.conn_out[j] = Some(input);
                self.avail[j] = false; // the paper: register zeroed on query
                return QueryOutcome::Forwarded { output: j };
            }
        }
        QueryOutcome::Rejected
    }

    /// Services a reject (`J`) arriving on `output`. The failed port's
    /// register stays zero; the box retries its other port or propagates
    /// the reject to the originating input.
    ///
    /// # Panics
    ///
    /// Panics if `output > 1` or no connection is routed through `output`.
    pub fn reject(&mut self, output: usize) -> RejectOutcome {
        assert!(output < 2, "output port out of range");
        let input = self.conn_out[output]
            .take()
            .expect("reject must arrive on a connected output");
        let other = output ^ 1;
        if self.avail[other] && self.conn_out[other].is_none() {
            self.conn_out[other] = Some(input);
            self.avail[other] = false;
            RejectOutcome::Reforwarded { output: other }
        } else {
            RejectOutcome::PropagatedUp { input }
        }
    }

    /// Services a release (`L`) from `input`: the connection is torn down
    /// and the freed output port returned so `L` can continue downstream.
    /// Availability registers are deliberately *not* restored ("the status
    /// information does not change because resources may still be
    /// processing the tasks").
    ///
    /// # Panics
    ///
    /// Panics if `input > 1` or the input holds no connection.
    pub fn release(&mut self, input: usize) -> usize {
        assert!(input < 2, "input port out of range");
        for j in 0..2 {
            if self.conn_out[j] == Some(input) {
                self.conn_out[j] = None;
                return j;
            }
        }
        panic!("input {input} holds no connection to release");
    }

    /// Services a resource-found (`C`) arriving on `output`: returns the
    /// input port the confirmation must be relayed to.
    ///
    /// # Panics
    ///
    /// Panics if `output > 1` or no connection is routed through `output`.
    #[must_use]
    pub fn found(&self, output: usize) -> usize {
        assert!(output < 2, "output port out of range");
        self.conn_out[output].expect("resource-found must arrive on a connected output")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both_available() -> InterchangeBox {
        let mut b = InterchangeBox::new();
        b.set_availability(0, true);
        b.set_availability(1, true);
        b
    }

    #[test]
    fn status_change_is_reported_only_on_edges() {
        let mut b = InterchangeBox::new();
        assert_eq!(b.set_availability(0, true), Some(true), "0→1 edge relayed");
        assert_eq!(b.set_availability(1, true), None, "still true: no relay");
        assert_eq!(
            b.set_availability(0, false),
            None,
            "other port keeps it true"
        );
        assert_eq!(
            b.set_availability(1, false),
            Some(false),
            "1→0 edge relayed"
        );
    }

    #[test]
    fn query_zeroes_the_register() {
        let mut b = both_available();
        assert_eq!(b.query(0, 0), QueryOutcome::Forwarded { output: 0 });
        assert!(!b.availability(0), "register zeroed after query");
        assert!(b.availability(1));
        assert_eq!(b.connection(0), Some(0));
    }

    #[test]
    fn second_query_takes_the_other_port_then_rejects() {
        let mut b = both_available();
        let _ = b.query(0, 0);
        assert_eq!(b.query(1, 0), QueryOutcome::Forwarded { output: 1 });
        // Third query (after a release elsewhere) finds nothing.
        let mut c = InterchangeBox::new();
        assert_eq!(c.query(0, 0), QueryOutcome::Rejected);
    }

    #[test]
    fn reject_retries_other_port_then_propagates() {
        let mut b = both_available();
        assert_eq!(b.query(0, 0), QueryOutcome::Forwarded { output: 0 });
        // Downstream says no: the box retries port 1.
        assert_eq!(b.reject(0), RejectOutcome::Reforwarded { output: 1 });
        assert_eq!(b.connection(1), Some(0));
        // Port 1 also fails: the reject goes upstream to input 0.
        assert_eq!(b.reject(1), RejectOutcome::PropagatedUp { input: 0 });
        assert_eq!(b.connection(0), None);
        assert_eq!(b.connection(1), None);
    }

    #[test]
    fn release_keeps_registers_stale() {
        let mut b = both_available();
        let QueryOutcome::Forwarded { output } = b.query(1, 1) else {
            panic!("query must forward");
        };
        assert_eq!(b.release(1), output);
        assert!(
            !b.availability(output),
            "the paper: status does not change on release"
        );
        assert_eq!(b.connection(output), None);
    }

    #[test]
    fn found_identifies_the_requesting_input() {
        let mut b = both_available();
        let _ = b.query(1, 0);
        assert_eq!(b.found(0), 1);
    }

    #[test]
    fn input_status_accounts_for_held_ports() {
        let mut b = both_available();
        assert!(b.input_status());
        let _ = b.query(0, 0);
        assert!(b.input_status(), "port 1 still free");
        let _ = b.query(1, 1);
        assert!(!b.input_status(), "both ports held");
    }

    #[test]
    fn fig11_b11_conflict_plays_out() {
        // Fig. 11's stage-1 box: only one output has availability; two
        // queries arrive. The first is propagated, the second rejected —
        // and the rejected request must reroute through another box.
        let mut b = InterchangeBox::new();
        b.set_availability(0, true); // only the upper port reaches R4/R5
        assert_eq!(b.query(0, 0), QueryOutcome::Forwarded { output: 0 });
        assert_eq!(b.query(1, 0), QueryOutcome::Rejected);
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_query_from_same_input_is_a_bug() {
        let mut b = both_available();
        let _ = b.query(0, 0);
        let _ = b.query(0, 1);
    }

    #[test]
    #[should_panic(expected = "no connection")]
    fn release_without_connection_is_a_bug() {
        let mut b = InterchangeBox::new();
        let _ = b.release(0);
    }
}
