//! The blocking-probability experiment (Section V).
//!
//! The paper reports that distributed resource scheduling lowers the
//! blocking probability of an 8×8 Omega network to about **0.15**, versus
//! roughly **0.3** for the same network under conventional address mapping,
//! "based on random sets of requesting processors and available resources
//! and the fact that the network is free".
//!
//! This module reruns that Monte Carlo experiment: each trial draws a
//! random set of requesters (each processor requests with probability
//! `p_request`) and a random set of available resources (each port free
//! with probability `p_free`) on an otherwise idle network, then measures
//! the fraction of requests each discipline fails to connect (requests
//! beyond the free-resource supply count as blocked, as in the
//! measurements the paper cites).

use crate::resolver::{Admission, OmegaState};
use rsin_des::SimRng;
use rsin_topology::{Multistage, OmegaTopology, Route};

/// Parameters of the Monte Carlo blocking experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockingExperiment {
    /// Network size `N` (power of two ≥ 2).
    pub size: usize,
    /// Probability that a processor requests in a trial.
    pub p_request: f64,
    /// Probability that an output port has a free resource in a trial.
    pub p_free: f64,
    /// Number of Monte Carlo trials.
    pub trials: u32,
}

impl Default for BlockingExperiment {
    fn default() -> Self {
        BlockingExperiment {
            size: 8,
            p_request: 0.5,
            p_free: 0.5,
            trials: 20_000,
        }
    }
}

/// Measured blocking probabilities for both disciplines.
///
/// Two views are reported. The *total* blocking probability counts every
/// unserved request (including those no scheduler could serve because
/// requests outnumbered free resources); the *network-caused* probability
/// counts only requests blocked below the `min(#requests, #free)` ceiling —
/// the part the scheduling discipline is responsible for.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockingResult {
    /// Total blocking under distributed resource scheduling (the RSIN).
    pub rsin: f64,
    /// Total blocking under address mapping with a random assigner.
    pub address_mapping: f64,
    /// Network-caused blocking under the RSIN.
    pub rsin_network: f64,
    /// Network-caused blocking under address mapping.
    pub address_mapping_network: f64,
    /// Total requests observed across trials (the denominator).
    pub requests: u64,
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics if the probabilities are outside `[0, 1]`, `trials == 0`, or the
/// size is not a power of two ≥ 2.
#[must_use]
pub fn run_blocking_experiment(exp: &BlockingExperiment, rng: &mut SimRng) -> BlockingResult {
    assert!(exp.trials > 0, "need at least one trial");
    assert!(
        (0.0..=1.0).contains(&exp.p_request),
        "p_request out of range"
    );
    assert!((0.0..=1.0).contains(&exp.p_free), "p_free out of range");
    let topo = OmegaTopology::new(exp.size).unwrap_or_else(|e| panic!("invalid network size: {e}"));

    let mut requests_total: u64 = 0;
    let mut rsin_blocked: u64 = 0;
    let mut am_blocked: u64 = 0;
    let mut rsin_net_blocked: u64 = 0;
    let mut am_net_blocked: u64 = 0;

    for _ in 0..exp.trials {
        let requesters: Vec<usize> = (0..exp.size)
            .filter(|_| rng.chance(exp.p_request))
            .collect();
        let free: Vec<usize> = (0..exp.size).filter(|_| rng.chance(exp.p_free)).collect();
        if requesters.is_empty() {
            continue;
        }
        let x = requesters.len() as u64;
        requests_total += x;

        // RSIN: distributed scheduling on a free network.
        let mut net = OmegaState::new(exp.size, 1).expect("validated size");
        for port in 0..exp.size {
            if !free.contains(&port) {
                net.occupy_resource(port);
            }
        }
        let cap = (requesters.len().min(free.len())) as u64;
        let res = net.resolve(&requesters, Admission::Simultaneous);
        rsin_blocked += x - res.granted.len() as u64;
        rsin_net_blocked += cap - (res.granted.len() as u64).min(cap);

        // Address mapping: random assignment of distinct free ports, routed
        // in random order on a free network; earlier circuits block later.
        let mut order = requesters.clone();
        rng.shuffle(&mut order);
        let mut ports = free.clone();
        rng.shuffle(&mut ports);
        let mut held: Vec<Route> = Vec::new();
        let mut granted: u64 = 0;
        for (proc, port) in order.iter().zip(&ports) {
            let route = topo.route(*proc, *port);
            if held.iter().all(|h| !h.conflicts_with(&route)) {
                held.push(route);
                granted += 1;
            }
        }
        am_blocked += x - granted;
        am_net_blocked += cap - granted.min(cap);
    }

    let denom = requests_total.max(1) as f64;
    BlockingResult {
        rsin: rsin_blocked as f64 / denom,
        address_mapping: am_blocked as f64 / denom,
        rsin_network: rsin_net_blocked as f64 / denom,
        address_mapping_network: am_net_blocked as f64 / denom,
        requests: requests_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rsin_blocks_less_than_address_mapping() {
        let mut rng = SimRng::new(1983);
        let exp = BlockingExperiment {
            trials: 4_000,
            ..BlockingExperiment::default()
        };
        let res = run_blocking_experiment(&exp, &mut rng);
        assert!(
            res.rsin < res.address_mapping,
            "RSIN {} must block less than address mapping {}",
            res.rsin,
            res.address_mapping
        );
        // The scheduling discipline's own contribution shows a wide gap:
        // the RSIN's ability to divert mid-network at least halves the
        // network-caused blocking.
        assert!(
            res.rsin_network * 2.0 < res.address_mapping_network,
            "network-caused blocking: RSIN {} vs AM {}",
            res.rsin_network,
            res.address_mapping_network
        );
    }

    #[test]
    fn magnitudes_match_the_papers_8x8_claims() {
        // Paper: ≈0.15 for the RSIN vs ≈0.3 for address mapping. Allow wide
        // but meaningful bands — the shape (2× gap, right ballpark) is the
        // reproduction target.
        let mut rng = SimRng::new(42);
        let exp = BlockingExperiment {
            trials: 8_000,
            ..BlockingExperiment::default()
        };
        let res = run_blocking_experiment(&exp, &mut rng);
        assert!(
            (0.05..=0.25).contains(&res.rsin),
            "RSIN blocking {} should be near 0.15",
            res.rsin
        );
        assert!(
            (0.18..=0.42).contains(&res.address_mapping),
            "address-mapping blocking {} should be near 0.3",
            res.address_mapping
        );
    }

    #[test]
    fn zero_free_probability_blocks_everything() {
        let mut rng = SimRng::new(7);
        let exp = BlockingExperiment {
            p_free: 0.0,
            trials: 100,
            ..BlockingExperiment::default()
        };
        let res = run_blocking_experiment(&exp, &mut rng);
        assert!(res.requests > 0);
        assert_eq!(res.rsin, 1.0, "no free resource ⇒ every request blocks");
        assert_eq!(res.address_mapping, 1.0);
    }

    #[test]
    fn full_availability_on_identity_requests_never_blocks_rsin() {
        // Everyone requests and everything is free: the RSIN must serve all
        // N (a perfect matching always exists; the resolver searches).
        let mut rng = SimRng::new(9);
        let exp = BlockingExperiment {
            size: 8,
            p_request: 1.0,
            p_free: 1.0,
            trials: 50,
        };
        let res = run_blocking_experiment(&exp, &mut rng);
        assert!(
            res.rsin < 0.05,
            "with everything free the RSIN should almost never block, got {}",
            res.rsin
        );
    }
}
