//! Distributed request resolution in a multistage network (Section V,
//! Figs. 9–11).
//!
//! Scheduling intelligence lives in the 2×2 interchange boxes. The protocol
//! has two conceptually concurrent phases:
//!
//! * **Status phase** — each output port's resource controller reports
//!   whether ≥ 1 attached resource is free; every box ORs the availability
//!   reachable through each of its output ports (over *free* links) into its
//!   resource-availability registers and relays changes upstream. A
//!   processor only submits a request while its stage-0 box reports
//!   something reachable.
//! * **Request phase** — requests propagate one stage per step, each box
//!   switching a query toward an output port whose availability register is
//!   set. When a port is taken by a competing request (the register was
//!   outdated), the box emits a reject `J`; the request backtracks one
//!   stage, the failed port is marked, and an alternate port is tried —
//!   exactly the rerouting of the paper's Fig. 11 example. A request that
//!   backtracks out of the network is rejected to its processor and retried
//!   at the next status change.
//!
//! The algorithm is described in the paper for the Omega network but "is
//! applicable to other types of multistage networks as well"; this engine is
//! parameterized by the interstage [`Wiring`] and also implements the
//! indirect binary n-cube.
//!
//! Two fidelity knobs reproduce remarks from the paper:
//!
//! * [`Admission`] — lock-step simultaneous entry (clocked boxes, "may cause
//!   undue conflict") versus staggered entry (the randomized-delay remedy).
//! * [`StatusFreshness`] — whether availability registers refresh
//!   continuously during resolution or only at the epoch start ("requests
//!   continue to propagate in the presence of possibly outdated status
//!   information. This tends to lengthen the time to find a free resource").

use rsin_bitslice::{
    clear_bit, or_pairs_compress, set_bit, swap_or, tail_mask, tile_double, words_for,
};
use rsin_core::{default_resolver_engine, ResolverEngine};
use rsin_topology::{bit, shuffle, with_bit, Link};

/// A granted circuit: the processor, the output port reached, and the links
/// held until the end of transmission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Circuit {
    /// Requesting processor (input-port index).
    pub processor: usize,
    /// Output port whose resource pool accepted the task.
    pub port: usize,
    /// Links occupied by the circuit, one per stage.
    pub links: Vec<Link>,
}

/// Result of one resolution epoch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Resolution {
    /// Circuits established this epoch.
    pub granted: Vec<Circuit>,
    /// Processors whose requests were rejected (to be retried later).
    pub rejected: Vec<usize>,
    /// Processors that did not submit because no resource was reachable.
    pub not_submitted: Vec<usize>,
    /// Interchange-box visits accumulated by all requests (the paper's
    /// "boxes passed through" measure; Fig. 11 averages 3.5).
    pub box_visits: u64,
}

/// Admission discipline for a resolution epoch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Admission {
    /// All requests advance in lock-step rounds (clocked boxes — the
    /// paper's default, which "may cause undue conflict").
    #[default]
    Simultaneous,
    /// Requests are admitted one at a time, each seeing fully settled
    /// status — the paper's randomized-delay remedy, as an ablation.
    Staggered,
}

/// How quickly status information reaches the availability registers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StatusFreshness {
    /// Registers recompute every round — the paper's continuous OR loop
    /// with negligible propagation delay (assumption (c)).
    #[default]
    Continuous,
    /// Registers are computed once when the epoch starts and go stale as
    /// competing requests claim links — the "outdated status information"
    /// regime, which forces extra rejects and reroutes.
    EpochStart,
}

/// Interstage wiring of the multistage network.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Wiring {
    /// Perfect shuffle before every stage (Lawrie's Omega network).
    #[default]
    Omega,
    /// Stage `k` pairs wires differing in address bit `k` (Pease's indirect
    /// binary n-cube). Stages are traversed from the most significant bit so
    /// the final stage fixes the low-order bit of the port.
    Cube,
}

impl Wiring {
    /// For a wire entering stage `k` (of `n`), the two output wires of its
    /// box, indexed by output-port bit, plus the "straight" output bit (the
    /// one keeping the signal on its own side of the box).
    fn box_outputs(self, bits: u32, k: u32, wire_in: usize) -> ([usize; 2], usize) {
        match self {
            Wiring::Omega => {
                let s = shuffle(bits, wire_in);
                let boxid = s >> 1;
                ([boxid << 1, (boxid << 1) | 1], s & 1)
            }
            Wiring::Cube => {
                // Traverse bits MSB→LSB so that the last stage's wire pair
                // is adjacent, matching the Omega convention that the final
                // choice selects the port's low bit.
                let fix = bits - 1 - k;
                (
                    [with_bit(wire_in, fix, 0), with_bit(wire_in, fix, 1)],
                    bit(wire_in, fix),
                )
            }
        }
    }

    /// The interchange box (`0 .. N/2`) of stage `k` that output wire
    /// `wire_out` leaves through. Each box owns exactly two output wires.
    fn box_of_output(self, bits: u32, k: u32, wire_out: usize) -> usize {
        match self {
            Wiring::Omega => wire_out >> 1,
            Wiring::Cube => {
                // The pair differs in bit `fix`: drop that bit.
                let fix = bits - 1 - k;
                let low = wire_out & ((1usize << fix) - 1);
                (wire_out >> (fix + 1) << fix) | low
            }
        }
    }
}

/// The link/resource state of one multistage RSIN plus the resolution
/// engine.
///
/// # Examples
///
/// ```
/// use rsin_omega::{Admission, OmegaState};
///
/// // The paper's Fig. 11 scenario: an 8×8 network with one resource per
/// // port; R2, R3, R6, R7 are busy; P0, P3, P4, P5 request.
/// let mut net = OmegaState::new(8, 1)?;
/// for port in [2, 3, 6, 7] {
///     net.occupy_resource(port);
/// }
/// let res = net.resolve(&[0, 3, 4, 5], Admission::Simultaneous);
/// assert_eq!(res.granted.len(), 4, "all four requests find resources");
/// # Ok::<(), rsin_topology::TopologyError>(())
/// ```
#[derive(Clone, Debug)]
pub struct MultistageState {
    bits: u32,
    size: usize,
    resources_per_port: u32,
    wiring: Wiring,
    freshness: StatusFreshness,
    /// Which reachability evaluator the status phase runs: the bit-sliced
    /// stage compilation (default) or the per-wire reference sweep. Both
    /// compute identical availability tables, so resolution is identical —
    /// property tests enforce it.
    engine: ResolverEngine,
    /// Words per packed wire row (`ceil(size / 64)`).
    words_per_row: usize,
    /// Link occupancy packed as `bits` rows of `words_per_row` lanes: bit
    /// `(stage, wire)` is held by an established circuit.
    link_busy: Vec<u64>,
    /// Busy resources per output port.
    busy_resources: Vec<u32>,
    /// Resource type hosted by each output port (all 0 when untyped).
    port_types: Vec<usize>,
    /// Output ports whose resource pool is offline (fault state).
    port_down: Vec<bool>,
    /// Packed status-phase source row: bit `w` set when port `w` is online
    /// with ≥ 1 free resource. Maintained incrementally by every
    /// occupy/release/fail/repair so the bit-sliced status phase starts from
    /// a ready-made lane vector.
    port_free: Vec<u64>,
    /// `box_down[stage * N/2 + box]`: failed interchange boxes. A failed box
    /// advertises no availability, so requests reroute around it; circuits
    /// already established through it complete normally (fail-open).
    box_down: Vec<bool>,
    /// The packed shadow of `box_down` on the wire axis: bit
    /// `(stage, wire_out)` set when the box owning `wire_out` is down —
    /// degraded fault masks clear whole lanes of the status wave.
    box_dead_wires: Vec<u64>,
    /// Packed per-type port masks (bit `w` set when `port_types[w] == t`),
    /// rebuilt by [`MultistageState::set_port_types`].
    type_masks: Vec<(usize, Vec<u64>)>,
    /// Reusable resolution scratch (claimed-link bits, per-type reachability
    /// tables, and flight arenas). Owned here so steady-state resolution does
    /// no per-round heap allocation; it carries no observable state between
    /// epochs.
    scratch: ResolverScratch,
}

/// Dense `rows × cols` bit matrix backed by `u64` words.
#[derive(Clone, Debug, Default)]
struct BitMatrix {
    words_per_row: usize,
    words: Vec<u64>,
}

impl BitMatrix {
    /// An empty matrix whose backing store can hold `words` words without
    /// reallocating, so a later [`BitMatrix::reset`] within that bound is
    /// allocation-free.
    fn with_word_capacity(words: usize) -> Self {
        BitMatrix {
            words_per_row: 0,
            words: Vec::with_capacity(words),
        }
    }

    /// Resizes to `rows × cols` and zeroes every bit, keeping the backing
    /// allocation.
    fn reset(&mut self, rows: usize, cols: usize) {
        self.words_per_row = cols.div_ceil(64);
        self.words.clear();
        self.words.resize(rows * self.words_per_row, 0);
    }

    #[inline]
    fn get(&self, row: usize, col: usize) -> bool {
        (self.words[row * self.words_per_row + col / 64] >> (col % 64)) & 1 != 0
    }

    #[inline]
    fn set(&mut self, row: usize, col: usize) {
        self.words[row * self.words_per_row + col / 64] |= 1 << (col % 64);
    }

    #[inline]
    fn clear_bit(&mut self, row: usize, col: usize) {
        self.words[row * self.words_per_row + col / 64] &= !(1 << (col % 64));
    }

    #[inline]
    fn row(&self, r: usize) -> &[u64] {
        &self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    #[inline]
    fn row_mut(&mut self, r: usize) -> &mut [u64] {
        &mut self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
    }
}

/// Per-epoch working storage for [`MultistageState::resolve_batch`].
#[derive(Clone, Debug, Default)]
struct ResolverScratch {
    /// `claimed[stage][wire]`: links claimed by in-flight requests.
    claimed: BitMatrix,
    /// One reachability table per resource type in flight, keyed by type.
    down: Vec<(usize, BitMatrix)>,
    /// Stage-wave lane buffers for the bit-sliced status phase.
    t_in: Vec<u64>,
    t_box: Vec<u64>,
    /// Duplicate-requester check buffer for `resolve`/`resolve_typed`.
    seen: Vec<bool>,
    /// Untyped→typed request adaptation buffer for `resolve`.
    typed: Vec<(usize, usize)>,
    /// Distinct requested types this epoch.
    types: Vec<usize>,
    /// In-flight request bookkeeping, plus the frame/link arenas the
    /// flights index with stride `stages` (a flight never holds more than
    /// one frame or link per stage).
    flights: Vec<Flight>,
    frames: Vec<Frame>,
    links: Vec<Link>,
}

impl ResolverScratch {
    /// Scratch pre-sized for an `N`-port, `bits`-stage network. Every buffer
    /// carries the capacity a full-occupancy single-type epoch needs, so even
    /// the *first* resolution after construction allocates nothing beyond the
    /// returned [`Resolution`] — that epoch is on the hot path of short-lived
    /// networks (one `down` table is pre-built; further resource types, a cold
    /// reconfiguration, grow the table on first use).
    fn preallocated(size: usize, bits: u32) -> Self {
        let n = bits as usize;
        let wpr = words_for(size);
        let mut down = Vec::with_capacity(4);
        down.push((0, BitMatrix::with_word_capacity((n + 1) * wpr)));
        ResolverScratch {
            claimed: BitMatrix::with_word_capacity(n * wpr),
            down,
            t_in: Vec::with_capacity(wpr),
            t_box: Vec::with_capacity(wpr),
            seen: Vec::with_capacity(size),
            typed: Vec::with_capacity(size),
            types: Vec::with_capacity(size),
            flights: Vec::with_capacity(size),
            frames: Vec::with_capacity(size * n),
            links: Vec::with_capacity(size * n),
        }
    }
}

/// The Omega-wired multistage RSIN state (the paper's primary subject).
pub type OmegaState = MultistageState;

#[derive(Clone, Copy, Debug)]
struct Frame {
    /// Input wire (boundary index) through which the box was entered.
    wire_in: usize,
    /// Output ports already tried (and failed) from this box.
    tried: [bool; 2],
}

/// One in-flight request. Its frames live at
/// `scratch.frames[index * stages ..][..frame_len]` and its claimed links at
/// `scratch.links[index * stages ..][..link_len]` — arena slots instead of
/// per-flight vectors, so an epoch allocates nothing for backtracking state.
#[derive(Clone, Copy, Debug)]
struct Flight {
    processor: usize,
    /// Requested resource type (0 in the untyped system).
    ty: usize,
    frame_len: usize,
    link_len: usize,
    state: FlightState,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FlightState {
    Active,
    Granted,
    Rejected,
}

impl MultistageState {
    /// Creates an idle Omega-wired `size × size` network with
    /// `resources_per_port` resources on every output port.
    ///
    /// # Errors
    ///
    /// [`rsin_topology::TopologyError`] unless `size` is a power of two ≥ 2.
    ///
    /// # Panics
    ///
    /// Panics if `resources_per_port == 0`.
    pub fn new(size: usize, resources_per_port: u32) -> Result<Self, rsin_topology::TopologyError> {
        Self::with_wiring(size, resources_per_port, Wiring::Omega)
    }

    /// Creates an idle indirect-binary-n-cube network.
    ///
    /// # Errors
    ///
    /// [`rsin_topology::TopologyError`] unless `size` is a power of two ≥ 2.
    ///
    /// # Panics
    ///
    /// Panics if `resources_per_port == 0`.
    pub fn new_cube(
        size: usize,
        resources_per_port: u32,
    ) -> Result<Self, rsin_topology::TopologyError> {
        Self::with_wiring(size, resources_per_port, Wiring::Cube)
    }

    /// Creates an idle network with explicit wiring.
    ///
    /// # Errors
    ///
    /// [`rsin_topology::TopologyError`] unless `size` is a power of two ≥ 2.
    ///
    /// # Panics
    ///
    /// Panics if `resources_per_port == 0`.
    pub fn with_wiring(
        size: usize,
        resources_per_port: u32,
        wiring: Wiring,
    ) -> Result<Self, rsin_topology::TopologyError> {
        assert!(
            resources_per_port > 0,
            "resources per port must be positive"
        );
        let bits = match rsin_topology::log2_exact(size) {
            Some(b) if b >= 1 => b,
            _ => return Err(rsin_topology::TopologyError::NotPowerOfTwo { size }),
        };
        let words_per_row = words_for(size);
        let mut all_ports = vec![u64::MAX; words_per_row];
        all_ports[words_per_row - 1] = tail_mask(size);
        Ok(MultistageState {
            bits,
            size,
            resources_per_port,
            wiring,
            freshness: StatusFreshness::Continuous,
            engine: default_resolver_engine(),
            words_per_row,
            link_busy: vec![0; bits as usize * words_per_row],
            busy_resources: vec![0; size],
            port_types: vec![0; size],
            port_down: vec![false; size],
            port_free: all_ports.clone(),
            box_down: vec![false; bits as usize * (size / 2)],
            box_dead_wires: vec![0; bits as usize * words_per_row],
            // All ports host type 0 until `set_port_types` says otherwise.
            type_masks: vec![(0, all_ports)],
            scratch: ResolverScratch::preallocated(size, bits),
        })
    }

    /// Selects the reachability evaluator (bit-sliced compilation or the
    /// per-wire reference oracle). Safe to flip at any time: both engines
    /// compute identical availability tables.
    pub fn set_resolver_engine(&mut self, engine: ResolverEngine) {
        self.engine = engine;
    }

    /// The reachability evaluator in force.
    #[must_use]
    pub fn resolver_engine(&self) -> ResolverEngine {
        self.engine
    }

    /// Refreshes `port`'s lane in the packed status-source row.
    #[inline]
    fn update_port_free(&mut self, port: usize) {
        if !self.port_down[port] && self.busy_resources[port] < self.resources_per_port {
            set_bit(&mut self.port_free, port);
        } else {
            clear_bit(&mut self.port_free, port);
        }
    }

    /// Flattened index of `box_id` in stage `stage`.
    #[inline]
    fn box_index(&self, stage: usize, box_id: usize) -> usize {
        stage * (self.size / 2) + box_id
    }

    /// Whether stage `k`'s link `wire` is held, read from the packed rows.
    #[inline]
    fn link_busy_at(&self, k: usize, wire: usize) -> bool {
        self.link_busy[k * self.words_per_row + wire / 64] & (1u64 << (wire % 64)) != 0
    }

    /// Rewrites the packed dead-wire lanes of (`stage`, `box_id`) after a
    /// box fault or repair (cold path).
    fn refresh_box_wires(&mut self, stage: u32, box_id: usize) {
        let dead = self.box_down[self.box_index(stage as usize, box_id)];
        let base = stage as usize * self.words_per_row;
        for w in 0..self.size {
            if self.wiring.box_of_output(self.bits, stage, w) == box_id {
                if dead {
                    set_bit(&mut self.box_dead_wires[base..], w);
                } else {
                    clear_bit(&mut self.box_dead_wires[base..], w);
                }
            }
        }
    }

    /// The packed port mask of resource type `ty`, if any port hosts it.
    #[inline]
    fn type_mask(&self, ty: usize) -> Option<&[u64]> {
        self.type_masks
            .iter()
            .find(|e| e.0 == ty)
            .map(|e| e.1.as_slice())
    }

    /// Rebuilds the packed per-type port masks from `port_types`.
    fn rebuild_type_masks(&mut self) {
        let wpr = self.words_per_row;
        self.type_masks.clear();
        for w in 0..self.size {
            let t = self.port_types[w];
            if let Some(pos) = self.type_masks.iter().position(|e| e.0 == t) {
                set_bit(&mut self.type_masks[pos].1, w);
            } else {
                let mut mask = vec![0u64; wpr];
                set_bit(&mut mask, w);
                self.type_masks.push((t, mask));
            }
        }
    }

    /// Sets how often availability registers refresh during resolution.
    pub fn set_status_freshness(&mut self, freshness: StatusFreshness) {
        self.freshness = freshness;
    }

    /// The status-freshness regime in force.
    #[must_use]
    pub fn status_freshness(&self) -> StatusFreshness {
        self.freshness
    }

    /// The interstage wiring.
    #[must_use]
    pub fn wiring(&self) -> Wiring {
        self.wiring
    }

    /// Assigns a resource type to every output port — the paper's
    /// multiple-resource-type extension ("the status signal S has to be
    /// sent for each type of resource"). Types are small dense integers.
    ///
    /// # Panics
    ///
    /// Panics if `types.len() != size`.
    pub fn set_port_types(&mut self, types: &[usize]) {
        assert_eq!(types.len(), self.size, "one type per output port");
        self.port_types.copy_from_slice(types);
        self.rebuild_type_masks();
    }

    /// The resource type hosted on `port`.
    ///
    /// # Panics
    ///
    /// Panics if the port is out of range.
    #[must_use]
    pub fn port_type(&self, port: usize) -> usize {
        self.port_types[port]
    }

    /// Network size `N`.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of box stages (`log2 N`).
    #[must_use]
    pub fn stages(&self) -> u32 {
        self.bits
    }

    /// Resources carried by each output port.
    #[must_use]
    pub fn resources_per_port(&self) -> u32 {
        self.resources_per_port
    }

    /// Marks one resource on `port` busy (e.g. to set up a scenario, or at
    /// the end of a transmission).
    ///
    /// # Panics
    ///
    /// Panics if the port is out of range or already fully busy.
    pub fn occupy_resource(&mut self, port: usize) {
        assert!(port < self.size, "port out of range");
        assert!(
            self.busy_resources[port] < self.resources_per_port,
            "port {port} has no free resource to occupy"
        );
        self.busy_resources[port] += 1;
        self.update_port_free(port);
    }

    /// Frees one resource on `port` (end of service).
    ///
    /// # Panics
    ///
    /// Panics if the port is out of range or has no busy resource.
    pub fn release_resource(&mut self, port: usize) {
        assert!(port < self.size, "port out of range");
        assert!(
            self.busy_resources[port] > 0,
            "port {port} has no busy resource"
        );
        self.busy_resources[port] -= 1;
        self.update_port_free(port);
    }

    /// Free resources currently on `port`.
    ///
    /// # Panics
    ///
    /// Panics if the port is out of range.
    #[must_use]
    pub fn free_resources(&self, port: usize) -> u32 {
        self.resources_per_port - self.busy_resources[port]
    }

    /// Releases the links of an established circuit (end of transmission).
    /// The resource itself stays busy until
    /// [`MultistageState::release_resource`].
    ///
    /// # Panics
    ///
    /// Panics if any link of the circuit is not currently held.
    pub fn release_circuit(&mut self, circuit: &Circuit) {
        for l in &circuit.links {
            let idx = l.stage as usize * self.words_per_row + l.wire / 64;
            let lane = 1u64 << (l.wire % 64);
            assert!(
                self.link_busy[idx] & lane != 0,
                "releasing a link that is not held: {l:?}"
            );
            self.link_busy[idx] &= !lane;
        }
    }

    /// Whether a link is currently held by a circuit.
    #[must_use]
    pub fn link_is_busy(&self, link: Link) -> bool {
        self.link_busy_at(link.stage as usize, link.wire)
    }

    /// Takes the resource pool on `port` offline and clears its busy count
    /// (callers release the casualties' circuits separately). Until
    /// repaired the port reports no availability. Returns `true` if the
    /// pool was up.
    ///
    /// # Panics
    ///
    /// Panics if the port is out of range.
    pub fn fail_port(&mut self, port: usize) -> bool {
        assert!(port < self.size, "port out of range");
        if self.port_down[port] {
            return false;
        }
        self.port_down[port] = true;
        self.busy_resources[port] = 0;
        self.update_port_free(port);
        true
    }

    /// Brings the pool on `port` back online at full capacity. Returns
    /// `true` if the pool was down.
    ///
    /// # Panics
    ///
    /// Panics if the port is out of range.
    pub fn repair_port(&mut self, port: usize) -> bool {
        assert!(port < self.size, "port out of range");
        let was = std::mem::replace(&mut self.port_down[port], false);
        self.update_port_free(port);
        was
    }

    /// Whether the resource pool on `port` is offline.
    ///
    /// # Panics
    ///
    /// Panics if the port is out of range.
    #[must_use]
    pub fn port_is_down(&self, port: usize) -> bool {
        assert!(port < self.size, "port out of range");
        self.port_down[port]
    }

    /// Number of interchange boxes per stage (`N/2`).
    #[must_use]
    pub fn boxes_per_stage(&self) -> usize {
        self.size / 2
    }

    /// Fails interchange box `box_id` of stage `stage`. The box advertises
    /// no availability and routes no new request, so reject-backtracking
    /// reroutes around it; circuits already holding links through it
    /// complete normally (fail-open). Returns `true` if the box was up.
    ///
    /// # Panics
    ///
    /// Panics if the stage or box index is out of range.
    pub fn fail_box(&mut self, stage: u32, box_id: usize) -> bool {
        assert!(stage < self.bits, "stage out of range");
        assert!(box_id < self.size / 2, "box out of range");
        let idx = self.box_index(stage as usize, box_id);
        let was = std::mem::replace(&mut self.box_down[idx], true);
        self.refresh_box_wires(stage, box_id);
        !was
    }

    /// Repairs interchange box `box_id` of stage `stage`. Returns `true`
    /// if the box was down.
    ///
    /// # Panics
    ///
    /// Panics if the stage or box index is out of range.
    pub fn repair_box(&mut self, stage: u32, box_id: usize) -> bool {
        assert!(stage < self.bits, "stage out of range");
        assert!(box_id < self.size / 2, "box out of range");
        let idx = self.box_index(stage as usize, box_id);
        let was = std::mem::replace(&mut self.box_down[idx], false);
        self.refresh_box_wires(stage, box_id);
        was
    }

    /// Whether interchange box `box_id` of stage `stage` is failed.
    ///
    /// # Panics
    ///
    /// Panics if the stage or box index is out of range.
    #[must_use]
    pub fn box_is_down(&self, stage: u32, box_id: usize) -> bool {
        assert!(stage < self.bits, "stage out of range");
        assert!(box_id < self.size / 2, "box out of range");
        self.box_down[self.box_index(stage as usize, box_id)]
    }

    /// Runs one resolution epoch for `requesters` (distinct processor
    /// indices). Granted circuits immediately occupy their links.
    ///
    /// # Panics
    ///
    /// Panics if a requester index is out of range or duplicated.
    pub fn resolve(&mut self, requesters: &[usize], admission: Admission) -> Resolution {
        self.check_distinct(requesters.iter().copied());
        let mut typed = std::mem::take(&mut self.scratch.typed);
        typed.clear();
        typed.extend(requesters.iter().map(|&p| (p, 0)));
        let res = match admission {
            Admission::Simultaneous => self.resolve_batch(&typed),
            Admission::Staggered => {
                let mut total = Resolution::default();
                for &req in &typed {
                    let r = self.resolve_batch(&[req]);
                    total.granted.extend(r.granted);
                    total.rejected.extend(r.rejected);
                    total.not_submitted.extend(r.not_submitted);
                    total.box_visits += r.box_visits;
                }
                total
            }
        };
        self.scratch.typed = typed;
        res
    }

    /// Panics unless every requester index is in range and distinct.
    fn check_distinct(&mut self, requesters: impl Iterator<Item = usize>) {
        let seen = &mut self.scratch.seen;
        seen.clear();
        seen.resize(self.size, false);
        for p in requesters {
            assert!(p < self.size, "processor {p} out of range");
            assert!(!seen[p], "processor {p} duplicated");
            seen[p] = true;
        }
    }

    /// Runs one resolution epoch for typed requests `(processor, type)`.
    /// A request of type `t` is only routed toward ports whose
    /// [`MultistageState::port_type`] equals `t` — per-type availability
    /// registers, exactly as the paper's extension describes.
    ///
    /// # Panics
    ///
    /// Panics if a processor index is out of range or duplicated.
    pub fn resolve_typed(
        &mut self,
        requests: &[(usize, usize)],
        admission: Admission,
    ) -> Resolution {
        self.check_distinct(requests.iter().map(|&(p, _)| p));
        match admission {
            Admission::Simultaneous => self.resolve_batch(requests),
            Admission::Staggered => {
                let mut total = Resolution::default();
                for &req in requests {
                    let r = self.resolve_batch(&[req]);
                    total.granted.extend(r.granted);
                    total.rejected.extend(r.rejected);
                    total.not_submitted.extend(r.not_submitted);
                    total.box_visits += r.box_visits;
                }
                total
            }
        }
    }

    /// Recomputes the availability of every boundary wire given current
    /// links plus `claimed` into `down`: bit `(k, w)` is set when ≥ 1 free
    /// resource **of type `ty`** is reachable from input wire `w` of stage
    /// `k` through free, unclaimed links. Dispatches on the configured
    /// [`ResolverEngine`]; both implementations produce identical tables.
    fn reachability_into(
        &self,
        claimed: &BitMatrix,
        ty: usize,
        down: &mut BitMatrix,
        t_in: &mut Vec<u64>,
        t_box: &mut Vec<u64>,
    ) {
        match self.engine {
            ResolverEngine::Bitslice => {
                self.reachability_bitslice_into(claimed, ty, down, t_in, t_box);
            }
            ResolverEngine::Reference => self.reachability_reference_into(claimed, ty, down),
        }
    }

    /// The reference oracle: one traversal per wire per stage, reading box
    /// topology on the fly. Kept verbatim as the semantic definition that
    /// the bit-sliced compilation is property-tested against.
    fn reachability_reference_into(&self, claimed: &BitMatrix, ty: usize, down: &mut BitMatrix) {
        let n = self.bits as usize;
        down.reset(n + 1, self.size);
        for w in 0..self.size {
            if !self.port_down[w]
                && self.port_types[w] == ty
                && self.busy_resources[w] < self.resources_per_port
            {
                down.set(n, w);
            }
        }
        for k in (0..n).rev() {
            for w_in in 0..self.size {
                let (outs, _) = self.wiring.box_outputs(self.bits, k as u32, w_in);
                // A failed box's availability registers are stuck at zero:
                // nothing is reachable through it.
                let box_id = self.wiring.box_of_output(self.bits, k as u32, outs[0]);
                let reach = !self.box_down[self.box_index(k, box_id)]
                    && outs.iter().any(|&wire_out| {
                        !self.link_busy_at(k, wire_out)
                            && !claimed.get(k, wire_out)
                            && down.get(k + 1, wire_out)
                    });
                if reach {
                    down.set(k, w_in);
                }
            }
        }
    }

    /// The bit-sliced status wave: each stage is a handful of whole-word
    /// AND/OR/shift operations on packed wire lanes instead of `N` per-wire
    /// traversals.
    ///
    /// Per stage `k` (walking from the resource side), the transmissible
    /// lanes are `t = down[k+1] & !link_busy[k] & !claimed[k] & !dead[k]`;
    /// a box input reaches stage `k+1` iff either of its two output wires
    /// is transmissible. Under Omega wiring, output wire `w`'s box is
    /// `w >> 1` and input wire `w` enters box `w mod N/2` — so the stage
    /// reduces to an even/odd pairwise OR compress followed by tiling the
    /// half-row twice. Under Cube wiring stage `k` pairs wires differing in
    /// bit `bits-1-k`, a single distance-`d` swap-OR. Tail lanes stay zero
    /// throughout because every row is ANDed against an already-clean row.
    fn reachability_bitslice_into(
        &self,
        claimed: &BitMatrix,
        ty: usize,
        down: &mut BitMatrix,
        t_in: &mut Vec<u64>,
        t_box: &mut Vec<u64>,
    ) {
        let n = self.bits as usize;
        let wpr = self.words_per_row;
        down.reset(n + 1, self.size);
        // Base row: online ports of the requested type with a free resource.
        // No port hosting `ty` (no mask) leaves the row all-zero.
        if let Some(mask) = self.type_mask(ty) {
            let base = down.row_mut(n);
            for w in 0..wpr {
                base[w] = self.port_free[w] & mask[w];
            }
        }
        t_in.clear();
        t_in.resize(wpr, 0);
        for k in (0..n).rev() {
            let busy = &self.link_busy[k * wpr..(k + 1) * wpr];
            let dead = &self.box_dead_wires[k * wpr..(k + 1) * wpr];
            let cl = claimed.row(k);
            let up = down.row(k + 1);
            for w in 0..wpr {
                t_in[w] = up[w] & !busy[w] & !cl[w] & !dead[w];
            }
            match self.wiring {
                Wiring::Omega => {
                    or_pairs_compress(t_in, self.size / 2, t_box);
                    tile_double(t_box, self.size / 2, t_in);
                    down.row_mut(k).copy_from_slice(&t_in[..wpr]);
                }
                Wiring::Cube => {
                    swap_or(t_in, 1usize << (self.bits - 1 - k as u32), t_box);
                    down.row_mut(k).copy_from_slice(&t_box[..wpr]);
                }
            }
        }
    }

    fn resolve_batch(&mut self, requesters: &[(usize, usize)]) -> Resolution {
        let n = self.bits as usize;
        // Detach the scratch so `&self` stays free for reachability scans.
        let mut scratch = std::mem::take(&mut self.scratch);
        let ResolverScratch {
            claimed,
            down,
            t_in,
            t_box,
            types,
            flights,
            frames,
            links,
            ..
        } = &mut scratch;
        claimed.reset(n, self.size);
        let mut res = Resolution::default();
        // One exact reservation instead of doubling growth as grants land.
        res.granted.reserve(requesters.len());

        // One availability-register table per resource type in flight (the
        // paper: "there is one register for each type of resources reachable
        // from this output port").
        types.clear();
        types.extend(requesters.iter().map(|&(_, t)| t));
        types.sort_unstable();
        types.dedup();
        down.truncate(types.len());
        down.resize_with(types.len(), Default::default);
        for (slot, &t) in down.iter_mut().zip(types.iter()) {
            slot.0 = t;
        }

        // Submission: a processor only enters the network while its box
        // reports reachable availability of its type (end of the status
        // phase).
        for (t, table) in down.iter_mut() {
            self.reachability_into(claimed, *t, table, t_in, t_box);
        }
        let lookup = |down: &[(usize, BitMatrix)], t: usize| -> usize {
            down.iter().position(|e| e.0 == t).expect("type present")
        };
        // Arena slots: flight `i` owns `frames[i*n..][..frame_len]` and
        // `links[i*n..][..link_len]`.
        let idle = Frame {
            wire_in: 0,
            tried: [false, false],
        };
        frames.clear();
        frames.resize(requesters.len() * n, idle);
        links.clear();
        links.resize(requesters.len() * n, Link { stage: 0, wire: 0 });
        flights.clear();
        for &(p, t) in requesters {
            if down[lookup(down, t)].1.get(0, p) {
                res.box_visits += 1; // enters its stage-0 box
                frames[flights.len() * n] = Frame {
                    wire_in: p,
                    tried: [false, false],
                };
                flights.push(Flight {
                    processor: p,
                    ty: t,
                    frame_len: 1,
                    link_len: 0,
                    state: FlightState::Active,
                });
            } else {
                res.not_submitted.push(p);
            }
        }

        // Lock-step rounds: one action per active flight per round.
        while flights.iter().any(|f| f.state == FlightState::Active) {
            if self.freshness == StatusFreshness::Continuous {
                for (t, table) in down.iter_mut() {
                    self.reachability_into(claimed, *t, table, t_in, t_box);
                }
            }
            for (fi, fl) in flights
                .iter_mut()
                .enumerate()
                .filter(|(_, f)| f.state == FlightState::Active)
            {
                let fbase = fi * n;
                let k = fl.link_len; // current stage
                let fl_down = &down[lookup(down, fl.ty)].1;
                let frame = frames[fbase + fl.frame_len - 1];
                let (outs, straight) = self.wiring.box_outputs(self.bits, k as u32, frame.wire_in);
                // A failed box switches nothing: the request sees an
                // immediate reject and backtracks.
                let box_dead = self.box_down
                    [self.box_index(k, self.wiring.box_of_output(self.bits, k as u32, outs[0]))];
                // Prefer the straight connection, then exchange.
                let preference = [straight, straight ^ 1];
                let mut advanced = false;
                for &out in &preference {
                    if box_dead || frame.tried[out] {
                        continue;
                    }
                    let wire_out = outs[out];
                    if self.link_busy_at(k, wire_out) || claimed.get(k, wire_out) {
                        continue;
                    }
                    if !fl_down.get(k + 1, wire_out) {
                        continue;
                    }
                    // A real collision can slip past stale registers: the
                    // final hop double-checks the resource itself.
                    if k + 1 == n
                        && (self.port_down[wire_out]
                            || self.busy_resources[wire_out] >= self.resources_per_port
                            || self.port_types[wire_out] != fl.ty)
                    {
                        continue;
                    }
                    // Claim the link (the box zeroes this availability
                    // register: resources are no longer reachable through it
                    // for anyone else until released).
                    claimed.set(k, wire_out);
                    links[fbase + fl.link_len] = Link {
                        stage: k as u32,
                        wire: wire_out,
                    };
                    fl.link_len += 1;
                    if k + 1 == n {
                        fl.state = FlightState::Granted;
                    } else {
                        res.box_visits += 1; // enters the next box
                        frames[fbase + fl.frame_len] = Frame {
                            wire_in: wire_out,
                            tried: [false, false],
                        };
                        fl.frame_len += 1;
                    }
                    advanced = true;
                    break;
                }
                if advanced {
                    continue;
                }
                // Reject J: backtrack one stage.
                if fl.frame_len == 1 {
                    fl.state = FlightState::Rejected;
                    continue;
                }
                fl.frame_len -= 1;
                fl.link_len -= 1;
                let undone = links[fbase + fl.link_len];
                claimed.clear_bit(undone.stage as usize, undone.wire);
                let parent = &mut frames[fbase + fl.frame_len - 1];
                let (parent_outs, _) =
                    self.wiring
                        .box_outputs(self.bits, fl.link_len as u32, parent.wire_in);
                let out_bit = usize::from(parent_outs[1] == undone.wire);
                parent.tried[out_bit] = true;
                res.box_visits += 1; // re-enters the parent box
            }
        }

        for (fi, fl) in flights.iter().enumerate() {
            let fbase = fi * n;
            match fl.state {
                FlightState::Granted => {
                    let held = &links[fbase..fbase + fl.link_len];
                    let port = held.last().expect("granted flight has links").wire;
                    for l in held {
                        set_bit(
                            &mut self.link_busy[l.stage as usize * self.words_per_row..],
                            l.wire,
                        );
                    }
                    res.granted.push(Circuit {
                        processor: fl.processor,
                        port,
                        links: held.to_vec(),
                    });
                }
                FlightState::Rejected => res.rejected.push(fl.processor),
                FlightState::Active => unreachable!("loop drains active flights"),
            }
        }
        self.scratch = scratch;
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig11_network() -> MultistageState {
        // Resources R0, R1, R4, R5 available; R2, R3, R6, R7 busy.
        let mut net = OmegaState::new(8, 1).expect("8x8");
        for port in [2, 3, 6, 7] {
            net.occupy_resource(port);
        }
        net
    }

    #[test]
    fn fig11_all_four_requests_are_served() {
        let mut net = fig11_network();
        let res = net.resolve(&[0, 3, 4, 5], Admission::Simultaneous);
        assert_eq!(res.granted.len(), 4, "rejected: {:?}", res.rejected);
        // Each granted port is one of the free resources, each used once.
        let mut ports: Vec<usize> = res.granted.iter().map(|c| c.port).collect();
        ports.sort_unstable();
        assert_eq!(ports, vec![0, 1, 4, 5]);
    }

    #[test]
    fn fig11_average_boxes_traversed() {
        // The paper reports 3.5 boxes per request on average: three direct
        // routes (3 boxes each) plus one reject-and-reroute (5 visits).
        let mut net = fig11_network();
        let res = net.resolve(&[0, 3, 4, 5], Admission::Simultaneous);
        let avg = res.box_visits as f64 / 4.0;
        assert!(
            (3.0..=4.0).contains(&avg),
            "average box visits {avg} should be near the paper's 3.5"
        );
    }

    #[test]
    fn granted_circuits_hold_their_links() {
        let mut net = OmegaState::new(8, 1).expect("8x8");
        let res = net.resolve(&[0], Admission::Simultaneous);
        let circuit = &res.granted[0];
        for l in &circuit.links {
            assert!(net.link_is_busy(*l));
        }
        // Release restores the links but not the resource.
        let c = circuit.clone();
        net.release_circuit(&c);
        for l in &c.links {
            assert!(!net.link_is_busy(*l));
        }
    }

    #[test]
    fn no_submission_when_nothing_is_free() {
        let mut net = OmegaState::new(4, 1).expect("4x4");
        for port in 0..4 {
            net.occupy_resource(port);
        }
        let res = net.resolve(&[0, 1], Admission::Simultaneous);
        assert!(res.granted.is_empty());
        assert_eq!(res.not_submitted.len(), 2);
        assert!(res.rejected.is_empty());
        assert_eq!(res.box_visits, 0, "status phase suppresses the queries");
    }

    #[test]
    fn contention_for_one_resource_rejects_loser() {
        let mut net = OmegaState::new(4, 1).expect("4x4");
        for port in 1..4 {
            net.occupy_resource(port);
        }
        let res = net.resolve(&[0, 1, 2, 3], Admission::Simultaneous);
        assert_eq!(res.granted.len(), 1);
        assert_eq!(res.granted[0].port, 0);
        assert_eq!(res.rejected.len() + res.not_submitted.len(), 3);
    }

    #[test]
    fn requests_search_alternate_resources_when_path_blocked() {
        // Distributed RSIN scheduling's selling point: a blocked path does
        // not doom the request while another free resource is reachable.
        let mut net = OmegaState::new(8, 1).expect("8x8");
        // First request takes a circuit and keeps it.
        let first = net.resolve(&[0], Admission::Simultaneous);
        assert_eq!(first.granted.len(), 1);
        // All other processors now request; 7 resources remain and at least
        // some links are held, yet everyone who can route should be served.
        let res = net.resolve(&[1, 2, 3, 4, 5, 6, 7], Admission::Simultaneous);
        assert!(
            res.granted.len() >= 5,
            "most requests should still find resources, got {}",
            res.granted.len()
        );
        // No two circuits share a link.
        let mut all_links: Vec<Link> = res
            .granted
            .iter()
            .chain(first.granted.iter())
            .flat_map(|c| c.links.iter().copied())
            .collect();
        let before = all_links.len();
        all_links.sort_unstable();
        all_links.dedup();
        assert_eq!(before, all_links.len(), "links must be exclusively held");
    }

    #[test]
    fn staggered_admission_never_grants_fewer_for_single_requests() {
        let mut a = fig11_network();
        let mut b = fig11_network();
        let sim = a.resolve(&[0, 3, 4, 5], Admission::Simultaneous);
        let stag = b.resolve(&[0, 3, 4, 5], Admission::Staggered);
        assert_eq!(sim.granted.len(), stag.granted.len());
    }

    #[test]
    fn multi_resource_ports_accept_multiple_tasks_sequentially() {
        let mut net = OmegaState::new(2, 2).expect("2x2");
        let g1 = net.resolve(&[0], Admission::Simultaneous);
        assert_eq!(g1.granted.len(), 1);
        let c1 = g1.granted[0].clone();
        // Transmission ends: link freed, resource busy.
        net.release_circuit(&c1);
        net.occupy_resource(c1.port);
        // Port still has one free resource: a new request may land there.
        let g2 = net.resolve(&[1], Admission::Simultaneous);
        assert_eq!(g2.granted.len(), 1);
    }

    #[test]
    fn resolve_rejects_out_of_range_and_duplicates() {
        let mut net = OmegaState::new(4, 1).expect("4x4");
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            net.resolve(&[9], Admission::Simultaneous)
        }));
        assert!(r.is_err());
        let mut net = OmegaState::new(4, 1).expect("4x4");
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            net.resolve(&[1, 1], Admission::Simultaneous)
        }));
        assert!(r.is_err());
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(OmegaState::new(6, 1).is_err());
        assert!(MultistageState::new_cube(10, 1).is_err());
    }

    // ---- faults -----------------------------------------------------------

    #[test]
    fn failed_port_reports_no_availability_until_repair() {
        let mut net = OmegaState::new(4, 1).expect("4x4");
        for port in 1..4 {
            net.fail_port(port);
        }
        assert!(!net.fail_port(1), "already down");
        // Only port 0 is alive: one grant, and it lands there.
        let res = net.resolve(&[0, 1, 2, 3], Admission::Simultaneous);
        assert_eq!(res.granted.len(), 1);
        assert_eq!(res.granted[0].port, 0);
        assert!(net.repair_port(1));
        assert!(!net.port_is_down(1));
        net.release_circuit(&res.granted[0].clone());
        net.occupy_resource(res.granted[0].port);
        let res2 = net.resolve(&[1], Admission::Simultaneous);
        assert_eq!(res2.granted.len(), 1);
        assert_eq!(res2.granted[0].port, 1, "repaired pool serves again");
    }

    #[test]
    fn failed_box_forces_reroute_around_it() {
        // Kill a final-stage box: its two ports become unreachable, but the
        // other six resources still are — every processor that can route
        // through the surviving fabric is served.
        let mut net = OmegaState::new(8, 1).expect("8x8");
        let last = net.stages() - 1;
        assert!(net.fail_box(last, 0));
        assert!(!net.fail_box(last, 0), "already failed");
        assert!(net.box_is_down(last, 0));
        let res = net.resolve(&[0, 1, 2, 3, 4, 5, 6, 7], Admission::Simultaneous);
        assert_eq!(res.granted.len(), 6, "rejected: {:?}", res.rejected);
        for c in &res.granted {
            assert!(
                !matches!(c.port, 0 | 1),
                "ports behind the dead box must be unreachable, got {}",
                c.port
            );
        }
    }

    #[test]
    fn failed_stage0_box_suppresses_its_processors() {
        // Stage-0 box 0 feeds processors 0 and 1 (Omega wiring): with it
        // dead, those processors see no availability and never submit.
        let mut net = OmegaState::new(8, 1).expect("8x8");
        // Find the stage-0 box of processor 0 by failing each in turn.
        let mut suppressed_box = None;
        for b in 0..net.boxes_per_stage() {
            net.fail_box(0, b);
            let r = net.resolve(&[0], Admission::Simultaneous);
            let gone = r.not_submitted == vec![0];
            for c in &r.granted {
                net.release_circuit(c);
            }
            net.repair_box(0, b);
            if gone {
                suppressed_box = Some(b);
                break;
            }
        }
        let b = suppressed_box.expect("some stage-0 box serves processor 0");
        net.fail_box(0, b);
        // Processor 1 enters a different stage-0 box (its shuffled wire
        // lands in box 1), so it still routes.
        let res = net.resolve(&[0, 1], Admission::Simultaneous);
        assert!(res.not_submitted.contains(&0));
        assert_eq!(res.granted.len(), 1, "the other processor still routes");
        assert_eq!(res.granted[0].processor, 1);
    }

    #[test]
    fn cube_box_faults_reroute_too() {
        let mut net = MultistageState::new_cube(8, 1).expect("8x8 cube");
        let last = net.stages() - 1;
        net.fail_box(last, 0);
        let res = net.resolve(&[0, 1, 2, 3, 4, 5, 6, 7], Admission::Simultaneous);
        assert_eq!(res.granted.len(), 6, "rejected: {:?}", res.rejected);
    }

    #[test]
    fn fail_port_clears_busy_count_and_repair_restores_capacity() {
        let mut net = OmegaState::new(4, 2).expect("4x4");
        net.occupy_resource(0);
        net.occupy_resource(0);
        net.fail_port(0);
        net.repair_port(0);
        assert_eq!(net.free_resources(0), 2, "full capacity after repair");
    }

    // ---- cube wiring ------------------------------------------------------

    #[test]
    fn cube_serves_all_when_everything_free() {
        let mut net = MultistageState::new_cube(8, 1).expect("8x8 cube");
        let res = net.resolve(&[0, 1, 2, 3, 4, 5, 6, 7], Admission::Simultaneous);
        assert_eq!(res.granted.len(), 8, "rejected: {:?}", res.rejected);
        let mut ports: Vec<usize> = res.granted.iter().map(|c| c.port).collect();
        ports.sort_unstable();
        assert_eq!(ports, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn cube_circuits_respect_link_exclusivity() {
        let mut net = MultistageState::new_cube(16, 1).expect("16x16 cube");
        let res = net.resolve(&[0, 3, 7, 9, 12], Admission::Simultaneous);
        let mut links: Vec<Link> = res
            .granted
            .iter()
            .flat_map(|c| c.links.iter().copied())
            .collect();
        let before = links.len();
        links.sort_unstable();
        links.dedup();
        assert_eq!(before, links.len());
        for c in &res.granted {
            assert_eq!(c.links.len(), 4, "one link per stage");
        }
    }

    #[test]
    fn cube_reroutes_like_the_paper_says() {
        // "A similar example can be generated for the indirect binary n-cube
        // network": with only some resources free, contention still resolves
        // by rerouting.
        let mut net = MultistageState::new_cube(8, 1).expect("8x8 cube");
        for port in [2, 3, 6, 7] {
            net.occupy_resource(port);
        }
        let res = net.resolve(&[0, 3, 4, 5], Admission::Simultaneous);
        assert_eq!(res.granted.len(), 4, "rejected: {:?}", res.rejected);
    }

    #[test]
    fn wiring_accessors() {
        let o = OmegaState::new(4, 1).expect("omega");
        assert_eq!(o.wiring(), Wiring::Omega);
        let c = MultistageState::new_cube(4, 1).expect("cube");
        assert_eq!(c.wiring(), Wiring::Cube);
    }

    // ---- status freshness -------------------------------------------------

    #[test]
    fn typed_requests_land_on_matching_ports() {
        let mut net = OmegaState::new(8, 1).expect("8x8");
        // Even ports host type 0, odd ports type 1 (interleaved placement).
        let types: Vec<usize> = (0..8).map(|p| p % 2).collect();
        net.set_port_types(&types);
        let res = net.resolve_typed(&[(0, 0), (1, 1), (2, 0), (3, 1)], Admission::Simultaneous);
        assert_eq!(res.granted.len(), 4, "rejected: {:?}", res.rejected);
        for c in &res.granted {
            let want = match c.processor {
                0 | 2 => 0,
                _ => 1,
            };
            assert_eq!(
                net.port_type(c.port),
                want,
                "P{} got R{}",
                c.processor,
                c.port
            );
        }
    }

    #[test]
    fn typed_exhaustion_is_per_type() {
        let mut net = OmegaState::new(4, 1).expect("4x4");
        net.set_port_types(&[0, 0, 1, 1]);
        net.occupy_resource(0);
        net.occupy_resource(1);
        // Type 0 exhausted: its request is not even submitted; type 1 flows.
        let res = net.resolve_typed(&[(0, 0), (1, 1)], Admission::Simultaneous);
        assert_eq!(res.granted.len(), 1);
        assert_eq!(res.granted[0].processor, 1);
        assert_eq!(res.not_submitted, vec![0]);
    }

    #[test]
    fn untyped_resolve_is_type_zero() {
        let mut net = OmegaState::new(4, 1).expect("4x4");
        net.set_port_types(&[0, 0, 1, 1]);
        // Untyped requests are type-0 requests: only 2 can ever be served.
        let res = net.resolve(&[0, 1, 2, 3], Admission::Simultaneous);
        assert_eq!(res.granted.len(), 2);
        for c in &res.granted {
            assert_eq!(net.port_type(c.port), 0);
        }
    }

    #[test]
    #[should_panic(expected = "one type per output port")]
    fn port_types_length_checked() {
        let mut net = OmegaState::new(4, 1).expect("4x4");
        net.set_port_types(&[0, 1]);
    }

    #[test]
    fn stale_status_never_grants_more() {
        // With epoch-start (stale) status, claims made by competing requests
        // are invisible to the registers, so requests walk into conflicts
        // and burn visits; grants can only stay equal or drop.
        for seed_ports in [[2usize, 3, 6, 7], [1, 3, 5, 7], [4, 5, 6, 7]] {
            let build = |fresh| {
                let mut net = OmegaState::new(8, 1).expect("8x8");
                net.set_status_freshness(fresh);
                for &p in &seed_ports {
                    net.occupy_resource(p);
                }
                net
            };
            let mut fresh = build(StatusFreshness::Continuous);
            let mut stale = build(StatusFreshness::EpochStart);
            let rf = fresh.resolve(&[0, 1, 2, 3], Admission::Simultaneous);
            let rs = stale.resolve(&[0, 1, 2, 3], Admission::Simultaneous);
            assert!(
                rs.granted.len() <= rf.granted.len(),
                "stale {} vs fresh {}",
                rs.granted.len(),
                rf.granted.len()
            );
        }
    }

    // ---- bit-sliced engine equivalence ------------------------------------

    /// Deterministic SplitMix-style generator so the fuzz corpus is stable.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u32 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (self.0 >> 33) as u32
        }

        fn below(&mut self, n: usize) -> usize {
            self.next() as usize % n
        }

        fn chance(&mut self, pct: u32) -> bool {
            self.next() % 100 < pct
        }
    }

    /// Scrambles a network into a random mid-simulation state: busy
    /// resources, held links, typed ports, and port/box casualties.
    fn scramble(net: &mut MultistageState, rng: &mut Lcg, types: usize) {
        let size = net.size();
        let mut port_types = vec![0usize; size];
        for t in &mut port_types {
            *t = rng.below(types);
        }
        net.set_port_types(&port_types);
        for port in 0..size {
            for _ in 0..net.resources_per_port() {
                if rng.chance(30) {
                    net.occupy_resource(port);
                }
            }
            if rng.chance(10) {
                net.fail_port(port);
            }
        }
        for stage in 0..net.stages() {
            for b in 0..net.boxes_per_stage() {
                if rng.chance(8) {
                    net.fail_box(stage, b);
                }
            }
            // Held links straight into the packed rows: reachability reads
            // them identically through both engines.
            let base = stage as usize * net.words_per_row;
            for w in 0..size {
                if rng.chance(15) {
                    set_bit(&mut net.link_busy[base..], w);
                }
            }
        }
    }

    /// The tentpole's core claim: the bit-sliced stage compilation computes
    /// the **same availability table, bit for bit**, as the per-wire
    /// reference oracle — across wirings, non-power-of-64 sizes (lane-tail
    /// masking), multi-word rows, typed ports, faults, and claimed links.
    #[test]
    fn bitslice_reachability_matches_reference_bit_for_bit() {
        let mut rng = Lcg(0x5eed);
        for wiring in [Wiring::Omega, Wiring::Cube] {
            for size in [2usize, 4, 8, 16, 32, 128] {
                for round in 0..8 {
                    let mut net = MultistageState::with_wiring(size, 2, wiring).expect("pow2");
                    scramble(&mut net, &mut rng, 1 + round % 3);
                    let mut claimed = BitMatrix::default();
                    claimed.reset(net.stages() as usize, size);
                    for row in 0..net.stages() as usize {
                        for w in 0..size {
                            if rng.chance(20) {
                                claimed.set(row, w);
                            }
                        }
                    }
                    let (mut fast, mut slow) = (BitMatrix::default(), BitMatrix::default());
                    let (mut t_in, mut t_box) = (Vec::new(), Vec::new());
                    for ty in 0..3 {
                        net.reachability_bitslice_into(
                            &claimed, ty, &mut fast, &mut t_in, &mut t_box,
                        );
                        net.reachability_reference_into(&claimed, ty, &mut slow);
                        assert_eq!(
                            fast.words, slow.words,
                            "{wiring:?} N={size} round={round} ty={ty}"
                        );
                    }
                }
            }
        }
    }

    /// Whole-resolution equivalence: identical `Resolution`s (grants in the
    /// same order, same rejects, same box-visit counts) from both engines on
    /// scrambled networks, for both admission disciplines and both
    /// freshness regimes, untyped and typed.
    #[test]
    fn engines_resolve_identically() {
        let mut rng = Lcg(0xfacade);
        for wiring in [Wiring::Omega, Wiring::Cube] {
            for size in [4usize, 8, 128] {
                for round in 0..4 {
                    let mut fast = MultistageState::with_wiring(size, 2, wiring).expect("pow2");
                    fast.set_resolver_engine(ResolverEngine::Bitslice);
                    scramble(&mut fast, &mut rng, 2);
                    let mut slow = fast.clone();
                    slow.set_resolver_engine(ResolverEngine::Reference);
                    let freshness = if round % 2 == 0 {
                        StatusFreshness::Continuous
                    } else {
                        StatusFreshness::EpochStart
                    };
                    fast.set_status_freshness(freshness);
                    slow.set_status_freshness(freshness);
                    let admission = if round < 2 {
                        Admission::Simultaneous
                    } else {
                        Admission::Staggered
                    };
                    let mut requests: Vec<(usize, usize)> = Vec::new();
                    for p in 0..size {
                        if rng.chance(60) {
                            let ty = rng.below(2);
                            requests.push((p, ty));
                        }
                    }
                    let ra = fast.resolve_typed(&requests, admission);
                    let rb = slow.resolve_typed(&requests, admission);
                    assert_eq!(ra, rb, "{wiring:?} N={size} round={round}");
                    assert_eq!(
                        fast.link_busy, slow.link_busy,
                        "held links diverged: {wiring:?} N={size} round={round}"
                    );
                }
            }
        }
    }

    #[test]
    fn engine_knob_round_trips() {
        let mut net = OmegaState::new(4, 1).expect("4x4");
        net.set_resolver_engine(ResolverEngine::Reference);
        assert_eq!(net.resolver_engine(), ResolverEngine::Reference);
        net.set_resolver_engine(ResolverEngine::Bitslice);
        assert_eq!(net.resolver_engine(), ResolverEngine::Bitslice);
    }

    #[test]
    fn stale_status_costs_more_box_visits_under_contention() {
        // All eight processors race for two free ports: stale registers
        // cause wasted walks toward already-claimed links.
        let build = |fresh| {
            let mut net = OmegaState::new(8, 1).expect("8x8");
            net.set_status_freshness(fresh);
            for p in 0..6 {
                net.occupy_resource(p);
            }
            net
        };
        let mut fresh = build(StatusFreshness::Continuous);
        let mut stale = build(StatusFreshness::EpochStart);
        let all: Vec<usize> = (0..8).collect();
        let rf = fresh.resolve(&all, Admission::Simultaneous);
        let rs = stale.resolve(&all, Admission::Simultaneous);
        assert!(
            rs.box_visits >= rf.box_visits,
            "stale {} visits vs fresh {}",
            rs.box_visits,
            rf.box_visits
        );
    }
}
