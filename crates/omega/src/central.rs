//! Centralized scheduling baseline for multistage networks (Section V's
//! complexity comparison).
//!
//! A centralized scheduler serves requests *sequentially*: a priority
//! circuit finds a free resource in `O(log₂ m)` gate delays and the network
//! switches are set in `O(log₂ N)`; but because the network blocks, "O(N)
//! trials have to be made before a successful connection can be
//! established. The delay for servicing N requests is thus O(N²·log₂ N)."
//! The distributed algorithm services *all* requests in `O(log₂ N)` —
//! independent of how many processors are requesting.
//!
//! [`SequentialScheduler`] makes the claim executable: it serves a request
//! batch exactly as the baseline would — request order, free resources
//! scanned in priority order, one routing trial per candidate — and counts
//! both the trials and the gate-delay bill.

use rsin_core::{Grant, NetworkCounters, ResourceNetwork};
use rsin_des::SimRng;
use rsin_topology::{Multistage, OmegaTopology, Route};
use std::collections::HashMap;

/// A sequential (centralized) scheduler over an `N × N` Omega network.
#[derive(Clone, Debug)]
pub struct SequentialScheduler {
    topo: OmegaTopology,
}

/// What serving a batch sequentially cost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SequentialOutcome {
    /// Granted (processor, port) pairs.
    pub granted: Vec<(usize, usize)>,
    /// Total candidate-resource trials (route attempts) performed.
    pub trials: u64,
    /// Total gate delays: each trial pays the priority-circuit search plus
    /// the switch-setting decode.
    pub gate_delays: u64,
}

impl SequentialScheduler {
    /// Builds a scheduler for an `size × size` Omega network.
    ///
    /// # Errors
    ///
    /// [`rsin_topology::TopologyError`] unless `size` is a power of two ≥ 2.
    pub fn new(size: usize) -> Result<Self, rsin_topology::TopologyError> {
        Ok(SequentialScheduler {
            topo: OmegaTopology::new(size)?,
        })
    }

    /// Gate delays per trial: `O(log₂ m)` to find a free resource plus
    /// `O(log₂ N)` to set the switches.
    #[must_use]
    pub fn per_trial_gate_delay(&self) -> u64 {
        2 * u64::from(self.topo.stages())
    }

    /// Worst-case gate delays to serve `n` requests: every request may try
    /// all `N` resources — the paper's `O(N²·log₂ N)` bound at `n = N`.
    #[must_use]
    pub fn worst_case_gate_delay(&self, n: usize) -> u64 {
        n as u64 * self.topo.size() as u64 * self.per_trial_gate_delay()
    }

    /// Gate delays for the *distributed* algorithm to resolve any batch:
    /// the status/request waves cross `log₂ N` stages of boxes, each
    /// costing `O(r·log₂ r)` with `r = 2`, independent of the batch size.
    #[must_use]
    pub fn distributed_gate_delay(&self) -> u64 {
        // 2 input-ports × log2(2) OR-levels + O(1) control, per stage.
        4 * u64::from(self.topo.stages())
    }

    /// Serves `requesters` sequentially against `free` resource ports on an
    /// otherwise idle network, counting trials. Each request scans the
    /// remaining free ports in priority (ascending) order and takes the
    /// first whose route avoids all circuits granted so far.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range for the network.
    #[must_use]
    pub fn serve(&self, requesters: &[usize], free: &[usize]) -> SequentialOutcome {
        self.serve_with_held(requesters, free, &[])
    }

    /// Like [`SequentialScheduler::serve`], but circuits in `held` are
    /// already established (in-flight transmissions): a candidate route
    /// conflicting with any of them costs a trial and is skipped.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range for the network.
    #[must_use]
    pub fn serve_with_held(
        &self,
        requesters: &[usize],
        free: &[usize],
        pre_held: &[Route],
    ) -> SequentialOutcome {
        let mut available: Vec<usize> = {
            let mut f = free.to_vec();
            f.sort_unstable();
            f
        };
        let mut held: Vec<Route> = pre_held.to_vec();
        let mut granted = Vec::new();
        let mut trials: u64 = 0;
        for &p in requesters {
            let mut taken = None;
            for (slot, &port) in available.iter().enumerate() {
                trials += 1;
                let route = self.topo.route(p, port);
                if held.iter().all(|h| !h.conflicts_with(&route)) {
                    held.push(route);
                    granted.push((p, port));
                    taken = Some(slot);
                    break;
                }
            }
            if let Some(slot) = taken {
                available.remove(slot);
            }
        }
        SequentialOutcome {
            granted,
            trials,
            gate_delays: trials * self.per_trial_gate_delay(),
        }
    }
}

/// The centralized-scheduler Omega RSIN: the same `N × N` circuit-switched
/// fabric as [`OmegaNetwork`](crate::OmegaNetwork), but every allocation
/// funnels through one [`SequentialScheduler`] — the paper's Section V
/// baseline made simulatable, and the fault study's single point of
/// failure.
///
/// Fault model: element 0 is the scheduler itself. While it is dead no new
/// circuit is established *anywhere* (in-flight transmissions complete —
/// fail-open — but delivered throughput collapses to zero until repair).
/// Resource-pool faults behave as in the distributed network.
///
/// # Examples
///
/// ```
/// use rsin_core::ResourceNetwork;
/// use rsin_omega::CentralOmegaNetwork;
///
/// let mut net = CentralOmegaNetwork::new(8, 2)?;
/// assert_eq!(net.processors(), 8);
/// assert_eq!(net.fault_elements(), 1, "the scheduler is the only element");
/// assert!(net.fail_element(0));
/// # Ok::<(), rsin_topology::TopologyError>(())
/// ```
#[derive(Debug)]
pub struct CentralOmegaNetwork {
    scheduler: SequentialScheduler,
    resources_per_port: u32,
    scheduler_up: bool,
    busy_resources: Vec<u32>,
    port_down: Vec<bool>,
    /// Routes held by in-flight transmissions, keyed by processor.
    transmitting: HashMap<usize, Route>,
    counters: NetworkCounters,
}

impl CentralOmegaNetwork {
    /// Builds a centrally scheduled `size × size` Omega RSIN with
    /// `resources_per_port` resources on every output port.
    ///
    /// # Errors
    ///
    /// [`rsin_topology::TopologyError`] unless `size` is a power of two ≥ 2.
    ///
    /// # Panics
    ///
    /// Panics if `resources_per_port == 0`.
    pub fn new(size: usize, resources_per_port: u32) -> Result<Self, rsin_topology::TopologyError> {
        assert!(
            resources_per_port > 0,
            "resources per port must be positive"
        );
        Ok(CentralOmegaNetwork {
            scheduler: SequentialScheduler::new(size)?,
            resources_per_port,
            scheduler_up: true,
            busy_resources: vec![0; size],
            port_down: vec![false; size],
            transmitting: HashMap::new(),
            counters: NetworkCounters::default(),
        })
    }

    /// Whether the central scheduler is currently operational.
    #[must_use]
    pub fn scheduler_up(&self) -> bool {
        self.scheduler_up
    }

    fn size(&self) -> usize {
        self.scheduler.topo.size()
    }
}

impl ResourceNetwork for CentralOmegaNetwork {
    fn processors(&self) -> usize {
        self.size()
    }

    fn total_resources(&self) -> usize {
        self.size() * self.resources_per_port as usize
    }

    fn request_cycle(&mut self, pending: &[bool], _rng: &mut SimRng) -> Vec<Grant> {
        assert_eq!(pending.len(), self.processors(), "pending vector size");
        let requesters: Vec<usize> = (0..self.size())
            .filter(|&p| pending[p] && !self.transmitting.contains_key(&p))
            .collect();
        if requesters.is_empty() {
            return Vec::new();
        }
        self.counters.attempts += requesters.len() as u64;
        if !self.scheduler_up {
            // Scheduler down: every request stalls at the scheduler's
            // doorstep. Nothing is allocated anywhere in the system.
            self.counters.rejections += requesters.len() as u64;
            return Vec::new();
        }
        let free: Vec<usize> = (0..self.size())
            .filter(|&j| !self.port_down[j] && self.busy_resources[j] < self.resources_per_port)
            .collect();
        let held: Vec<Route> = {
            let mut procs: Vec<usize> = self.transmitting.keys().copied().collect();
            procs.sort_unstable();
            procs
                .into_iter()
                .map(|p| self.transmitting[&p].clone())
                .collect()
        };
        let out = self.scheduler.serve_with_held(&requesters, &free, &held);
        self.counters.rejections += requesters.len() as u64 - out.granted.len() as u64;
        out.granted
            .into_iter()
            .map(|(p, port)| {
                self.transmitting
                    .insert(p, self.scheduler.topo.route(p, port));
                Grant { processor: p, port }
            })
            .collect()
    }

    fn end_transmission(&mut self, grant: Grant) {
        let route = self
            .transmitting
            .remove(&grant.processor)
            .expect("transmission ends only on an active circuit");
        debug_assert_eq!(route.dest, grant.port);
        self.busy_resources[grant.port] += 1;
        debug_assert!(self.busy_resources[grant.port] <= self.resources_per_port);
    }

    fn end_service(&mut self, grant: Grant) {
        if self.port_down[grant.port] {
            // The pool failed and was cleared while this task was in
            // flight; nothing is held any more.
            return;
        }
        debug_assert!(self.busy_resources[grant.port] > 0, "no busy resource");
        self.busy_resources[grant.port] -= 1;
    }

    fn fail_resource(&mut self, port: usize) -> bool {
        if self.port_down.get(port).copied() != Some(false) {
            return false;
        }
        self.port_down[port] = true;
        self.busy_resources[port] = 0;
        // Per the trait contract: tear down in-flight circuits terminating
        // at the dead port; the simulator requeues the casualties.
        self.transmitting.retain(|_, route| route.dest != port);
        self.counters.resource_failures += 1;
        true
    }

    fn repair_resource(&mut self, port: usize) -> bool {
        if self.port_down.get(port).copied() != Some(true) {
            return false;
        }
        self.port_down[port] = false;
        self.counters.resource_repairs += 1;
        true
    }

    fn fail_element(&mut self, element: usize) -> bool {
        if element != 0 || !self.scheduler_up {
            return false;
        }
        self.scheduler_up = false;
        self.counters.element_failures += 1;
        true
    }

    fn repair_element(&mut self, element: usize) -> bool {
        if element != 0 || self.scheduler_up {
            return false;
        }
        self.scheduler_up = true;
        self.counters.element_repairs += 1;
        true
    }

    fn fault_elements(&self) -> usize {
        1
    }

    fn take_counters(&mut self) -> NetworkCounters {
        std::mem::take(&mut self.counters)
    }

    fn label(&self) -> &'static str {
        "C-OMEGA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsin_des::SimRng;

    #[test]
    fn distributed_beats_centralized_worst_case_and_gap_grows() {
        let mut prev_ratio = 0.0;
        for size in [8usize, 16, 32, 64] {
            let s = SequentialScheduler::new(size).expect("power of two");
            let central = s.worst_case_gate_delay(size);
            let distributed = s.distributed_gate_delay();
            let ratio = central as f64 / distributed as f64;
            assert!(ratio > 1.0, "N={size}: centralized must be slower");
            assert!(ratio > prev_ratio, "the gap must widen with N");
            prev_ratio = ratio;
        }
    }

    #[test]
    fn sequential_service_counts_trials() {
        let s = SequentialScheduler::new(8).expect("8x8");
        // Everything free, everyone requesting: the first request succeeds
        // on trial 1; later ones may need retries past blocked routes.
        let all: Vec<usize> = (0..8).collect();
        let out = s.serve(&all, &all);
        assert!(out.trials >= 8, "at least one trial per request");
        assert_eq!(out.gate_delays, out.trials * s.per_trial_gate_delay());
        assert!(!out.granted.is_empty());
    }

    #[test]
    fn trials_grow_superlinearly_with_network_size() {
        // The executable version of the O(N²) trial bound: average trials
        // per request grows with N for full random batches.
        let mut rng = SimRng::new(11);
        let mut per_request = Vec::new();
        for size in [8usize, 32] {
            let s = SequentialScheduler::new(size).expect("power of two");
            let mut total = 0u64;
            let rounds = 40;
            for _ in 0..rounds {
                let mut requesters: Vec<usize> = (0..size).collect();
                rng.shuffle(&mut requesters);
                let free: Vec<usize> = (0..size).collect();
                total += s.serve(&requesters, &free).trials;
            }
            per_request.push(total as f64 / (rounds * size) as f64);
        }
        assert!(
            per_request[1] > per_request[0],
            "trials/request must grow with N: {per_request:?}"
        );
    }

    #[test]
    fn grants_are_conflict_free_and_within_inputs() {
        let s = SequentialScheduler::new(8).expect("8x8");
        let out = s.serve(&[0, 3, 5], &[1, 2, 6, 7]);
        assert!(out.granted.len() <= 3);
        for &(p, port) in &out.granted {
            assert!([0, 3, 5].contains(&p));
            assert!([1, 2, 6, 7].contains(&port));
        }
        // Distinct ports.
        let mut ports: Vec<usize> = out.granted.iter().map(|&(_, port)| port).collect();
        ports.sort_unstable();
        ports.dedup();
        assert_eq!(ports.len(), out.granted.len());
    }

    #[test]
    fn rejects_bad_size() {
        assert!(SequentialScheduler::new(6).is_err());
    }

    // ---- CentralOmegaNetwork ---------------------------------------------

    fn pending(n: usize, set: &[usize]) -> Vec<bool> {
        let mut v = vec![false; n];
        for &i in set {
            v[i] = true;
        }
        v
    }

    #[test]
    fn central_network_runs_the_task_lifecycle() {
        let mut net = CentralOmegaNetwork::new(8, 1).expect("8x8");
        let mut rng = SimRng::new(1);
        let g = net.request_cycle(&pending(8, &[0, 3, 5]), &mut rng);
        assert_eq!(g.len(), 3);
        for grant in g {
            net.end_transmission(grant);
            net.end_service(grant);
        }
    }

    #[test]
    fn scheduler_death_stops_all_allocation_until_repair() {
        let mut net = CentralOmegaNetwork::new(8, 2).expect("8x8");
        let mut rng = SimRng::new(1);
        assert!(net.fail_element(0));
        assert!(!net.fail_element(0), "already dead");
        // Plenty of free resources, but no scheduler: nothing is granted.
        let all: Vec<usize> = (0..8).collect();
        assert!(net.request_cycle(&pending(8, &all), &mut rng).is_empty());
        assert!(net.repair_element(0));
        assert_eq!(net.request_cycle(&pending(8, &all), &mut rng).len(), 8);
        let c = net.take_counters();
        assert_eq!(c.element_failures, 1);
        assert_eq!(c.element_repairs, 1);
        assert_eq!(c.rejections, 8, "one rejection per stalled request");
    }

    #[test]
    fn scheduler_death_is_fail_open_for_inflight_work() {
        let mut net = CentralOmegaNetwork::new(4, 1).expect("4x4");
        let mut rng = SimRng::new(1);
        let g = net.request_cycle(&pending(4, &[2]), &mut rng);
        assert_eq!(g.len(), 1);
        net.fail_element(0);
        // The established circuit still completes its lifecycle.
        net.end_transmission(g[0]);
        net.end_service(g[0]);
    }

    #[test]
    fn central_resource_faults_mirror_the_distributed_contract() {
        let mut net = CentralOmegaNetwork::new(4, 1).expect("4x4");
        let mut rng = SimRng::new(1);
        let g = net.request_cycle(&pending(4, &[0]), &mut rng);
        assert_eq!(g.len(), 1);
        assert!(net.fail_resource(g[0].port));
        // Casualty circuit released internally; the dead port is skipped.
        let g2 = net.request_cycle(&pending(4, &[0]), &mut rng);
        assert_eq!(g2.len(), 1);
        assert_ne!(g2[0].port, g[0].port);
        assert!(net.repair_resource(g[0].port));
        assert!(!net.repair_resource(g[0].port), "already up");
        assert!(!net.fail_resource(99), "out of range rejected");
    }

    #[test]
    fn in_flight_routes_block_conflicting_central_grants() {
        // With every port's route from processor 0 held, a second batch must
        // route around the held links — serve_with_held sees them.
        let mut net = CentralOmegaNetwork::new(4, 2).expect("4x4");
        let mut rng = SimRng::new(1);
        let g1 = net.request_cycle(&pending(4, &[0]), &mut rng);
        assert_eq!(g1.len(), 1);
        // Processor 0 is mid-transmission: its own re-request is ignored,
        // other processors may still be served.
        let g2 = net.request_cycle(&pending(4, &[0, 1]), &mut rng);
        assert_eq!(g2.len(), 1);
        assert_eq!(g2[0].processor, 1);
    }
}
