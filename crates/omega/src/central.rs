//! Centralized scheduling baseline for multistage networks (Section V's
//! complexity comparison).
//!
//! A centralized scheduler serves requests *sequentially*: a priority
//! circuit finds a free resource in `O(log₂ m)` gate delays and the network
//! switches are set in `O(log₂ N)`; but because the network blocks, "O(N)
//! trials have to be made before a successful connection can be
//! established. The delay for servicing N requests is thus O(N²·log₂ N)."
//! The distributed algorithm services *all* requests in `O(log₂ N)` —
//! independent of how many processors are requesting.
//!
//! [`SequentialScheduler`] makes the claim executable: it serves a request
//! batch exactly as the baseline would — request order, free resources
//! scanned in priority order, one routing trial per candidate — and counts
//! both the trials and the gate-delay bill.

use rsin_topology::{Multistage, OmegaTopology, Route};

/// A sequential (centralized) scheduler over an `N × N` Omega network.
#[derive(Clone, Debug)]
pub struct SequentialScheduler {
    topo: OmegaTopology,
}

/// What serving a batch sequentially cost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SequentialOutcome {
    /// Granted (processor, port) pairs.
    pub granted: Vec<(usize, usize)>,
    /// Total candidate-resource trials (route attempts) performed.
    pub trials: u64,
    /// Total gate delays: each trial pays the priority-circuit search plus
    /// the switch-setting decode.
    pub gate_delays: u64,
}

impl SequentialScheduler {
    /// Builds a scheduler for an `size × size` Omega network.
    ///
    /// # Errors
    ///
    /// [`rsin_topology::TopologyError`] unless `size` is a power of two ≥ 2.
    pub fn new(size: usize) -> Result<Self, rsin_topology::TopologyError> {
        Ok(SequentialScheduler {
            topo: OmegaTopology::new(size)?,
        })
    }

    /// Gate delays per trial: `O(log₂ m)` to find a free resource plus
    /// `O(log₂ N)` to set the switches.
    #[must_use]
    pub fn per_trial_gate_delay(&self) -> u64 {
        2 * u64::from(self.topo.stages())
    }

    /// Worst-case gate delays to serve `n` requests: every request may try
    /// all `N` resources — the paper's `O(N²·log₂ N)` bound at `n = N`.
    #[must_use]
    pub fn worst_case_gate_delay(&self, n: usize) -> u64 {
        n as u64 * self.topo.size() as u64 * self.per_trial_gate_delay()
    }

    /// Gate delays for the *distributed* algorithm to resolve any batch:
    /// the status/request waves cross `log₂ N` stages of boxes, each
    /// costing `O(r·log₂ r)` with `r = 2`, independent of the batch size.
    #[must_use]
    pub fn distributed_gate_delay(&self) -> u64 {
        // 2 input-ports × log2(2) OR-levels + O(1) control, per stage.
        4 * u64::from(self.topo.stages())
    }

    /// Serves `requesters` sequentially against `free` resource ports on an
    /// otherwise idle network, counting trials. Each request scans the
    /// remaining free ports in priority (ascending) order and takes the
    /// first whose route avoids all circuits granted so far.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range for the network.
    #[must_use]
    pub fn serve(&self, requesters: &[usize], free: &[usize]) -> SequentialOutcome {
        let mut available: Vec<usize> = {
            let mut f = free.to_vec();
            f.sort_unstable();
            f
        };
        let mut held: Vec<Route> = Vec::new();
        let mut granted = Vec::new();
        let mut trials: u64 = 0;
        for &p in requesters {
            let mut taken = None;
            for (slot, &port) in available.iter().enumerate() {
                trials += 1;
                let route = self.topo.route(p, port);
                if held.iter().all(|h| !h.conflicts_with(&route)) {
                    held.push(route);
                    granted.push((p, port));
                    taken = Some(slot);
                    break;
                }
            }
            if let Some(slot) = taken {
                available.remove(slot);
            }
        }
        SequentialOutcome {
            granted,
            trials,
            gate_delays: trials * self.per_trial_gate_delay(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsin_des::SimRng;

    #[test]
    fn distributed_beats_centralized_worst_case_and_gap_grows() {
        let mut prev_ratio = 0.0;
        for size in [8usize, 16, 32, 64] {
            let s = SequentialScheduler::new(size).expect("power of two");
            let central = s.worst_case_gate_delay(size);
            let distributed = s.distributed_gate_delay();
            let ratio = central as f64 / distributed as f64;
            assert!(ratio > 1.0, "N={size}: centralized must be slower");
            assert!(ratio > prev_ratio, "the gap must widen with N");
            prev_ratio = ratio;
        }
    }

    #[test]
    fn sequential_service_counts_trials() {
        let s = SequentialScheduler::new(8).expect("8x8");
        // Everything free, everyone requesting: the first request succeeds
        // on trial 1; later ones may need retries past blocked routes.
        let all: Vec<usize> = (0..8).collect();
        let out = s.serve(&all, &all);
        assert!(out.trials >= 8, "at least one trial per request");
        assert_eq!(out.gate_delays, out.trials * s.per_trial_gate_delay());
        assert!(!out.granted.is_empty());
    }

    #[test]
    fn trials_grow_superlinearly_with_network_size() {
        // The executable version of the O(N²) trial bound: average trials
        // per request grows with N for full random batches.
        let mut rng = SimRng::new(11);
        let mut per_request = Vec::new();
        for size in [8usize, 32] {
            let s = SequentialScheduler::new(size).expect("power of two");
            let mut total = 0u64;
            let rounds = 40;
            for _ in 0..rounds {
                let mut requesters: Vec<usize> = (0..size).collect();
                rng.shuffle(&mut requesters);
                let free: Vec<usize> = (0..size).collect();
                total += s.serve(&requesters, &free).trials;
            }
            per_request.push(total as f64 / (rounds * size) as f64);
        }
        assert!(
            per_request[1] > per_request[0],
            "trials/request must grow with N: {per_request:?}"
        );
    }

    #[test]
    fn grants_are_conflict_free_and_within_inputs() {
        let s = SequentialScheduler::new(8).expect("8x8");
        let out = s.serve(&[0, 3, 5], &[1, 2, 6, 7]);
        assert!(out.granted.len() <= 3);
        for &(p, port) in &out.granted {
            assert!([0, 3, 5].contains(&p));
            assert!([1, 2, 6, 7].contains(&port));
        }
        // Distinct ports.
        let mut ports: Vec<usize> = out.granted.iter().map(|&(_, port)| port).collect();
        ports.sort_unstable();
        ports.dedup();
        assert_eq!(ports.len(), out.granted.len());
    }

    #[test]
    fn rejects_bad_size() {
        assert!(SequentialScheduler::new(6).is_err());
    }
}
