//! The typed Omega RSIN: multiple resource types behind one network.
//!
//! Implements the paper's extension for "systems with single-resource
//! requests and multiple types of resources": the request signal `Q` carries
//! a type number, each output port hosts resources of one type, and the
//! interchange boxes keep one availability register per type per output
//! port. The scheduling overhead grows to `O(t · log₂ N)` for `t` types —
//! visible in the box-visit counters.
//!
//! The paper leaves "the number and placement of each type of resources in
//! the network" open; [`Placement`] provides the two natural layouts so the
//! question can be probed experimentally.

use crate::resolver::{Admission, Circuit, MultistageState, Wiring};
use rsin_core::typed::{TypedGrant, TypedResourceNetwork};
use rsin_core::NetworkCounters;
use rsin_des::SimRng;
use std::collections::HashMap;

/// How resource types are laid out across the output ports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Contiguous blocks: ports `[0, N/t)` host type 0, the next block
    /// type 1, and so on.
    #[default]
    Blocked,
    /// Round-robin: port `p` hosts type `p mod t`.
    Interleaved,
}

impl Placement {
    /// The type hosted by `port` in a network of `size` ports and `types`
    /// types.
    #[must_use]
    pub fn type_of(self, port: usize, size: usize, types: usize) -> usize {
        match self {
            Placement::Blocked => port / (size / types),
            Placement::Interleaved => port % types,
        }
    }
}

/// A typed, partitioned multistage RSIN.
///
/// # Examples
///
/// ```
/// use rsin_omega::{Admission, Placement, TypedOmegaNetwork};
/// use rsin_core::typed::TypedResourceNetwork;
///
/// // 8 ports, 2 resources each, split across 2 types.
/// let net = TypedOmegaNetwork::new(1, 8, 2, 2, Placement::Interleaved,
///                                  Admission::Simultaneous);
/// assert_eq!(net.processors(), 8);
/// assert_eq!(net.resource_types(), 2);
/// ```
#[derive(Debug)]
pub struct TypedOmegaNetwork {
    size: usize,
    types: usize,
    admission: Admission,
    placement: Placement,
    partitions: Vec<MultistageState>,
    circuits: HashMap<usize, Circuit>,
    counters: NetworkCounters,
}

impl TypedOmegaNetwork {
    /// Builds `partitions` independent `size × size` Omega networks hosting
    /// `types` resource types with `resources_per_port` resources per port.
    ///
    /// # Panics
    ///
    /// Panics if `partitions == 0`, `size` is not a power of two ≥ 2,
    /// `resources_per_port == 0`, `types == 0`, or `types` does not divide
    /// `size` (so every type gets equal capacity).
    #[must_use]
    pub fn new(
        partitions: usize,
        size: usize,
        resources_per_port: u32,
        types: usize,
        placement: Placement,
        admission: Admission,
    ) -> Self {
        assert!(partitions > 0, "need at least one partition");
        assert!(types > 0, "need at least one resource type");
        assert!(
            size.is_multiple_of(types),
            "types must divide the port count for equal capacity"
        );
        let port_types: Vec<usize> = (0..size)
            .map(|p| placement.type_of(p, size, types))
            .collect();
        let parts: Vec<MultistageState> = (0..partitions)
            .map(|_| {
                let mut st = MultistageState::with_wiring(size, resources_per_port, Wiring::Omega)
                    .unwrap_or_else(|e| panic!("invalid network size: {e}"));
                st.set_port_types(&port_types);
                st
            })
            .collect();
        TypedOmegaNetwork {
            size,
            types,
            admission,
            placement,
            partitions: parts,
            circuits: HashMap::new(),
            counters: NetworkCounters::default(),
        }
    }

    /// The placement policy in force.
    #[must_use]
    pub fn placement(&self) -> Placement {
        self.placement
    }
}

impl TypedResourceNetwork for TypedOmegaNetwork {
    fn processors(&self) -> usize {
        self.partitions.len() * self.size
    }

    fn resource_types(&self) -> usize {
        self.types
    }

    fn request_cycle(&mut self, pending: &[Option<usize>], _rng: &mut SimRng) -> Vec<TypedGrant> {
        assert_eq!(pending.len(), self.processors(), "pending vector size");
        let mut grants = Vec::new();
        for (pi, part) in self.partitions.iter_mut().enumerate() {
            let base = pi * self.size;
            let requests: Vec<(usize, usize)> = (0..self.size)
                .filter_map(|l| {
                    if self.circuits.contains_key(&(base + l)) {
                        return None;
                    }
                    pending[base + l].map(|t| (l, t))
                })
                .collect();
            if requests.is_empty() {
                continue;
            }
            self.counters.attempts += requests.len() as u64;
            let res = part.resolve_typed(&requests, self.admission);
            self.counters.boxes_traversed += res.box_visits;
            self.counters.rejections += (res.rejected.len() + res.not_submitted.len()) as u64;
            for circuit in res.granted {
                let proc = base + circuit.processor;
                let resource_type = part.port_type(circuit.port);
                let port = base + circuit.port;
                self.circuits.insert(proc, circuit);
                grants.push(TypedGrant {
                    processor: proc,
                    port,
                    resource_type,
                });
            }
        }
        grants
    }

    fn end_transmission(&mut self, grant: TypedGrant) {
        let pi = grant.processor / self.size;
        let circuit = self
            .circuits
            .remove(&grant.processor)
            .expect("transmission ends only on an active circuit");
        let part = &mut self.partitions[pi];
        part.release_circuit(&circuit);
        part.occupy_resource(circuit.port);
    }

    fn end_service(&mut self, grant: TypedGrant) {
        let pi = grant.port / self.size;
        self.partitions[pi].release_resource(grant.port % self.size);
    }

    fn take_counters(&mut self) -> NetworkCounters {
        std::mem::take(&mut self.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsin_core::typed::{simulate_typed, TypedWorkload};
    use rsin_core::{SimOptions, Workload};

    #[test]
    fn placement_layouts() {
        assert_eq!(Placement::Blocked.type_of(0, 8, 2), 0);
        assert_eq!(Placement::Blocked.type_of(3, 8, 2), 0);
        assert_eq!(Placement::Blocked.type_of(4, 8, 2), 1);
        assert_eq!(Placement::Interleaved.type_of(4, 8, 2), 0);
        assert_eq!(Placement::Interleaved.type_of(5, 8, 2), 1);
    }

    #[test]
    fn typed_grants_match_requested_types() {
        let mut net =
            TypedOmegaNetwork::new(1, 8, 1, 2, Placement::Blocked, Admission::Simultaneous);
        let mut rng = SimRng::new(1);
        let mut pending = vec![None; 8];
        pending[0] = Some(1);
        pending[3] = Some(0);
        pending[5] = Some(1);
        let grants = net.request_cycle(&pending, &mut rng);
        assert_eq!(grants.len(), 3);
        for g in &grants {
            let expect = match g.processor {
                3 => 0,
                _ => 1,
            };
            assert_eq!(g.resource_type, expect);
            assert_eq!(
                Placement::Blocked.type_of(g.port, 8, 2),
                expect,
                "port {} hosts the wrong type",
                g.port
            );
        }
        for g in grants {
            net.end_transmission(g);
            net.end_service(g);
        }
    }

    #[test]
    fn typed_simulation_end_to_end() {
        let base = Workload::new(0.05, 10.0, 1.0).expect("valid");
        let w = TypedWorkload::new(base, vec![0.5, 0.5]).expect("valid");
        let mut net =
            TypedOmegaNetwork::new(1, 16, 2, 2, Placement::Interleaved, Admission::Simultaneous);
        let mut rng = SimRng::new(9);
        let opts = SimOptions {
            warmup_tasks: 1_000,
            measured_tasks: 15_000,
        };
        let report = simulate_typed(&mut net, &w, &opts, &mut rng);
        assert_eq!(report.queueing_delay.count(), 15_000);
        assert!(report.per_type_delay[0].count() > 5_000);
        assert!(report.per_type_delay[1].count() > 5_000);
    }

    #[test]
    fn splitting_the_pool_into_types_increases_delay() {
        // Same hardware, same load: one universal type pools 16 ports;
        // two types give each task only 8 candidate ports. Less pooling,
        // more delay.
        let opts = SimOptions {
            warmup_tasks: 2_000,
            measured_tasks: 30_000,
        };
        let base = Workload::new(0.55, 10.0, 1.0).expect("valid");
        let run = |types: usize, mix: Vec<f64>| {
            let w = TypedWorkload::new(base, mix).expect("valid");
            let mut net = TypedOmegaNetwork::new(
                1,
                16,
                1,
                types,
                Placement::Interleaved,
                Admission::Simultaneous,
            );
            let mut rng = SimRng::new(77);
            simulate_typed(&mut net, &w, &opts, &mut rng).normalized_delay(&w)
        };
        let pooled = run(1, vec![1.0]);
        let split = run(2, vec![0.5, 0.5]);
        assert!(
            split > pooled,
            "two types ({split}) must queue longer than one pooled type ({pooled})"
        );
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn types_must_divide_ports() {
        let _ = TypedOmegaNetwork::new(1, 8, 1, 3, Placement::Blocked, Admission::Simultaneous);
    }
}
