//! The Omega RSIN as a simulatable [`ResourceNetwork`].
//!
//! `i` independent `j × j` Omega networks, each scheduling requests with the
//! distributed box protocol of [`OmegaState`]. Circuits hold their links for
//! the duration of the transmission; resources stay busy until service
//! completes; rejected requests stay queued at their processors and re-enter
//! at the next status change (the simulator's next decision epoch).

use crate::resolver::{Admission, Circuit, MultistageState, Wiring};
use rsin_core::{Grant, NetworkCounters, ResourceNetwork, SystemConfig};
use rsin_des::SimRng;
use std::collections::HashMap;

/// A partitioned Omega RSIN.
///
/// # Examples
///
/// ```
/// use rsin_core::{ResourceNetwork, SystemConfig};
/// use rsin_omega::{Admission, OmegaNetwork};
///
/// let cfg: SystemConfig = "16/1x16x16 OMEGA/2".parse()?;
/// let net = OmegaNetwork::from_config(&cfg, Admission::Simultaneous)?;
/// assert_eq!(net.processors(), 16);
/// assert_eq!(net.total_resources(), 32);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct OmegaNetwork {
    size: usize,
    resources_per_port: u32,
    admission: Admission,
    partitions: Vec<MultistageState>,
    /// Active circuits keyed by global processor index.
    circuits: HashMap<usize, Circuit>,
    counters: NetworkCounters,
    /// Per-partition requester list, reused across request cycles.
    requesters: Vec<usize>,
}

/// Error building an [`OmegaNetwork`] from a config of the wrong kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WrongKindError {
    /// The kind found in the configuration.
    pub found: rsin_core::NetworkKind,
}

impl std::fmt::Display for WrongKindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "expected an OMEGA configuration, got {}", self.found)
    }
}

impl std::error::Error for WrongKindError {}

impl OmegaNetwork {
    /// Builds the network described by `config` (kind must be
    /// [`NetworkKind::Omega`](rsin_core::NetworkKind::Omega)).
    ///
    /// # Errors
    ///
    /// [`WrongKindError`] when the configuration names another network type.
    pub fn from_config(
        config: &SystemConfig,
        admission: Admission,
    ) -> Result<Self, WrongKindError> {
        let wiring = match config.kind() {
            rsin_core::NetworkKind::Omega => Wiring::Omega,
            rsin_core::NetworkKind::Cube => Wiring::Cube,
            other => return Err(WrongKindError { found: other }),
        };
        Ok(OmegaNetwork::with_wiring(
            config.networks() as usize,
            config.inputs() as usize,
            config.resources_per_port(),
            admission,
            wiring,
        ))
    }

    /// Builds `partitions` independent `size × size` Omega networks with
    /// `resources_per_port` resources on every output port.
    ///
    /// # Panics
    ///
    /// Panics if `partitions == 0`, `size` is not a power of two ≥ 2, or
    /// `resources_per_port == 0`.
    #[must_use]
    pub fn new(
        partitions: usize,
        size: usize,
        resources_per_port: u32,
        admission: Admission,
    ) -> Self {
        Self::with_wiring(
            partitions,
            size,
            resources_per_port,
            admission,
            Wiring::Omega,
        )
    }

    /// Builds partitions with explicit interstage wiring (Omega or indirect
    /// binary n-cube).
    ///
    /// # Panics
    ///
    /// Panics if `partitions == 0`, `size` is not a power of two ≥ 2, or
    /// `resources_per_port == 0`.
    #[must_use]
    pub fn with_wiring(
        partitions: usize,
        size: usize,
        resources_per_port: u32,
        admission: Admission,
        wiring: Wiring,
    ) -> Self {
        assert!(partitions > 0, "need at least one partition");
        let parts: Vec<MultistageState> = (0..partitions)
            .map(|_| {
                MultistageState::with_wiring(size, resources_per_port, wiring)
                    .unwrap_or_else(|e| panic!("invalid network size: {e}"))
            })
            .collect();
        OmegaNetwork {
            size,
            resources_per_port,
            admission,
            partitions: parts,
            circuits: HashMap::new(),
            counters: NetworkCounters::default(),
            requesters: Vec::new(),
        }
    }

    /// The interstage wiring of every partition.
    #[must_use]
    pub fn wiring(&self) -> Wiring {
        self.partitions[0].wiring()
    }

    /// Sets the status-freshness regime on every partition (ablation knob).
    pub fn set_status_freshness(&mut self, freshness: crate::resolver::StatusFreshness) {
        for part in &mut self.partitions {
            part.set_status_freshness(freshness);
        }
    }

    /// Selects the reachability evaluator on every partition (the bit-sliced
    /// stage compilation or the per-wire reference oracle). Both engines
    /// resolve identically; this knob exists for cross-validation.
    pub fn set_resolver_engine(&mut self, engine: rsin_core::ResolverEngine) {
        for part in &mut self.partitions {
            part.set_resolver_engine(engine);
        }
    }

    /// The reachability evaluator in force.
    #[must_use]
    pub fn resolver_engine(&self) -> rsin_core::ResolverEngine {
        self.partitions[0].resolver_engine()
    }

    /// The admission discipline in force.
    #[must_use]
    pub fn admission(&self) -> Admission {
        self.admission
    }
}

impl ResourceNetwork for OmegaNetwork {
    fn processors(&self) -> usize {
        self.partitions.len() * self.size
    }

    fn total_resources(&self) -> usize {
        self.partitions.len() * self.size * self.resources_per_port as usize
    }

    fn request_cycle(&mut self, pending: &[bool], rng: &mut SimRng) -> Vec<Grant> {
        let mut grants = Vec::new();
        self.request_cycle_into(pending, rng, &mut grants);
        grants
    }

    fn request_cycle_into(&mut self, pending: &[bool], _rng: &mut SimRng, out: &mut Vec<Grant>) {
        assert_eq!(pending.len(), self.processors(), "pending vector size");
        out.clear();
        let mut requesters = std::mem::take(&mut self.requesters);
        for (pi, part) in self.partitions.iter_mut().enumerate() {
            let base = pi * self.size;
            requesters.clear();
            requesters.extend(
                (0..self.size)
                    .filter(|&l| pending[base + l] && !self.circuits.contains_key(&(base + l))),
            );
            if requesters.is_empty() {
                continue;
            }
            self.counters.attempts += requesters.len() as u64;
            let res = part.resolve(&requesters, self.admission);
            self.counters.boxes_traversed += res.box_visits;
            self.counters.rejections += (res.rejected.len() + res.not_submitted.len()) as u64;
            for circuit in res.granted {
                let proc = base + circuit.processor;
                let port = base + circuit.port;
                self.circuits.insert(proc, circuit);
                out.push(Grant {
                    processor: proc,
                    port,
                });
            }
        }
        self.requesters = requesters;
    }

    fn end_transmission(&mut self, grant: Grant) {
        let pi = grant.processor / self.size;
        let circuit = self
            .circuits
            .remove(&grant.processor)
            .expect("transmission ends only on an active circuit");
        let part = &mut self.partitions[pi];
        part.release_circuit(&circuit);
        part.occupy_resource(circuit.port);
        debug_assert_eq!(grant.port, pi * self.size + circuit.port);
    }

    fn end_service(&mut self, grant: Grant) {
        let pi = grant.port / self.size;
        let lp = grant.port % self.size;
        if self.partitions[pi].port_is_down(lp) {
            // The pool failed and was cleared while this task was in
            // flight; nothing is held any more.
            return;
        }
        self.partitions[pi].release_resource(lp);
    }

    fn fail_resource(&mut self, port: usize) -> bool {
        let pi = port / self.size;
        let lp = port % self.size;
        let Some(part) = self.partitions.get_mut(pi) else {
            return false;
        };
        if !part.fail_port(lp) {
            return false;
        }
        // Per the trait contract: tear down every circuit terminating at
        // the dead port (their links free up); the simulator requeues the
        // casualty tasks. Sorted for deterministic iteration.
        let mut casualties: Vec<usize> = self
            .circuits
            .iter()
            .filter(|&(&proc, c)| proc / self.size == pi && c.port == lp)
            .map(|(&proc, _)| proc)
            .collect();
        casualties.sort_unstable();
        for proc in casualties {
            let circuit = self.circuits.remove(&proc).expect("casualty present");
            part.release_circuit(&circuit);
        }
        self.counters.resource_failures += 1;
        true
    }

    fn repair_resource(&mut self, port: usize) -> bool {
        let pi = port / self.size;
        let Some(part) = self.partitions.get_mut(pi) else {
            return false;
        };
        let accepted = part.repair_port(port % self.size);
        if accepted {
            self.counters.resource_repairs += 1;
        }
        accepted
    }

    fn fail_element(&mut self, element: usize) -> bool {
        // Element pi·(stages·N/2) + k·(N/2) + b = interchange box b of
        // stage k in partition pi (fail-open; see `MultistageState::fail_box`).
        let boxes = self.partitions[0].stages() as usize * (self.size / 2);
        let (pi, rem) = (element / boxes, element % boxes);
        let Some(part) = self.partitions.get_mut(pi) else {
            return false;
        };
        let accepted = part.fail_box((rem / (self.size / 2)) as u32, rem % (self.size / 2));
        if accepted {
            self.counters.element_failures += 1;
        }
        accepted
    }

    fn repair_element(&mut self, element: usize) -> bool {
        let boxes = self.partitions[0].stages() as usize * (self.size / 2);
        let (pi, rem) = (element / boxes, element % boxes);
        let Some(part) = self.partitions.get_mut(pi) else {
            return false;
        };
        let accepted = part.repair_box((rem / (self.size / 2)) as u32, rem % (self.size / 2));
        if accepted {
            self.counters.element_repairs += 1;
        }
        accepted
    }

    fn fault_elements(&self) -> usize {
        self.partitions.len() * self.partitions[0].stages() as usize * (self.size / 2)
    }

    fn take_counters(&mut self) -> NetworkCounters {
        std::mem::take(&mut self.counters)
    }

    fn label(&self) -> &'static str {
        match self.wiring() {
            Wiring::Omega => "OMEGA",
            Wiring::Cube => "CUBE",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending(n: usize, set: &[usize]) -> Vec<bool> {
        let mut v = vec![false; n];
        for &i in set {
            v[i] = true;
        }
        v
    }

    #[test]
    fn grants_resources_and_tracks_circuits() {
        let mut net = OmegaNetwork::new(1, 8, 1, Admission::Simultaneous);
        let mut rng = SimRng::new(1);
        let g = net.request_cycle(&pending(8, &[0, 1]), &mut rng);
        assert_eq!(g.len(), 2);
        // Finish the lifecycles cleanly.
        for grant in g {
            net.end_transmission(grant);
            net.end_service(grant);
        }
    }

    #[test]
    fn partition_offsets_are_applied() {
        let mut net = OmegaNetwork::new(2, 4, 1, Admission::Simultaneous);
        let mut rng = SimRng::new(1);
        let g = net.request_cycle(&pending(8, &[5]), &mut rng);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].processor, 5);
        assert!(g[0].port >= 4, "second partition's ports are 4..8");
        net.end_transmission(g[0]);
        net.end_service(g[0]);
    }

    #[test]
    fn saturated_ports_block_until_service() {
        let mut net = OmegaNetwork::new(1, 2, 1, Admission::Simultaneous);
        let mut rng = SimRng::new(1);
        let g1 = net.request_cycle(&pending(2, &[0]), &mut rng);
        assert_eq!(g1.len(), 1);
        net.end_transmission(g1[0]);
        let g2 = net.request_cycle(&pending(2, &[1]), &mut rng);
        assert_eq!(g2.len(), 1, "second port still free");
        net.end_transmission(g2[0]);
        // Both resources busy: nothing grantable.
        assert!(net.request_cycle(&pending(2, &[0]), &mut rng).is_empty());
        net.end_service(g1[0]);
        assert_eq!(net.request_cycle(&pending(2, &[0]), &mut rng).len(), 1);
    }

    #[test]
    fn from_config_checks_kind_and_dims() {
        let cfg: SystemConfig = "16/1x16x32 XBAR/1".parse().expect("valid");
        assert!(OmegaNetwork::from_config(&cfg, Admission::Simultaneous).is_err());
        let cfg: SystemConfig = "16/8x2x2 OMEGA/2".parse().expect("valid");
        let net = OmegaNetwork::from_config(&cfg, Admission::Simultaneous).expect("omega");
        assert_eq!(net.processors(), 16);
        assert_eq!(net.total_resources(), 32);
    }

    #[test]
    fn cube_config_builds_and_serves() {
        let cfg: SystemConfig = "16/1x16x16 CUBE/2".parse().expect("valid");
        let mut net = OmegaNetwork::from_config(&cfg, Admission::Simultaneous).expect("cube");
        use rsin_core::ResourceNetwork as _;
        assert_eq!(net.label(), "CUBE");
        let mut rng = SimRng::new(1);
        let g = net.request_cycle(&pending(16, &[0, 5, 9]), &mut rng);
        assert_eq!(g.len(), 3);
        for grant in g {
            net.end_transmission(grant);
            net.end_service(grant);
        }
    }

    #[test]
    fn fail_resource_tears_down_inflight_circuits() {
        let mut net = OmegaNetwork::new(1, 4, 1, Admission::Simultaneous);
        let mut rng = SimRng::new(1);
        let g = net.request_cycle(&pending(4, &[0]), &mut rng);
        assert_eq!(g.len(), 1);
        // The pool at the granted port dies mid-transmission.
        assert!(net.fail_resource(g[0].port));
        assert!(!net.fail_resource(g[0].port), "already down");
        // Its links were released internally: the same processor can route
        // to one of the three surviving ports immediately.
        let g2 = net.request_cycle(&pending(4, &[0]), &mut rng);
        assert_eq!(g2.len(), 1);
        assert_ne!(g2[0].port, g[0].port, "dead port advertises nothing");
        assert!(net.repair_resource(g[0].port));
        let c = net.take_counters();
        assert_eq!(c.resource_failures, 1);
        assert_eq!(c.resource_repairs, 1);
    }

    #[test]
    fn element_index_addresses_every_box() {
        // 2 partitions × (log2 8 = 3 stages) × 4 boxes = 24 elements.
        let mut net = OmegaNetwork::new(2, 8, 1, Admission::Simultaneous);
        assert_eq!(net.fault_elements(), 24);
        for e in 0..24 {
            assert!(net.fail_element(e), "element {e} fails once");
            assert!(!net.fail_element(e), "element {e} already failed");
        }
        assert!(!net.fail_element(24), "out of range");
        for e in 0..24 {
            assert!(net.repair_element(e));
        }
        let c = net.take_counters();
        assert_eq!(c.element_failures, 24);
        assert_eq!(c.element_repairs, 24);
    }

    #[test]
    fn failed_boxes_degrade_but_do_not_kill_the_network() {
        let mut net = OmegaNetwork::new(1, 16, 2, Admission::Simultaneous);
        let mut rng = SimRng::new(7);
        // Fail three interchange boxes spread across stages.
        for e in [0, 11, 22] {
            assert!(net.fail_element(e));
        }
        let g = net.request_cycle(&pending(16, &(0..16).collect::<Vec<_>>()), &mut rng);
        assert!(
            !g.is_empty(),
            "distributed scheduling sustains service around dead boxes"
        );
        for grant in g {
            net.end_transmission(grant);
            net.end_service(grant);
        }
    }

    #[test]
    fn counters_include_box_visits() {
        let mut net = OmegaNetwork::new(1, 8, 1, Admission::Simultaneous);
        let mut rng = SimRng::new(1);
        let _ = net.request_cycle(&pending(8, &[0, 3, 4, 5]), &mut rng);
        let c = net.take_counters();
        assert_eq!(c.attempts, 4);
        assert!(
            c.boxes_traversed >= 12,
            "each served request crosses ≥3 boxes"
        );
    }
}
