//! Edge cases of the fault timeline that the resilient experiment harness
//! leans on: zero-duration repairs, overlapping scripted windows on one
//! resource, and schedules whose first failure lands at t = 0.

use rsin_des::{FaultAction, FaultPlan, FaultTarget, SimRng, SimTime, StochasticFault};

fn drain(plan: &FaultPlan, seed: u64, n: usize) -> Vec<(f64, FaultTarget, FaultAction)> {
    let mut rng = SimRng::new(seed);
    let mut tl = plan.timeline(&mut rng);
    (0..n)
        .map_while(|_| tl.pop())
        .map(|e| (e.time.as_f64(), e.target, e.action))
        .collect()
}

#[test]
fn zero_duration_repair_keeps_fail_before_repair() {
    // A repair scheduled at the very instant of the failure: the window has
    // zero duration, and insertion order must still deliver Fail first so a
    // consumer tracking up/down state ends the instant *up*.
    let t = SimTime::new(5.0);
    let plan = FaultPlan::new()
        .fail_at(t, FaultTarget::Resource(2))
        .repair_at(t, FaultTarget::Resource(2));
    let events = drain(&plan, 1, 8);
    assert_eq!(
        events,
        vec![
            (5.0, FaultTarget::Resource(2), FaultAction::Fail),
            (5.0, FaultTarget::Resource(2), FaultAction::Repair),
        ]
    );
    let mut up = true;
    for (_, _, action) in &events {
        up = matches!(action, FaultAction::Repair);
    }
    assert!(up, "zero-duration window must leave the resource up");
}

#[test]
fn overlapping_scripted_windows_on_same_resource_stay_ordered() {
    // Two overlapping outage windows, [2, 8] and [5, 10], on the same
    // resource. The timeline's contract is time order (ties by insertion);
    // the consumer sees a second Fail while already down and a Repair while
    // still inside the second window.
    let r = FaultTarget::Resource(0);
    let plan = FaultPlan::new()
        .fail_at(SimTime::new(2.0), r)
        .repair_at(SimTime::new(8.0), r)
        .fail_at(SimTime::new(5.0), r)
        .repair_at(SimTime::new(10.0), r);
    let events = drain(&plan, 1, 8);
    assert_eq!(
        events,
        vec![
            (2.0, r, FaultAction::Fail),
            (5.0, r, FaultAction::Fail),
            (8.0, r, FaultAction::Repair),
            (10.0, r, FaultAction::Repair),
        ]
    );
    // Depth-counting consumer: the resource is continuously down from 2 to
    // 10 and the windows are balanced at the end.
    let mut depth = 0i32;
    for (time, _, action) in &events {
        match action {
            FaultAction::Fail => depth += 1,
            FaultAction::Repair => depth -= 1,
        }
        if (2.0..10.0).contains(time) {
            assert!(depth > 0, "resource must be down inside the union window");
        }
    }
    assert_eq!(depth, 0, "every fail has a matching repair");
}

#[test]
fn first_failure_at_t_zero_is_delivered_first() {
    // A schedule whose first failure is at the simulation origin — the
    // resource is down before the first task even arrives — merged with an
    // ongoing stochastic process.
    let plan = FaultPlan::new()
        .fail_at(SimTime::ZERO, FaultTarget::Element(1))
        .repair_at(SimTime::new(3.0), FaultTarget::Element(1))
        .stochastic(StochasticFault {
            target: FaultTarget::Resource(0),
            mtbf: 10.0,
            mttr: 1.0,
        });
    let mut rng = SimRng::new(11);
    let mut tl = plan.timeline(&mut rng);
    assert_eq!(tl.peek(), Some(SimTime::ZERO), "t=0 event must be visible");
    let first = tl.pop().expect("first event");
    assert_eq!(first.time, SimTime::ZERO);
    assert_eq!(first.target, FaultTarget::Element(1));
    assert_eq!(first.action, FaultAction::Fail);
    // The merged stream stays nondecreasing past the origin.
    let mut last = SimTime::ZERO;
    for _ in 0..40 {
        let e = tl.pop().expect("stochastic stream is endless");
        assert!(e.time >= last, "time order violated");
        last = e.time;
    }
}

#[test]
fn near_zero_mtbf_mttr_schedule_is_dense_but_ordered() {
    // An MTBF/MTTR process many orders of magnitude faster than the
    // simulation horizon: the first failure lands at (numerically) t ≈ 0
    // and events pile up near the origin without violating order or phase.
    let plan = FaultPlan::new().stochastic(StochasticFault {
        target: FaultTarget::Resource(5),
        mtbf: 1e-9,
        mttr: 1e-9,
    });
    let mut rng = SimRng::new(3);
    let mut tl = plan.timeline(&mut rng);
    let first = tl.peek().expect("endless process");
    assert!(first.as_f64() < 1e-6, "first failure must land at t ≈ 0");
    let mut last = SimTime::ZERO;
    for i in 0..200 {
        let e = tl.pop().expect("endless process");
        assert!(e.time >= last, "event {i} out of order");
        last = e.time;
        let expect = if i % 2 == 0 {
            FaultAction::Fail
        } else {
            FaultAction::Repair
        };
        assert_eq!(e.action, expect, "event {i} out of phase");
    }
    assert!(
        last.as_f64() < 1e-3,
        "the whole burst stays near the origin"
    );
}
