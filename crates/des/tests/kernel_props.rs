//! Property-based tests of the simulation kernel.

use rsin_des::stats::{BatchMeans, Histogram, TimeWeighted, Welford};
use rsin_des::{Calendar, SimRng, SimTime};
use rsin_minicheck::check;

/// Random interleavings of schedule/cancel always deliver the
/// non-cancelled events exactly once, in time order.
#[test]
fn calendar_with_cancellations() {
    check(256, |g| {
        let n = g.usize_in(1, 60);
        let ops: Vec<(f64, bool)> = (0..n).map(|_| (g.f64_in(0.0, 1e3), g.bool())).collect();
        let mut cal = Calendar::new();
        let mut expected = Vec::new();
        let mut handles = Vec::new();
        for (idx, &(t, cancel)) in ops.iter().enumerate() {
            let h = cal.schedule(SimTime::new(t), idx);
            handles.push((h, t, cancel));
        }
        for &(h, t, cancel) in &handles {
            if cancel {
                assert!(cal.cancel(h));
            } else {
                expected.push(t);
            }
        }
        expected.sort_by(f64::total_cmp);
        let mut delivered = Vec::new();
        while let Some((t, _)) = cal.pop() {
            delivered.push(t.as_f64());
        }
        assert_eq!(delivered.len(), expected.len());
        for (d, e) in delivered.iter().zip(&expected) {
            assert!((d - e).abs() < 1e-12);
        }
        assert!(cal.is_empty());
    });
}

/// The calendar length is exact under mixed operations.
#[test]
fn calendar_len_is_exact() {
    check(256, |g| {
        let n = g.usize_in(1, 40);
        let cancels = g.usize_in(0, 40);
        let mut cal = Calendar::new();
        let handles: Vec<_> = (0..n)
            .map(|i| cal.schedule(SimTime::new(i as f64), i))
            .collect();
        let mut live = n;
        for h in handles.iter().take(cancels.min(n)) {
            if cal.cancel(*h) {
                live -= 1;
            }
        }
        assert_eq!(cal.len(), live);
    });
}

/// Histogram mass balance: bin counts plus overflow equal the total.
#[test]
fn histogram_mass_balance() {
    check(256, |g| {
        let xs = g.vec_f64(0.0, 20.0, 1, 200);
        let mut h = Histogram::new(8, 10.0);
        for &x in &xs {
            h.record(x);
        }
        let binned: u64 = (0..h.num_bins()).map(|i| h.bin_count(i)).sum();
        assert_eq!(binned + h.overflow(), xs.len() as u64);
        assert_eq!(h.count(), xs.len() as u64);
    });
}

/// Batch-means grand mean equals the plain mean over complete batches.
#[test]
fn batch_means_grand_mean() {
    check(256, |g| {
        let xs = g.vec_f64(-1e3, 1e3, 10, 300);
        let batch = 10u64;
        let mut bm = BatchMeans::new(batch);
        for &x in &xs {
            bm.push(x);
        }
        let complete = (xs.len() as u64 / batch * batch) as usize;
        if complete > 0 {
            let mean = xs[..complete].iter().sum::<f64>() / complete as f64;
            assert!((bm.mean() - mean).abs() < 1e-9 * (1.0 + mean.abs()));
        }
    });
}

/// Time-weighted average of any step signal lies within its range.
#[test]
fn time_average_within_range() {
    check(256, |g| {
        let n = g.usize_in(1, 50);
        let steps: Vec<(f64, f64)> = (0..n)
            .map(|_| (g.f64_in(0.01, 10.0), g.f64_in(0.0, 50.0)))
            .collect();
        let mut tw = TimeWeighted::new(SimTime::ZERO, steps[0].1);
        let mut t = 0.0;
        let mut lo = steps[0].1;
        let mut hi = steps[0].1;
        for &(dt, level) in &steps {
            t += dt;
            tw.set(SimTime::new(t), level);
            lo = lo.min(level);
            hi = hi.max(level);
        }
        let avg = tw.average(SimTime::new(t + 1.0));
        // The final level extends to the query time, so it bounds too.
        assert!(
            avg >= lo - 1e-9 && avg <= hi + 1e-9,
            "avg {avg} outside [{lo}, {hi}]"
        );
    });
}

/// Welford statistics are permutation-invariant.
#[test]
fn welford_permutation_invariant() {
    check(256, |g| {
        let xs = g.vec_f64(-1e4, 1e4, 2, 100);
        let seed = g.u64();
        let mut a = Welford::new();
        for &x in &xs {
            a.push(x);
        }
        let mut shuffled = xs.clone();
        let mut rng = SimRng::new(seed);
        rng.shuffle(&mut shuffled);
        let mut b = Welford::new();
        for &x in &shuffled {
            b.push(x);
        }
        assert!((a.mean() - b.mean()).abs() < 1e-7 * (1.0 + a.mean().abs()));
        assert!(
            (a.sample_variance() - b.sample_variance()).abs() < 1e-6 * (1.0 + a.sample_variance())
        );
        assert_eq!(a.min(), b.min());
        assert_eq!(a.max(), b.max());
    });
}
