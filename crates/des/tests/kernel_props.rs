//! Property-based tests of the simulation kernel.

use rsin_des::stats::{BatchMeans, Histogram, TimeWeighted, Welford};
use rsin_des::{Calendar, SimRng, SimTime};
use rsin_minicheck::check;

/// Random interleavings of schedule/cancel always deliver the
/// non-cancelled events exactly once, in time order.
#[test]
fn calendar_with_cancellations() {
    check(256, |g| {
        let n = g.usize_in(1, 60);
        let ops: Vec<(f64, bool)> = (0..n).map(|_| (g.f64_in(0.0, 1e3), g.bool())).collect();
        let mut cal = Calendar::new();
        let mut expected = Vec::new();
        let mut handles = Vec::new();
        for (idx, &(t, cancel)) in ops.iter().enumerate() {
            let h = cal.schedule(SimTime::new(t), idx);
            handles.push((h, t, cancel));
        }
        for &(h, t, cancel) in &handles {
            if cancel {
                assert!(cal.cancel(h));
            } else {
                expected.push(t);
            }
        }
        expected.sort_by(f64::total_cmp);
        let mut delivered = Vec::new();
        while let Some((t, _)) = cal.pop() {
            delivered.push(t.as_f64());
        }
        assert_eq!(delivered.len(), expected.len());
        for (d, e) in delivered.iter().zip(&expected) {
            assert!((d - e).abs() < 1e-12);
        }
        assert!(cal.is_empty());
    });
}

/// The calendar length is exact under mixed operations.
#[test]
fn calendar_len_is_exact() {
    check(256, |g| {
        let n = g.usize_in(1, 40);
        let cancels = g.usize_in(0, 40);
        let mut cal = Calendar::new();
        let handles: Vec<_> = (0..n)
            .map(|i| cal.schedule(SimTime::new(i as f64), i))
            .collect();
        let mut live = n;
        for h in handles.iter().take(cancels.min(n)) {
            if cal.cancel(*h) {
                live -= 1;
            }
        }
        assert_eq!(cal.len(), live);
    });
}

/// The indexed calendar agrees with a sorted-`Vec` reference model through
/// arbitrary interleavings of schedule, cancel, pop, peek, and clear —
/// including same-instant FIFO ties and cancels aimed at handles whose
/// events were already delivered, cancelled, or wiped by `clear`.
#[test]
fn calendar_matches_reference_model() {
    // The reference model: a flat list of live events ordered on demand by
    // (time, insertion number), which is the documented tie-breaking rule.
    struct Model {
        live: Vec<(f64, u64, usize)>, // (time, seq, payload)
        next_seq: u64,
    }
    impl Model {
        fn min_index(&self) -> Option<usize> {
            (0..self.live.len()).min_by(|&a, &b| {
                let (ta, sa, _) = self.live[a];
                let (tb, sb, _) = self.live[b];
                ta.total_cmp(&tb).then(sa.cmp(&sb))
            })
        }
    }

    check(256, |g| {
        let mut cal = Calendar::new();
        let mut model = Model {
            live: Vec::new(),
            next_seq: 0,
        };
        // Every handle ever issued, with its model seq and liveness.
        let mut issued: Vec<(rsin_des::EventHandle, u64, bool)> = Vec::new();
        let mut now = 0.0f64;
        let mut next_payload = 0usize;

        let steps = g.usize_in(20, 200);
        for _ in 0..steps {
            match g.usize_in(0, 10) {
                // Schedule at a fresh future offset (sometimes exactly now).
                0..=3 => {
                    let t = if g.bool() {
                        now + g.f64_in(0.0, 100.0)
                    } else {
                        now // same-instant scheduling must honor FIFO order
                    };
                    let h = cal.schedule(SimTime::new(t), next_payload);
                    model.live.push((t, model.next_seq, next_payload));
                    issued.push((h, model.next_seq, true));
                    model.next_seq += 1;
                    next_payload += 1;
                }
                // Schedule a deliberate tie with a live event's time.
                4 => {
                    if let Some(&(t, _, _)) = model.live.first() {
                        let h = cal.schedule(SimTime::new(t), next_payload);
                        model.live.push((t, model.next_seq, next_payload));
                        issued.push((h, model.next_seq, true));
                        model.next_seq += 1;
                        next_payload += 1;
                    }
                }
                // Cancel a random handle from the full history: live ones
                // must cancel exactly once; delivered/cancelled/cleared ones
                // must report false.
                5..=6 => {
                    if !issued.is_empty() {
                        let i = g.usize_in(0, issued.len());
                        let (h, seq, alive) = issued[i];
                        assert_eq!(cal.cancel(h), alive, "cancel of seq {seq}");
                        if alive {
                            issued[i].2 = false;
                            model.live.retain(|&(_, s, _)| s != seq);
                        }
                        // A second cancel through the same handle is a no-op.
                        assert!(!cal.cancel(h));
                        issued[i].2 = false;
                    }
                }
                // Pop: time, payload, and clock advance must all match.
                7..=8 => match model.min_index() {
                    Some(i) => {
                        let (t, seq, payload) = model.live.swap_remove(i);
                        let (pt, pp) = cal.pop().expect("model says nonempty");
                        assert_eq!(pt, SimTime::new(t));
                        assert_eq!(pp, payload);
                        now = t;
                        if let Some(slot) = issued.iter_mut().find(|(_, s, _)| *s == seq) {
                            slot.2 = false;
                        }
                    }
                    None => assert!(cal.pop().is_none()),
                },
                // Peek must agree without disturbing anything.
                9 => {
                    let expect = model.min_index().map(|i| SimTime::new(model.live[i].0));
                    assert_eq!(cal.peek_time(), expect);
                }
                // Clear: everything dies, including outstanding handles.
                _ => {
                    cal.clear();
                    model.live.clear();
                    for slot in &mut issued {
                        slot.2 = false;
                    }
                    now = 0.0;
                }
            }
            assert_eq!(cal.len(), model.live.len());
            assert_eq!(cal.is_empty(), model.live.is_empty());
        }

        // Drain: the full remaining order must match the reference.
        while let Some(i) = model.min_index() {
            let (t, _, payload) = model.live.swap_remove(i);
            let (pt, pp) = cal.pop().expect("drain");
            assert_eq!(pt, SimTime::new(t));
            assert_eq!(pp, payload);
        }
        assert!(cal.pop().is_none());
        assert!(cal.is_empty());
    });
}

/// Histogram mass balance: bin counts plus overflow equal the total.
#[test]
fn histogram_mass_balance() {
    check(256, |g| {
        let xs = g.vec_f64(0.0, 20.0, 1, 200);
        let mut h = Histogram::new(8, 10.0);
        for &x in &xs {
            h.record(x);
        }
        let binned: u64 = (0..h.num_bins()).map(|i| h.bin_count(i)).sum();
        assert_eq!(binned + h.overflow(), xs.len() as u64);
        assert_eq!(h.count(), xs.len() as u64);
    });
}

/// Batch-means grand mean equals the plain mean over complete batches.
#[test]
fn batch_means_grand_mean() {
    check(256, |g| {
        let xs = g.vec_f64(-1e3, 1e3, 10, 300);
        let batch = 10u64;
        let mut bm = BatchMeans::new(batch);
        for &x in &xs {
            bm.push(x);
        }
        let complete = (xs.len() as u64 / batch * batch) as usize;
        if complete > 0 {
            let mean = xs[..complete].iter().sum::<f64>() / complete as f64;
            assert!((bm.mean() - mean).abs() < 1e-9 * (1.0 + mean.abs()));
        }
    });
}

/// Time-weighted average of any step signal lies within its range.
#[test]
fn time_average_within_range() {
    check(256, |g| {
        let n = g.usize_in(1, 50);
        let steps: Vec<(f64, f64)> = (0..n)
            .map(|_| (g.f64_in(0.01, 10.0), g.f64_in(0.0, 50.0)))
            .collect();
        let mut tw = TimeWeighted::new(SimTime::ZERO, steps[0].1);
        let mut t = 0.0;
        let mut lo = steps[0].1;
        let mut hi = steps[0].1;
        for &(dt, level) in &steps {
            t += dt;
            tw.set(SimTime::new(t), level);
            lo = lo.min(level);
            hi = hi.max(level);
        }
        let avg = tw.average(SimTime::new(t + 1.0));
        // The final level extends to the query time, so it bounds too.
        assert!(
            avg >= lo - 1e-9 && avg <= hi + 1e-9,
            "avg {avg} outside [{lo}, {hi}]"
        );
    });
}

/// Welford statistics are permutation-invariant.
#[test]
fn welford_permutation_invariant() {
    check(256, |g| {
        let xs = g.vec_f64(-1e4, 1e4, 2, 100);
        let seed = g.u64();
        let mut a = Welford::new();
        for &x in &xs {
            a.push(x);
        }
        let mut shuffled = xs.clone();
        let mut rng = SimRng::new(seed);
        rng.shuffle(&mut shuffled);
        let mut b = Welford::new();
        for &x in &shuffled {
            b.push(x);
        }
        assert!((a.mean() - b.mean()).abs() < 1e-7 * (1.0 + a.mean().abs()));
        assert!(
            (a.sample_variance() - b.sample_variance()).abs() < 1e-6 * (1.0 + a.sample_variance())
        );
        assert_eq!(a.min(), b.min());
        assert_eq!(a.max(), b.max());
    });
}

/// Per-shard Welford/Histogram accumulators over an interleaved
/// cross-shard sample stream merge to exactly the single-stream result,
/// whatever the shard count, home mapping, or merge order — the loadgen
/// invariant the sharded broker's scaling measurements lean on: each
/// requester's delays land on its home shard's accumulator (`worker %
/// shards`), and shards are merged in arbitrary order at shutdown.
#[test]
fn sharded_stat_merges_equal_single_stream() {
    check(128, |g| {
        let shards = g.usize_in(1, 5);
        let n = g.usize_in(0, 200);
        let bins = g.usize_in(1, 8);
        let upper = g.f64_in(1.0, 50.0);
        let samples: Vec<(usize, f64)> = (0..n)
            .map(|_| (g.usize_in(0, 15), g.f64_in(0.0, 60.0)))
            .collect();

        let mut single_w = Welford::new();
        let mut single_h = Histogram::new(bins, upper);
        let mut shard_w = vec![Welford::new(); shards];
        let mut shard_h: Vec<Histogram> =
            (0..shards).map(|_| Histogram::new(bins, upper)).collect();
        for &(worker, x) in &samples {
            single_w.push(x);
            single_h.record(x);
            let home = worker % shards;
            shard_w[home].push(x);
            shard_h[home].record(x);
        }

        // Merge starting at a random shard: order independence is part of
        // the claim (worker threads retire in unpredictable order).
        let start = g.usize_in(0, shards);
        let mut merged_w = Welford::new();
        let mut merged_h = Histogram::new(bins, upper);
        for k in 0..shards {
            let s = (start + k) % shards;
            merged_w.merge(&shard_w[s]);
            merged_h.merge(&shard_h[s]);
        }

        assert_eq!(merged_w.count(), single_w.count());
        if single_w.count() > 0 {
            assert!(
                (merged_w.mean() - single_w.mean()).abs() < 1e-9 * (1.0 + single_w.mean().abs()),
                "merged mean diverged"
            );
            assert_eq!(merged_w.min(), single_w.min());
            assert_eq!(merged_w.max(), single_w.max());
        }
        if single_w.count() > 1 {
            assert!(
                (merged_w.sample_variance() - single_w.sample_variance()).abs()
                    < 1e-8 * (1.0 + single_w.sample_variance()),
                "merged variance diverged"
            );
        }
        assert_eq!(merged_h.count(), single_h.count());
        assert_eq!(merged_h.overflow(), single_h.overflow());
        for i in 0..bins {
            assert_eq!(merged_h.bin_count(i), single_h.bin_count(i));
        }
    });
}
