//! Independent replications of a stochastic experiment.
//!
//! The RSIN simulation studies report steady-state means; running `R`
//! independent replications with derived seeds gives iid estimates whose
//! spread yields an honest confidence interval (see
//! [`stats::replication_interval`](crate::stats::replication_interval)).
//!
//! Replications are embarrassingly parallel: replication `i` draws from the
//! independent stream `base.derive(i)` and nothing else, so [`replicate_par`]
//! distributes them over scoped threads ([`scope_map`](crate::scope_map))
//! and collects the estimates by index — the [`Replicated`] output is
//! **bitwise identical** to the sequential [`replicate`] for any worker
//! count.

use crate::parallel::scope_map_indexed;
use crate::rng::SimRng;
use crate::stats::{replication_interval, ConfidenceInterval};

/// Outcome of a replicated experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct Replicated {
    /// Per-replication point estimates, in replication order.
    pub estimates: Vec<f64>,
    /// Confidence interval across replications (`None` for fewer than 2).
    pub interval: Option<ConfidenceInterval>,
}

impl Replicated {
    /// Grand mean over replications, or `None` when there are none.
    ///
    /// Both runners assert `reps > 0`, so a `Replicated` they produce always
    /// has a mean; this accessor exists for callers constructing the struct
    /// by hand.
    #[must_use]
    pub fn try_mean(&self) -> Option<f64> {
        if self.estimates.is_empty() {
            None
        } else {
            Some(self.estimates.iter().sum::<f64>() / self.estimates.len() as f64)
        }
    }

    /// Grand mean over replications.
    ///
    /// # Panics
    ///
    /// Panics if there are no replications. [`replicate`] and
    /// [`replicate_par`] both assert `reps > 0` up front (identically, so
    /// the sequential and parallel paths cannot diverge in panic behavior);
    /// use [`Replicated::try_mean`] for hand-built values.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.try_mean().expect("no replications")
    }
}

/// Runs `reps` independent replications of `experiment` sequentially.
///
/// Each replication receives its index and an independent RNG derived from
/// `base`. The closure returns a point estimate (e.g. a mean delay).
///
/// # Panics
///
/// Panics if `reps == 0` or `level` is outside `(0, 1)`.
pub fn replicate<F>(base: &SimRng, reps: usize, level: f64, mut experiment: F) -> Replicated
where
    F: FnMut(usize, SimRng) -> f64,
{
    assert!(reps > 0, "need at least one replication");
    assert!(level > 0.0 && level < 1.0, "level must be in (0,1)");
    let estimates: Vec<f64> = (0..reps)
        .map(|i| experiment(i, base.derive(i as u64)))
        .collect();
    let interval = replication_interval(&estimates, level);
    Replicated {
        estimates,
        interval,
    }
}

/// Runs `reps` independent replications of `experiment` on up to `jobs`
/// scoped threads.
///
/// Semantically identical to [`replicate`] — including the seed for each
/// replication index — so the result is bitwise equal to the sequential
/// runner for any `jobs`. `jobs <= 1` runs inline with no thread machinery.
///
/// # Panics
///
/// Panics if `reps == 0` or `level` is outside `(0, 1)` (the same asserts,
/// in the same order, as [`replicate`]).
pub fn replicate_par<F>(
    base: &SimRng,
    reps: usize,
    level: f64,
    jobs: usize,
    experiment: F,
) -> Replicated
where
    F: Fn(usize, SimRng) -> f64 + Sync,
{
    assert!(reps > 0, "need at least one replication");
    assert!(level > 0.0 && level < 1.0, "level must be in (0,1)");
    let estimates = scope_map_indexed(reps, jobs, |i| experiment(i, base.derive(i as u64)));
    let interval = replication_interval(&estimates, level);
    Replicated {
        estimates,
        interval,
    }
}

/// [`replicate_par`] with the default worker count
/// ([`default_jobs`](crate::default_jobs): `RSIN_JOBS` or the machine's
/// available parallelism).
///
/// # Panics
///
/// Panics if `reps == 0` or `level` is outside `(0, 1)`.
pub fn replicate_parallel<F>(base: &SimRng, reps: usize, level: f64, experiment: F) -> Replicated
where
    F: Fn(usize, SimRng) -> f64 + Sync,
{
    replicate_par(
        base,
        reps,
        level,
        crate::parallel::default_jobs(),
        experiment,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replications_use_distinct_seeds() {
        let base = SimRng::new(1);
        let out = replicate(&base, 4, 0.95, |_, mut rng| rng.uniform());
        let mut sorted = out.estimates.clone();
        sorted.sort_by(f64::total_cmp);
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            4,
            "estimates should differ: {:?}",
            out.estimates
        );
    }

    #[test]
    fn sequential_and_parallel_agree_exactly() {
        let base = SimRng::new(42);
        let f = |i: usize, mut rng: SimRng| rng.uniform() + i as f64;
        let seq = replicate(&base, 7, 0.9, f);
        for jobs in [1, 2, 4, 16] {
            let par = replicate_par(&base, 7, 0.9, jobs, f);
            assert_eq!(seq, par, "jobs = {jobs}");
        }
        let par = replicate_parallel(&base, 7, 0.9, f);
        assert_eq!(seq.estimates, par.estimates);
    }

    #[test]
    fn interval_present_with_two_or_more_reps() {
        let base = SimRng::new(9);
        let one = replicate(&base, 1, 0.95, |_, mut rng| rng.uniform());
        assert!(one.interval.is_none());
        let two = replicate(&base, 2, 0.95, |_, mut rng| rng.uniform());
        assert!(two.interval.is_some());
    }

    #[test]
    fn mean_is_average_of_estimates() {
        let base = SimRng::new(3);
        let out = replicate(&base, 3, 0.95, |i, _| i as f64);
        assert!((out.mean() - 1.0).abs() < 1e-12);
        assert_eq!(out.try_mean(), Some(out.mean()));
    }

    #[test]
    fn try_mean_is_none_when_empty() {
        let empty = Replicated {
            estimates: Vec::new(),
            interval: None,
        };
        assert_eq!(empty.try_mean(), None);
        let r = std::panic::catch_unwind(move || empty.mean());
        assert!(r.is_err(), "mean() panics on the empty struct");
    }

    #[test]
    fn zero_reps_panics_identically_in_both_runners() {
        let base = SimRng::new(1);
        let seq = std::panic::catch_unwind(|| replicate(&base, 0, 0.95, |_, _| 0.0));
        let par = std::panic::catch_unwind(|| replicate_par(&base, 0, 0.95, 4, |_, _| 0.0));
        let msg = |e: Box<dyn std::any::Any + Send>| {
            e.downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| e.downcast_ref::<String>().cloned())
                .unwrap_or_default()
        };
        assert_eq!(
            msg(seq.expect_err("seq must panic")),
            msg(par.expect_err("par must panic")),
            "panic messages must not diverge"
        );
    }

    #[test]
    fn estimator_converges_to_truth() {
        let base = SimRng::new(7);
        let out = replicate(&base, 10, 0.95, |_, mut rng| {
            (0..20_000).map(|_| rng.exponential(2.0)).sum::<f64>() / 20_000.0
        });
        let ci = out.interval.expect("10 reps");
        assert!(ci.contains(0.5), "CI {ci} should contain 0.5");
    }
}
