//! Independent replications of a stochastic experiment.
//!
//! The RSIN simulation studies report steady-state means; running `R`
//! independent replications with derived seeds gives iid estimates whose
//! spread yields an honest confidence interval (see
//! [`stats::replication_interval`](crate::stats::replication_interval)).

use crate::rng::SimRng;
use crate::stats::{replication_interval, ConfidenceInterval};

/// Outcome of a replicated experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct Replicated {
    /// Per-replication point estimates, in replication order.
    pub estimates: Vec<f64>,
    /// Confidence interval across replications (`None` for fewer than 2).
    pub interval: Option<ConfidenceInterval>,
}

impl Replicated {
    /// Grand mean over replications.
    ///
    /// # Panics
    ///
    /// Panics if there are no replications.
    #[must_use]
    pub fn mean(&self) -> f64 {
        assert!(!self.estimates.is_empty(), "no replications");
        self.estimates.iter().sum::<f64>() / self.estimates.len() as f64
    }
}

/// Runs `reps` independent replications of `experiment` sequentially.
///
/// Each replication receives its index and an independent RNG derived from
/// `base`. The closure returns a point estimate (e.g. a mean delay).
///
/// # Panics
///
/// Panics if `reps == 0` or `level` is outside `(0, 1)`.
pub fn replicate<F>(base: &SimRng, reps: usize, level: f64, mut experiment: F) -> Replicated
where
    F: FnMut(usize, SimRng) -> f64,
{
    assert!(reps > 0, "need at least one replication");
    assert!(level > 0.0 && level < 1.0, "level must be in (0,1)");
    let estimates: Vec<f64> = (0..reps)
        .map(|i| experiment(i, base.derive(i as u64)))
        .collect();
    let interval = replication_interval(&estimates, level);
    Replicated {
        estimates,
        interval,
    }
}

/// Runs `reps` independent replications of `experiment` across threads.
///
/// Semantically identical to [`replicate`] — including the seed for each
/// replication index — so results match the sequential runner exactly.
///
/// # Panics
///
/// Panics if `reps == 0` or `level` is outside `(0, 1)`.
pub fn replicate_parallel<F>(base: &SimRng, reps: usize, level: f64, experiment: F) -> Replicated
where
    F: Fn(usize, SimRng) -> f64 + Sync,
{
    assert!(reps > 0, "need at least one replication");
    assert!(level > 0.0 && level < 1.0, "level must be in (0,1)");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(reps);
    let mut estimates = vec![0.0_f64; reps];
    std::thread::scope(|scope| {
        let chunk = reps.div_ceil(threads);
        for (t, slot) in estimates.chunks_mut(chunk).enumerate() {
            let experiment = &experiment;
            let base = base.clone();
            scope.spawn(move || {
                for (j, out) in slot.iter_mut().enumerate() {
                    let i = t * chunk + j;
                    *out = experiment(i, base.derive(i as u64));
                }
            });
        }
    });
    let interval = replication_interval(&estimates, level);
    Replicated {
        estimates,
        interval,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replications_use_distinct_seeds() {
        let base = SimRng::new(1);
        let out = replicate(&base, 4, 0.95, |_, mut rng| rng.uniform());
        let mut sorted = out.estimates.clone();
        sorted.sort_by(f64::total_cmp);
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            4,
            "estimates should differ: {:?}",
            out.estimates
        );
    }

    #[test]
    fn sequential_and_parallel_agree_exactly() {
        let base = SimRng::new(42);
        let f = |i: usize, mut rng: SimRng| rng.uniform() + i as f64;
        let seq = replicate(&base, 7, 0.9, f);
        let par = replicate_parallel(&base, 7, 0.9, f);
        assert_eq!(seq.estimates, par.estimates);
    }

    #[test]
    fn interval_present_with_two_or_more_reps() {
        let base = SimRng::new(9);
        let one = replicate(&base, 1, 0.95, |_, mut rng| rng.uniform());
        assert!(one.interval.is_none());
        let two = replicate(&base, 2, 0.95, |_, mut rng| rng.uniform());
        assert!(two.interval.is_some());
    }

    #[test]
    fn mean_is_average_of_estimates() {
        let base = SimRng::new(3);
        let out = replicate(&base, 3, 0.95, |i, _| i as f64);
        assert!((out.mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn estimator_converges_to_truth() {
        let base = SimRng::new(7);
        let out = replicate(&base, 10, 0.95, |_, mut rng| {
            (0..20_000).map(|_| rng.exponential(2.0)).sum::<f64>() / 20_000.0
        });
        let ci = out.interval.expect("10 reps");
        assert!(ci.contains(0.5), "CI {ci} should contain 0.5");
    }
}
