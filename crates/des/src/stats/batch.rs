//! Batch-means confidence intervals for steady-state simulation output.
//!
//! A single long run produces autocorrelated observations, so the naive
//! standard error is biased low. The batch-means method groups consecutive
//! observations into `k` batches, treats batch averages as approximately
//! independent, and builds a Student-t interval on them.

use super::quantile::t_quantile;
use super::welford::Welford;

/// A two-sided confidence interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate (mean).
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
    /// Confidence level, e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Lower bound of the interval.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound of the interval.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether `x` falls inside the interval.
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo() && x <= self.hi()
    }

    /// Relative half-width (`half_width / |mean|`); infinite at mean zero.
    #[must_use]
    pub fn relative_half_width(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.6} ± {:.6} ({:.0}% CI)",
            self.mean,
            self.half_width,
            self.level * 100.0
        )
    }
}

/// Batch-means estimator over a stream of observations.
///
/// Observations are appended one at a time; batches are closed every
/// `batch_size` observations.
///
/// # Examples
///
/// ```
/// use rsin_des::stats::BatchMeans;
///
/// let mut bm = BatchMeans::new(100);
/// for i in 0..10_000 {
///     bm.push((i % 7) as f64);
/// }
/// let ci = bm.interval(0.95).expect("enough batches");
/// assert!(ci.contains(3.0)); // mean of 0..7 is 3
/// ```
#[derive(Clone, Debug)]
pub struct BatchMeans {
    batch_size: u64,
    current_sum: f64,
    current_n: u64,
    batches: Welford,
}

impl BatchMeans {
    /// Creates an estimator that closes a batch every `batch_size` samples.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    #[must_use]
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchMeans {
            batch_size,
            current_sum: 0.0,
            current_n: 0,
            batches: Welford::new(),
        }
    }

    /// Appends one observation.
    pub fn push(&mut self, x: f64) {
        self.current_sum += x;
        self.current_n += 1;
        if self.current_n == self.batch_size {
            self.batches.push(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_n = 0;
        }
    }

    /// Number of completed batches.
    #[must_use]
    pub fn num_batches(&self) -> u64 {
        self.batches.count()
    }

    /// Grand mean over completed batches (zero if none completed yet).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.batches.mean()
    }

    /// Student-t confidence interval at `level` over batch means.
    ///
    /// Returns `None` with fewer than two completed batches.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < level < 1`.
    #[must_use]
    pub fn interval(&self, level: f64) -> Option<ConfidenceInterval> {
        assert!(level > 0.0 && level < 1.0, "level must be in (0,1)");
        let k = self.batches.count();
        if k < 2 {
            return None;
        }
        let t = t_quantile(k - 1, 0.5 + level / 2.0);
        Some(ConfidenceInterval {
            mean: self.batches.mean(),
            half_width: t * self.batches.std_error(),
            level,
        })
    }
}

/// Builds a confidence interval from independent replication means.
///
/// Returns `None` with fewer than two replications.
///
/// # Panics
///
/// Panics unless `0 < level < 1`.
#[must_use]
pub fn replication_interval(means: &[f64], level: f64) -> Option<ConfidenceInterval> {
    assert!(level > 0.0 && level < 1.0, "level must be in (0,1)");
    if means.len() < 2 {
        return None;
    }
    let mut w = Welford::new();
    for &m in means {
        w.push(m);
    }
    let t = t_quantile(w.count() - 1, 0.5 + level / 2.0);
    Some(ConfidenceInterval {
        mean: w.mean(),
        half_width: t * w.std_error(),
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn interval_needs_two_batches() {
        let mut bm = BatchMeans::new(10);
        for _ in 0..15 {
            bm.push(1.0);
        }
        assert_eq!(bm.num_batches(), 1);
        assert!(bm.interval(0.95).is_none());
    }

    #[test]
    fn iid_coverage_is_reasonable() {
        // 95% CI should cover the true mean in most of 100 experiments.
        let mut covered = 0;
        for seed in 0..100 {
            let mut rng = SimRng::new(seed);
            let mut bm = BatchMeans::new(50);
            for _ in 0..2_000 {
                bm.push(rng.exponential(1.0));
            }
            let ci = bm.interval(0.95).expect("40 batches");
            if ci.contains(1.0) {
                covered += 1;
            }
        }
        assert!(covered >= 85, "coverage too low: {covered}/100");
    }

    #[test]
    fn interval_shrinks_with_more_data() {
        let mut rng = SimRng::new(1);
        let mut small = BatchMeans::new(20);
        let mut large = BatchMeans::new(20);
        for i in 0..10_000 {
            let x = rng.exponential(1.0);
            if i < 500 {
                small.push(x);
            }
            large.push(x);
        }
        let hw_small = small.interval(0.9).expect("batches").half_width;
        let hw_large = large.interval(0.9).expect("batches").half_width;
        assert!(hw_large < hw_small);
    }

    #[test]
    fn replication_interval_matches_hand_computation() {
        let means = [1.0, 2.0, 3.0];
        let ci = replication_interval(&means, 0.95).expect("3 reps");
        assert!((ci.mean - 2.0).abs() < 1e-12);
        // s = 1, se = 1/sqrt(3), t(2, .975) = 4.303.
        assert!((ci.half_width - 4.303 / 3f64.sqrt()).abs() < 0.01);
        assert!(replication_interval(&[1.0], 0.95).is_none());
    }

    #[test]
    fn ci_accessors_consistent() {
        let ci = ConfidenceInterval {
            mean: 10.0,
            half_width: 2.0,
            level: 0.95,
        };
        assert_eq!(ci.lo(), 8.0);
        assert_eq!(ci.hi(), 12.0);
        assert!(ci.contains(9.0));
        assert!(!ci.contains(12.5));
        assert!((ci.relative_half_width() - 0.2).abs() < 1e-12);
        assert!(!format!("{ci}").is_empty());
    }
}
