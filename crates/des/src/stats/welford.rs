//! Streaming mean/variance via Welford's algorithm.

/// Numerically stable streaming estimator of mean and variance.
///
/// # Examples
///
/// ```
/// use rsin_des::stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 6.0] {
///     w.push(x);
/// }
/// assert_eq!(w.count(), 3);
/// assert!((w.mean() - 4.0).abs() < 1e-12);
/// assert!((w.sample_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty estimator.
    #[must_use]
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is `NaN` — a NaN observation would silently poison every
    /// subsequent statistic.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN observation");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; zero when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (divides by n−1); zero for n < 2.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Smallest observation; `+inf` when empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another estimator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_two_pass_computation() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0 + 1.0).collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.sample_variance() - var).abs() < 1e-10);
    }

    #[test]
    fn empty_and_single_observation_edge_cases() {
        let mut w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
        w.push(5.0);
        assert_eq!(w.mean(), 5.0);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.min(), 5.0);
        assert_eq!(w.max(), 5.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.7).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let (a, b) = xs.split_at(20);
        let mut wa = Welford::new();
        let mut wb = Welford::new();
        a.iter().for_each(|&x| wa.push(x));
        b.iter().for_each(|&x| wb.push(x));
        wa.merge(&wb);
        assert_eq!(wa.count(), all.count());
        assert!((wa.mean() - all.mean()).abs() < 1e-12);
        assert!((wa.sample_variance() - all.sample_variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut w = Welford::new();
        w.push(1.0);
        w.push(2.0);
        let before = w;
        w.merge(&Welford::new());
        assert_eq!(w, before);
        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Welford::new().push(f64::NAN);
    }
}
