//! Fixed-width histograms with overflow tracking and quantile estimates.

/// A histogram over `[0, upper)` with equal-width bins plus an overflow bin.
///
/// # Examples
///
/// ```
/// use rsin_des::stats::Histogram;
///
/// let mut h = Histogram::new(10, 10.0);
/// for x in [0.5, 1.5, 1.6, 9.9, 42.0] {
///     h.record(x);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.bin_count(1), 2); // 1.5 and 1.6
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    bins: Vec<u64>,
    width: f64,
    upper: f64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins covering `[0, upper)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `upper` is not strictly positive and finite.
    #[must_use]
    pub fn new(bins: usize, upper: f64) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            upper.is_finite() && upper > 0.0,
            "upper bound must be positive"
        );
        Histogram {
            bins: vec![0; bins],
            width: upper / bins as f64,
            upper,
            overflow: 0,
            total: 0,
        }
    }

    /// Records an observation.
    ///
    /// Values `>= upper` land in the overflow bin; negative values clamp to
    /// bin 0 (durations are non-negative by construction elsewhere, but a
    /// tiny negative rounding residue should not panic a long run).
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN observation");
        self.total += 1;
        if x >= self.upper {
            self.overflow += 1;
        } else {
            let idx = ((x.max(0.0) / self.width) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total number of observations, including overflow.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Number of observations at or above the upper bound.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins (excluding overflow).
    #[must_use]
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Lower edge of bin `i`.
    #[must_use]
    pub fn bin_edge(&self, i: usize) -> f64 {
        self.width * i as f64
    }

    /// Estimates the `q`-quantile by linear interpolation within the bin.
    ///
    /// Returns `None` when empty or when the quantile falls in the overflow
    /// bin (the histogram cannot resolve it).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q < 1`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1), got {q}");
        if self.total == 0 {
            return None;
        }
        let target = q * self.total as f64;
        let mut cum = 0.0;
        for (i, &c) in self.bins.iter().enumerate() {
            let next = cum + c as f64;
            if next >= target && c > 0 {
                let frac = (target - cum) / c as f64;
                return Some(self.bin_edge(i) + frac * self.width);
            }
            cum = next;
        }
        None // falls in overflow
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Panics
    ///
    /// Panics if the bin count or bounds differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bins.len(), other.bins.len(), "bin count mismatch");
        assert!((self.upper - other.upper).abs() < 1e-12, "bound mismatch");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_range() {
        let mut h = Histogram::new(4, 4.0);
        for x in [0.0, 0.99, 1.0, 2.5, 3.999] {
            h.record(x);
        }
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(2), 1);
        assert_eq!(h.bin_count(3), 1);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn overflow_and_negative_clamp() {
        let mut h = Histogram::new(2, 2.0);
        h.record(5.0);
        h.record(-1e-15);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bin_count(0), 1);
    }

    #[test]
    fn quantile_interpolates() {
        let mut h = Histogram::new(10, 10.0);
        for i in 0..100 {
            h.record(i as f64 / 10.0); // uniform on [0, 9.9]
        }
        let med = h.quantile(0.5).expect("median resolvable");
        assert!((med - 5.0).abs() < 0.5, "median {med}");
    }

    #[test]
    fn quantile_in_overflow_is_none() {
        let mut h = Histogram::new(2, 1.0);
        h.record(10.0);
        h.record(20.0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(Histogram::new(2, 1.0).quantile(0.5), None);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(4, 4.0);
        let mut b = Histogram::new(4, 4.0);
        a.record(0.5);
        b.record(0.6);
        b.record(9.0);
        a.merge(&b);
        assert_eq!(a.bin_count(0), 2);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.count(), 3);
    }
}
