//! Time-weighted averages for piecewise-constant sample paths.
//!
//! Queue lengths, busy-server counts, and bus occupancy are step functions of
//! simulated time; their long-run averages must weight each level by how long
//! it was held, not by how often it was observed.

use crate::time::SimTime;

/// Accumulates the time-average of a piecewise-constant signal.
///
/// Call [`TimeWeighted::set`] whenever the signal changes; the accumulator
/// integrates the previous level over the elapsed interval.
///
/// # Examples
///
/// ```
/// use rsin_des::{stats::TimeWeighted, SimTime};
///
/// let mut q = TimeWeighted::new(SimTime::ZERO, 0.0);
/// q.set(SimTime::new(1.0), 2.0);   // level 0 for 1 unit
/// q.set(SimTime::new(3.0), 1.0);   // level 2 for 2 units
/// assert!((q.average(SimTime::new(4.0)) - (0.0*1.0 + 2.0*2.0 + 1.0*1.0)/4.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimeWeighted {
    start: SimTime,
    last_change: SimTime,
    level: f64,
    area: f64,
    peak: f64,
}

impl TimeWeighted {
    /// Starts integrating at `start` with the given initial level.
    #[must_use]
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            start,
            last_change: start,
            level: initial,
            area: 0.0,
            peak: initial,
        }
    }

    /// Records that the signal changed to `level` at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the previous change (time must be monotone).
    pub fn set(&mut self, at: SimTime, level: f64) {
        assert!(
            at >= self.last_change,
            "time went backwards: {at} < {}",
            self.last_change
        );
        self.area += self.level * (at - self.last_change);
        self.last_change = at;
        self.level = level;
        self.peak = self.peak.max(level);
    }

    /// Adjusts the current level by `delta` (e.g. +1 on enqueue, −1 on dequeue).
    pub fn add(&mut self, at: SimTime, delta: f64) {
        let next = self.level + delta;
        self.set(at, next);
    }

    /// Current level of the signal.
    #[must_use]
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Largest level seen so far.
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-average of the signal over `[start, until]`.
    ///
    /// Returns zero for an empty interval.
    ///
    /// # Panics
    ///
    /// Panics if `until` precedes the last recorded change.
    #[must_use]
    pub fn average(&self, until: SimTime) -> f64 {
        assert!(
            until >= self.last_change,
            "query time {until} precedes last change {}",
            self.last_change
        );
        let span = until - self.start;
        if span <= 0.0 {
            return 0.0;
        }
        (self.area + self.level * (until - self.last_change)) / span
    }

    /// Discards history and restarts the integration at `at`, keeping the
    /// current level. Used to drop a warm-up transient.
    pub fn reset_at(&mut self, at: SimTime) {
        assert!(at >= self.last_change, "cannot reset into the past");
        self.start = at;
        self.last_change = at;
        self.area = 0.0;
        self.peak = self.level;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal_averages_to_itself() {
        let q = TimeWeighted::new(SimTime::ZERO, 3.0);
        assert!((q.average(SimTime::new(10.0)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_interval_is_zero() {
        let q = TimeWeighted::new(SimTime::new(5.0), 7.0);
        assert_eq!(q.average(SimTime::new(5.0)), 0.0);
    }

    #[test]
    fn add_tracks_queue_dynamics() {
        let mut q = TimeWeighted::new(SimTime::ZERO, 0.0);
        q.add(SimTime::new(1.0), 1.0);
        q.add(SimTime::new(2.0), 1.0);
        q.add(SimTime::new(4.0), -2.0);
        assert_eq!(q.level(), 0.0);
        assert_eq!(q.peak(), 2.0);
        // Areas: 0*1 + 1*1 + 2*2 = 5 over 5 units.
        assert!((q.average(SimTime::new(5.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_drops_warmup() {
        let mut q = TimeWeighted::new(SimTime::ZERO, 0.0);
        q.set(SimTime::new(1.0), 100.0); // transient
        q.set(SimTime::new(2.0), 1.0);
        q.reset_at(SimTime::new(2.0));
        assert!((q.average(SimTime::new(4.0)) - 1.0).abs() < 1e-12);
        assert_eq!(q.peak(), 1.0);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn non_monotone_time_panics() {
        let mut q = TimeWeighted::new(SimTime::new(2.0), 0.0);
        q.set(SimTime::new(1.0), 1.0);
    }
}
