//! Quantile functions for confidence intervals.
//!
//! Implements the inverse standard-normal CDF (Acklam's rational
//! approximation, |error| < 1.15e-9) and the inverse Student-t CDF via a
//! Cornish–Fisher expansion in the normal quantile — accurate to a few parts
//! in 1e-4 for df ≥ 3, which is ample for simulation confidence intervals.

/// Inverse CDF of the standard normal distribution.
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
///
/// # Examples
///
/// ```
/// use rsin_des::stats::normal_quantile;
///
/// assert!(normal_quantile(0.5).abs() < 1e-6);
/// assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
/// ```
#[must_use]
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "quantile probability must be in (0,1), got {p}"
    );

    // Coefficients for Acklam's approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step using erfc for extra accuracy.
    let e = 0.5 * erfc(-x / std::f64::consts::SQRT_2) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Complementary error function (Numerical Recipes' rational Chebyshev fit,
/// |relative error| < 1.2e-7 everywhere).
#[must_use]
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Inverse CDF of Student's t distribution with `df` degrees of freedom.
///
/// Uses the Cornish–Fisher expansion around the normal quantile; exact in the
/// limit `df → ∞` and accurate to ~1e-4 for `df ≥ 3`. For `df ∈ {1, 2}` the
/// closed forms are used.
///
/// # Panics
///
/// Panics if `df == 0` or `p` is outside `(0, 1)`.
///
/// # Examples
///
/// ```
/// use rsin_des::stats::t_quantile;
///
/// // t(∞, 0.975) → 1.96; small df inflates the critical value.
/// assert!(t_quantile(1_000_000, 0.975) < t_quantile(5, 0.975));
/// ```
#[must_use]
pub fn t_quantile(df: u64, p: f64) -> f64 {
    assert!(df > 0, "degrees of freedom must be positive");
    assert!(
        p > 0.0 && p < 1.0,
        "quantile probability must be in (0,1), got {p}"
    );
    match df {
        // Cauchy.
        1 => (std::f64::consts::PI * (p - 0.5)).tan(),
        // Closed form for df = 2.
        2 => {
            let a = 4.0 * p * (1.0 - p);
            2.0 * (p - 0.5) * (2.0 / a).sqrt()
        }
        _ => {
            let z = normal_quantile(p);
            let n = df as f64;
            let z3 = z.powi(3);
            let z5 = z.powi(5);
            let z7 = z.powi(7);
            z + (z3 + z) / (4.0 * n)
                + (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * n * n)
                + (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) / (384.0 * n * n * n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_quantile_matches_tables() {
        let cases = [
            (0.5, 0.0),
            (0.8413447, 1.0),
            (0.9772499, 2.0),
            (0.975, 1.9599640),
            (0.995, 2.5758293),
            (0.05, -1.6448536),
            (0.001, -3.0902323),
        ];
        for (p, z) in cases {
            assert!(
                (normal_quantile(p) - z).abs() < 1e-5,
                "Phi^-1({p}) = {} want {z}",
                normal_quantile(p)
            );
        }
    }

    #[test]
    fn normal_quantile_is_odd() {
        for p in [0.6, 0.75, 0.9, 0.99] {
            assert!((normal_quantile(p) + normal_quantile(1.0 - p)).abs() < 1e-9);
        }
    }

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.15729921).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.84270079).abs() < 1e-6);
    }

    #[test]
    fn t_quantile_matches_tables() {
        // Standard t-table 0.975 critical values.
        let cases = [
            (1, 12.706),
            (2, 4.303),
            (5, 2.571),
            (10, 2.228),
            (30, 2.042),
            (100, 1.984),
        ];
        for (df, t) in cases {
            let got = t_quantile(df, 0.975);
            assert!((got - t).abs() < 0.02, "t({df}, 0.975) = {got}, want {t}");
        }
    }

    #[test]
    fn t_quantile_approaches_normal() {
        assert!((t_quantile(1_000_000, 0.975) - normal_quantile(0.975)).abs() < 1e-3);
    }

    #[test]
    fn t_quantile_is_monotone_in_p() {
        let df = 7;
        let mut prev = f64::NEG_INFINITY;
        for i in 1..20 {
            let p = i as f64 / 20.0;
            let t = t_quantile(df, p);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    #[should_panic(expected = "(0,1)")]
    fn quantile_rejects_p_one() {
        let _ = normal_quantile(1.0);
    }
}
