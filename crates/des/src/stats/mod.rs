//! Output statistics for simulation runs.
//!
//! - [`Welford`]: streaming mean/variance of untimed observations.
//! - [`TimeWeighted`]: time-averages of piecewise-constant signals
//!   (queue lengths, busy counts).
//! - [`Histogram`]: delay distributions and quantiles.
//! - [`BatchMeans`] / [`replication_interval`]: confidence intervals that
//!   respect autocorrelation in steady-state output.
//! - [`normal_quantile`] / [`t_quantile`]: the quantile functions backing
//!   the intervals.

mod batch;
mod histogram;
mod quantile;
mod timeavg;
mod welford;

pub use batch::{replication_interval, BatchMeans, ConfidenceInterval};
pub use histogram::Histogram;
pub use quantile::{erfc, normal_quantile, t_quantile};
pub use timeavg::TimeWeighted;
pub use welford::Welford;
