//! Reproducible random-number streams.
//!
//! Every stochastic component of a simulation draws from a [`SimRng`], a
//! seeded PRNG with support for deriving independent child streams. Deriving
//! streams (rather than sharing one generator) keeps components statistically
//! independent and makes output insensitive to the order in which components
//! happen to draw.
//!
//! The generator is a self-contained xoshiro256++ (Blackman & Vigna), seeded
//! through SplitMix64 — no external dependencies, so the simulator builds in
//! fully offline environments, and the stream for a given seed is stable
//! across toolchains.

/// A seeded random-number generator for simulation use.
///
/// Wraps a xoshiro256++ state and adds stream derivation
/// ([`SimRng::derive`]) plus the variate helpers the RSIN models need.
///
/// # Examples
///
/// ```
/// use rsin_des::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64(), "same seed, same stream");
///
/// let mut arrivals = a.derive(0);
/// let mut services = a.derive(1);
/// // Child streams are decorrelated from each other and the parent.
/// let _ = (arrivals.uniform(), services.uniform());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // Expand the seed into the 256-bit state with SplitMix64, per the
        // xoshiro authors' recommendation; the state is never all-zero
        // because splitmix64 is a bijection walked from distinct inputs.
        let mut z = splitmix64(seed);
        let mut state = [0u64; 4];
        for s in &mut state {
            z = splitmix64(z);
            *s = z;
        }
        SimRng { state, seed }
    }

    /// The seed this generator was created with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream identified by `stream`.
    ///
    /// Children with distinct `stream` values (or from parents with distinct
    /// seeds) are statistically independent for simulation purposes. The
    /// derivation is deterministic: same parent seed + same stream id gives
    /// the same child.
    #[must_use]
    pub fn derive(&self, stream: u64) -> SimRng {
        // Mix seed and stream id through splitmix64 twice so that adjacent
        // (seed, stream) pairs land far apart in the seed space.
        let mixed = splitmix64(splitmix64(self.seed ^ 0x9e37_79b9_7f4a_7c15).wrapping_add(stream));
        SimRng::new(mixed)
    }

    /// The next 64 random bits (xoshiro256++ step).
    #[allow(clippy::should_implement_trait)]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// The next 32 random bits (upper half of a 64-bit step).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// A uniform variate in `[0, 1)`.
    #[must_use]
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits → the standard dyadic-uniform construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform variate in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    #[must_use]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.uniform()
    }

    /// An exponential variate with the given `rate` (mean `1/rate`).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    #[must_use]
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(
            rate.is_finite() && rate > 0.0,
            "rate must be positive, got {rate}"
        );
        // Inverse transform; 1-U avoids ln(0).
        -(1.0 - self.uniform()).ln() / rate
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot draw an index from an empty range");
        // Lemire's multiply-shift: maps 64 random bits onto [0, n) with
        // bias below 2⁻⁶⁴·n — immaterial at simulation scales.
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }

    /// A Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.uniform() < p
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

/// SplitMix64 step: a bijective avalanche mixer used for seed derivation.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn derive_is_deterministic_and_distinct() {
        let parent = SimRng::new(99);
        let mut c1 = parent.derive(0);
        let mut c1_again = parent.derive(0);
        let mut c2 = parent.derive(1);
        assert_eq!(c1.next_u64(), c1_again.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn exponential_has_requested_mean() {
        let mut rng = SimRng::new(5);
        let rate = 4.0;
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 0.01,
            "empirical mean {mean} vs expected {}",
            1.0 / rate
        );
    }

    #[test]
    fn uniform_in_respects_bounds() {
        let mut rng = SimRng::new(11);
        for _ in 0..1000 {
            let x = rng.uniform_in(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = SimRng::new(23);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn index_covers_range() {
        let mut rng = SimRng::new(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.index(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SimRng::new(8);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // 13 bytes from two 64-bit draws; overwhelmingly unlikely all zero.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(17);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_rate() {
        let mut rng = SimRng::new(0);
        let _ = rng.exponential(0.0);
    }
}
