//! Simulation time.
//!
//! Simulated time is a non-negative, finite `f64` wrapped in the [`SimTime`]
//! newtype so that the event calendar can rely on a *total* order (`Ord`),
//! which bare `f64` does not provide. Construction validates the value, so a
//! `SimTime` is never `NaN` and never negative.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time.
///
/// `SimTime` is a thin wrapper over `f64` measured in *model time units*
/// (the unit is whatever the caller's rates are expressed in; the RSIN models
/// use "mean service times" as the natural unit). It is totally ordered and
/// hashable-free by design (floating point), but `Eq`/`Ord` are sound because
/// the constructor rejects `NaN`.
///
/// # Examples
///
/// ```
/// use rsin_des::SimTime;
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + 1.5;
/// assert!(t1 > t0);
/// assert_eq!(t1.as_f64(), 1.5);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a simulation time from a raw number of model time units.
    ///
    /// # Panics
    ///
    /// Panics if `t` is `NaN`, infinite, or negative; the event calendar
    /// depends on every timestamp being a finite, non-negative value.
    #[must_use]
    pub fn new(t: f64) -> Self {
        assert!(t.is_finite(), "simulation time must be finite, got {t}");
        assert!(t >= 0.0, "simulation time must be non-negative, got {t}");
        SimTime(t)
    }

    /// Returns the raw value in model time units.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Elapsed time since `earlier`, saturating at zero.
    ///
    /// Event-driven models occasionally subtract timestamps recorded in
    /// either order (e.g. warm-up boundaries); saturation avoids manufacturing
    /// negative durations from such pairs.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> f64 {
        (self.0 - earlier.0).max(0.0)
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Constructor guarantees no NaN, so partial_cmp is total here.
        self.partial_cmp(other).expect("SimTime is never NaN")
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;

    fn add(self, dt: f64) -> SimTime {
        SimTime::new(self.0 + dt)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, dt: f64) {
        *self = *self + dt;
    }
}

impl Sub for SimTime {
    type Output = f64;

    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl From<SimTime> for f64 {
    fn from(t: SimTime) -> f64 {
        t.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(SimTime::ZERO.as_f64(), 0.0);
    }

    #[test]
    fn ordering_is_total_for_valid_times() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.0);
        assert!(a < b);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::new(3.0) + 0.5;
        assert!((t.as_f64() - 3.5).abs() < 1e-12);
        assert!((t - SimTime::new(3.0) - 0.5).abs() < 1e-12);
        assert_eq!(t.since(SimTime::new(10.0)), 0.0, "saturating subtraction");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_rejected() {
        let _ = SimTime::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_time_rejected() {
        let _ = SimTime::new(f64::NAN);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", SimTime::new(1.25)).is_empty());
        assert!(!format!("{:?}", SimTime::ZERO).is_empty());
    }
}
