//! Fault-injection plans: *what* breaks, *when*, and for *how long*.
//!
//! A [`FaultPlan`] describes failures to inject into a simulation run, in
//! two flavors that can be combined freely:
//!
//! * **scripted** events — "resource port 3 fails at t = 50, is repaired
//!   at t = 80" — for reproducible degradation scenarios and acceptance
//!   tests;
//! * **stochastic** fail/repair processes — alternating exponential
//!   up-times (mean [`StochasticFault::mtbf`]) and down-times (mean
//!   [`StochasticFault::mttr`]) — for availability studies.
//!
//! The plan itself is inert data. A simulator materializes it into a
//! [`FaultTimeline`] with [`FaultPlan::timeline`], handing over a
//! dedicated random-number stream; the timeline then yields
//! [`FaultEvent`]s in nondecreasing time order, generating each stochastic
//! process lazily from its own derived sub-stream so the sequence is a
//! pure function of the seed.
//!
//! What a target identifier *means* is the consuming network's business:
//! [`FaultTarget::Resource`] carries a global output-port index and
//! [`FaultTarget::Element`] a network-specific structural element index
//! (a bus, a crossbar cell, an interchange box, a central scheduler). The
//! kernel only orders the events.

use crate::rng::SimRng;
use crate::time::SimTime;

/// What a fault event strikes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultTarget {
    /// The resource pool behind a global output port.
    Resource(usize),
    /// A structural network element (bus/arbiter, crossbar cell,
    /// interchange box, central scheduler — network-defined).
    Element(usize),
}

/// Whether the target goes down or comes back.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultAction {
    /// The target fails and stops contributing capacity.
    Fail,
    /// The target is repaired and resumes normal operation.
    Repair,
}

/// One scheduled state change of one target.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// When the change takes effect.
    pub time: SimTime,
    /// What changes state.
    pub target: FaultTarget,
    /// The direction of the change.
    pub action: FaultAction,
}

/// An alternating-renewal fail/repair process for one target.
///
/// The target starts up; it fails after an `Exp(1/mtbf)` up-time and is
/// repaired after an `Exp(1/mttr)` down-time, forever.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StochasticFault {
    /// The target the process drives.
    pub target: FaultTarget,
    /// Mean time between failures (mean up-time), in model time units.
    pub mtbf: f64,
    /// Mean time to repair (mean down-time), in model time units.
    pub mttr: f64,
}

/// A declarative collection of scripted events and stochastic processes.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    scripted: Vec<FaultEvent>,
    stochastic: Vec<StochasticFault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a scripted event.
    #[must_use]
    pub fn scripted(mut self, event: FaultEvent) -> Self {
        self.scripted.push(event);
        self
    }

    /// Adds a scripted failure of `target` at `time`.
    #[must_use]
    pub fn fail_at(self, time: SimTime, target: FaultTarget) -> Self {
        self.scripted(FaultEvent {
            time,
            target,
            action: FaultAction::Fail,
        })
    }

    /// Adds a scripted repair of `target` at `time`.
    #[must_use]
    pub fn repair_at(self, time: SimTime, target: FaultTarget) -> Self {
        self.scripted(FaultEvent {
            time,
            target,
            action: FaultAction::Repair,
        })
    }

    /// Adds a stochastic fail/repair process.
    ///
    /// # Panics
    ///
    /// Panics unless both `mtbf` and `mttr` are positive and finite.
    #[must_use]
    pub fn stochastic(mut self, fault: StochasticFault) -> Self {
        assert!(
            fault.mtbf.is_finite() && fault.mtbf > 0.0,
            "mtbf must be positive and finite, got {}",
            fault.mtbf
        );
        assert!(
            fault.mttr.is_finite() && fault.mttr > 0.0,
            "mttr must be positive and finite, got {}",
            fault.mttr
        );
        self.stochastic.push(fault);
        self
    }

    /// True when the plan injects nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scripted.is_empty() && self.stochastic.is_empty()
    }

    /// Materializes the plan into a time-ordered event source.
    ///
    /// Each stochastic process draws from its own sub-stream derived from
    /// `rng`, so the full event sequence is deterministic in the seed and
    /// independent of how far any individual process is consumed.
    #[must_use]
    pub fn timeline(&self, rng: &mut SimRng) -> FaultTimeline {
        let mut scripted = self.scripted.clone();
        // Stable-ascending then reversed: popping from the back yields
        // ascending times with equal-time events in insertion order.
        scripted.sort_by_key(|e| e.time);
        scripted.reverse();
        let processes = self
            .stochastic
            .iter()
            .enumerate()
            .map(|(i, &fault)| {
                let mut prng = rng.derive(i as u64);
                let first = SimTime::ZERO + prng.exponential(1.0 / fault.mtbf);
                FaultProcess {
                    fault,
                    next: FaultEvent {
                        time: first,
                        target: fault.target,
                        action: FaultAction::Fail,
                    },
                    rng: prng,
                }
            })
            .collect();
        FaultTimeline {
            scripted,
            processes,
        }
    }
}

#[derive(Debug)]
struct FaultProcess {
    fault: StochasticFault,
    next: FaultEvent,
    rng: SimRng,
}

/// A materialized, time-ordered stream of [`FaultEvent`]s.
///
/// Produced by [`FaultPlan::timeline`]; scripted events and every
/// stochastic process are merged lazily. Ties are broken deterministically
/// (scripted before stochastic, then by process order).
#[derive(Debug)]
pub struct FaultTimeline {
    scripted: Vec<FaultEvent>,
    processes: Vec<FaultProcess>,
}

impl FaultTimeline {
    /// The time of the next event, if any remain.
    ///
    /// Stochastic processes never run dry, so this is `None` only for a
    /// timeline built from scripted-only plans that have been drained.
    #[must_use]
    pub fn peek(&self) -> Option<SimTime> {
        let scripted = self.scripted.last().map(|e| e.time);
        let stochastic = self.processes.iter().map(|p| p.next.time).min();
        match (scripted, stochastic) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Removes and returns the next event in time order.
    pub fn pop(&mut self) -> Option<FaultEvent> {
        let next_time = self.peek()?;
        if let Some(e) = self.scripted.last() {
            if e.time == next_time {
                return self.scripted.pop();
            }
        }
        let idx = self
            .processes
            .iter()
            .position(|p| p.next.time == next_time)
            .expect("peek found a stochastic event");
        let proc = &mut self.processes[idx];
        let event = proc.next;
        let (mean, action) = match event.action {
            FaultAction::Fail => (proc.fault.mttr, FaultAction::Repair),
            FaultAction::Repair => (proc.fault.mtbf, FaultAction::Fail),
        };
        proc.next = FaultEvent {
            time: event.time + proc.rng.exponential(1.0 / mean),
            target: proc.fault.target,
            action,
        };
        Some(event)
    }

    /// Removes and returns, in time order, every event at or before
    /// `until` — the finite prefix a bounded run cares about. Stochastic
    /// processes stay live; a later `drain_until` continues where this
    /// one stopped.
    pub fn drain_until(&mut self, until: SimTime) -> Vec<FaultEvent> {
        let mut out = Vec::new();
        while let Some(t) = self.peek() {
            if t > until {
                break;
            }
            out.push(self.pop().expect("peeked an event"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_has_empty_timeline() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        let mut rng = SimRng::new(1);
        let mut tl = plan.timeline(&mut rng);
        assert_eq!(tl.peek(), None);
        assert_eq!(tl.pop(), None);
    }

    #[test]
    fn scripted_events_come_out_in_time_order() {
        let plan = FaultPlan::new()
            .fail_at(SimTime::new(5.0), FaultTarget::Element(2))
            .repair_at(SimTime::new(9.0), FaultTarget::Element(2))
            .fail_at(SimTime::new(1.0), FaultTarget::Resource(0));
        let mut rng = SimRng::new(1);
        let mut tl = plan.timeline(&mut rng);
        let times: Vec<f64> = std::iter::from_fn(|| tl.pop())
            .map(|e| e.time.as_f64())
            .collect();
        assert_eq!(times, vec![1.0, 5.0, 9.0]);
    }

    #[test]
    fn equal_time_scripted_events_keep_insertion_order() {
        let t = SimTime::new(3.0);
        let plan = FaultPlan::new()
            .fail_at(t, FaultTarget::Element(0))
            .fail_at(t, FaultTarget::Element(1));
        let mut rng = SimRng::new(1);
        let mut tl = plan.timeline(&mut rng);
        assert_eq!(tl.pop().expect("first").target, FaultTarget::Element(0));
        assert_eq!(tl.pop().expect("second").target, FaultTarget::Element(1));
    }

    #[test]
    fn stochastic_process_alternates_fail_repair() {
        let plan = FaultPlan::new().stochastic(StochasticFault {
            target: FaultTarget::Resource(7),
            mtbf: 10.0,
            mttr: 2.0,
        });
        let mut rng = SimRng::new(42);
        let mut tl = plan.timeline(&mut rng);
        let mut last = SimTime::ZERO;
        for i in 0..50 {
            let e = tl.pop().expect("endless process");
            assert!(e.time >= last, "time order violated at event {i}");
            last = e.time;
            assert_eq!(e.target, FaultTarget::Resource(7));
            let expect = if i % 2 == 0 {
                FaultAction::Fail
            } else {
                FaultAction::Repair
            };
            assert_eq!(e.action, expect, "event {i} out of phase");
        }
    }

    #[test]
    fn stochastic_means_are_roughly_right() {
        let plan = FaultPlan::new().stochastic(StochasticFault {
            target: FaultTarget::Element(0),
            mtbf: 8.0,
            mttr: 2.0,
        });
        let mut rng = SimRng::new(7);
        let mut tl = plan.timeline(&mut rng);
        let (mut up, mut down) = (0.0, 0.0);
        let mut prev = SimTime::ZERO;
        for _ in 0..4_000 {
            let e = tl.pop().expect("endless");
            match e.action {
                FaultAction::Fail => up += e.time - prev,
                FaultAction::Repair => down += e.time - prev,
            }
            prev = e.time;
        }
        let mean_up = up / 2_000.0;
        let mean_down = down / 2_000.0;
        assert!((mean_up - 8.0).abs() / 8.0 < 0.1, "mean up-time {mean_up}");
        assert!(
            (mean_down - 2.0).abs() / 2.0 < 0.1,
            "mean down-time {mean_down}"
        );
    }

    #[test]
    fn timeline_is_deterministic_in_the_seed() {
        let plan = FaultPlan::new()
            .fail_at(SimTime::new(4.0), FaultTarget::Element(1))
            .stochastic(StochasticFault {
                target: FaultTarget::Resource(0),
                mtbf: 5.0,
                mttr: 1.0,
            })
            .stochastic(StochasticFault {
                target: FaultTarget::Resource(1),
                mtbf: 3.0,
                mttr: 0.5,
            });
        let drain = |seed: u64| {
            let mut rng = SimRng::new(seed);
            let mut tl = plan.timeline(&mut rng);
            (0..40)
                .map(|_| tl.pop().expect("endless"))
                .collect::<Vec<_>>()
        };
        assert_eq!(drain(11), drain(11));
        assert_ne!(drain(11), drain(12));
    }

    #[test]
    fn drain_until_takes_the_prefix_and_leaves_the_rest() {
        let plan = FaultPlan::new()
            .fail_at(SimTime::new(2.0), FaultTarget::Resource(0))
            .repair_at(SimTime::new(6.0), FaultTarget::Resource(0))
            .stochastic(StochasticFault {
                target: FaultTarget::Resource(1),
                mtbf: 3.0,
                mttr: 1.0,
            });
        let mut rng = SimRng::new(5);
        let mut tl = plan.timeline(&mut rng);
        let prefix = tl.drain_until(SimTime::new(4.0));
        assert!(!prefix.is_empty());
        assert!(prefix.iter().all(|e| e.time <= SimTime::new(4.0)));
        assert!(prefix.windows(2).all(|w| w[0].time <= w[1].time));
        // The rest continues past the cut, still in order.
        let next = tl.pop().expect("stochastic process never runs dry");
        assert!(next.time > SimTime::new(4.0));
        assert!(prefix.iter().any(|e| e.time == SimTime::new(2.0)));
    }

    #[test]
    #[should_panic(expected = "mtbf must be positive")]
    fn bad_mtbf_rejected() {
        let _ = FaultPlan::new().stochastic(StochasticFault {
            target: FaultTarget::Element(0),
            mtbf: 0.0,
            mttr: 1.0,
        });
    }
}
