//! Deterministic scoped-thread parallelism for embarrassingly parallel
//! sweeps.
//!
//! The RSIN studies are Monte Carlo sweeps — ρ-grid × network class ×
//! replications — whose units of work are mutually independent. This module
//! provides the one primitive every layer of the stack shares:
//! [`scope_map`], a work-stealing map over a slice that collects results
//! **by index**, so the output is a pure function of the input regardless of
//! the worker count. Built entirely on `std::thread::scope` — no
//! dependencies, no global thread pool, no unsafe.
//!
//! # Determinism
//!
//! Each unit of work receives only its index and its item; workers share no
//! mutable state beyond the index counter. Results are returned in input
//! order, so `scope_map(items, 1, f)` and `scope_map(items, 32, f)` return
//! identical vectors whenever `f` is a pure function of `(index, item)`.
//! Every parallel path in the workspace (replications, ρ-grid points, whole
//! figures) is built on this property and is therefore byte-identical to
//! its sequential counterpart.

use crate::rng::SimRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Environment variable overriding the default worker count.
pub const JOBS_ENV: &str = "RSIN_JOBS";

/// The default number of worker threads: the `RSIN_JOBS` environment
/// variable when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`] (1 when unknown).
#[must_use]
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var(JOBS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Maps `f` over `items` on up to `jobs` scoped threads, returning results
/// in input order.
///
/// `f(i, &items[i])` must be a pure function of its arguments for the
/// output to be independent of `jobs`; all callers in this workspace ensure
/// that by deriving an independent RNG stream per index. Work is distributed
/// dynamically (an atomic next-index counter), so uneven item costs balance
/// across workers. `jobs <= 1` (or a single item) short-circuits to a plain
/// sequential loop with no thread machinery at all.
///
/// # Panics
///
/// Propagates the first panic of any worker.
pub fn scope_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = jobs.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            indexed.extend(h.join().expect("scope_map worker panicked"));
        }
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(indexed.len(), items.len());
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// [`scope_map`] over the index range `0..n` (no item slice needed).
pub fn scope_map_indexed<R, F>(n: usize, jobs: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    scope_map(&indices, jobs, |_, &i| f(i))
}

/// Why one supervised attempt did not produce a result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunFailure {
    /// The attempt panicked; the payload is rendered as text.
    Panicked {
        /// The panic payload, stringified (`"<opaque panic payload>"` when
        /// the payload is neither `&str` nor `String`).
        message: String,
    },
    /// The attempt ran past its hard deadline and was abandoned.
    TimedOut {
        /// The deadline the attempt exceeded.
        deadline: Duration,
    },
}

impl std::fmt::Display for RunFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunFailure::Panicked { message } => write!(f, "panicked: {message}"),
            RunFailure::TimedOut { deadline } => {
                write!(f, "timed out after {:.1}s", deadline.as_secs_f64())
            }
        }
    }
}

/// Retry discipline for [`run_supervised`]: how many times to re-run a
/// failing unit of work, how long to back off between attempts, and the
/// hard deadline after which a running attempt is abandoned.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Re-runs after the first attempt (0 = fail on the first failure).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per retry up to
    /// [`RetryPolicy::backoff_cap`].
    pub backoff_base: Duration,
    /// Upper bound on the (exponentially growing) backoff interval.
    pub backoff_cap: Duration,
    /// Seed of the deterministic backoff jitter stream. Derive it from a
    /// stable identity (e.g. a hash of the task name) so reruns replay the
    /// same backoff schedule.
    pub jitter_seed: u64,
    /// Hard per-attempt deadline. `Some(d)` runs each attempt on its own
    /// thread and abandons it (the thread is left to finish in the
    /// background) once `d` elapses; `None` runs attempts inline on the
    /// calling thread and never times out.
    pub hard_deadline: Option<Duration>,
}

impl RetryPolicy {
    /// A policy that runs the work inline exactly once: no retries, no
    /// deadline — panics are still caught and reported.
    #[must_use]
    pub fn no_retry() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
            jitter_seed: 0,
            hard_deadline: None,
        }
    }

    /// The backoff before retry number `retry` (1-based): `base · 2^(retry-1)`
    /// capped at [`RetryPolicy::backoff_cap`], scaled by a deterministic
    /// jitter factor in `[0.5, 1.0]` drawn from the policy's jitter stream.
    /// Pure in `(self, retry)`, so replays reproduce the schedule exactly.
    ///
    /// Public so other retry loops (the networked broker client's
    /// reconnect/shed-retry path) reuse the same capped-jittered discipline
    /// instead of growing a second one.
    #[must_use]
    pub fn delay_before(&self, retry: u32) -> Duration {
        let exp = self
            .backoff_base
            .saturating_mul(1u32.checked_shl(retry - 1).unwrap_or(u32::MAX))
            .min(self.backoff_cap);
        let jitter = 0.5
            + 0.5
                * SimRng::new(self.jitter_seed)
                    .derive(u64::from(retry))
                    .uniform();
        exp.mul_f64(jitter)
    }
}

/// The outcome of a [`run_supervised`] call.
#[derive(Debug)]
pub struct Supervised<R> {
    /// The computed value, or the failure of the final attempt.
    pub result: Result<R, RunFailure>,
    /// Failures of the attempts before the final one (empty when the first
    /// attempt succeeded).
    pub earlier_failures: Vec<RunFailure>,
    /// Attempts made (1 when the first attempt succeeded).
    pub attempts: u32,
    /// Wall-clock time across all attempts, including backoff sleeps.
    pub duration: Duration,
}

impl<R> Supervised<R> {
    /// All failures in attempt order, including the terminal one when the
    /// work never succeeded.
    pub fn failures(&self) -> impl Iterator<Item = &RunFailure> {
        self.earlier_failures
            .iter()
            .chain(self.result.as_ref().err())
    }
}

/// Renders a panic payload as text, the way the default panic hook would.
#[must_use]
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<opaque panic payload>".to_string()
    }
}

/// The backoff before retry number `retry` (1-based). See
/// [`RetryPolicy::delay_before`].
#[must_use]
fn backoff_delay(policy: &RetryPolicy, retry: u32) -> Duration {
    policy.delay_before(retry)
}

/// Runs `f` under supervision: panics are caught per attempt, attempts that
/// outlive the policy's hard deadline are abandoned, and failed attempts are
/// retried with capped exponential backoff (deterministic jitter from the
/// policy's seed).
///
/// With a hard deadline, each attempt runs on its own (non-scoped) thread
/// and its result is collected over a channel; an abandoned attempt keeps
/// running in the background until it finishes on its own — acceptable for
/// the pure compute tasks this workspace supervises, whose results are
/// simply discarded. Without a deadline, attempts run inline on the calling
/// thread.
///
/// `f` must be `Clone` because every attempt consumes one instance.
pub fn run_supervised<R, F>(f: F, policy: &RetryPolicy) -> Supervised<R>
where
    R: Send + 'static,
    F: Fn() -> R + Clone + Send + 'static,
{
    let start = Instant::now();
    let mut failures: Vec<RunFailure> = Vec::new();
    for attempt in 0..=policy.max_retries {
        if attempt > 0 {
            std::thread::sleep(backoff_delay(policy, attempt));
        }
        let outcome = match policy.hard_deadline {
            None => catch_unwind(AssertUnwindSafe(f.clone())).map_err(|p| RunFailure::Panicked {
                message: panic_message(p.as_ref()),
            }),
            Some(deadline) => {
                let (tx, rx) = mpsc::channel();
                let g = f.clone();
                std::thread::spawn(move || {
                    let r = catch_unwind(AssertUnwindSafe(g));
                    let _ = tx.send(r);
                });
                match rx.recv_timeout(deadline) {
                    Ok(Ok(r)) => Ok(r),
                    Ok(Err(p)) => Err(RunFailure::Panicked {
                        message: panic_message(p.as_ref()),
                    }),
                    Err(_) => Err(RunFailure::TimedOut { deadline }),
                }
            }
        };
        match outcome {
            Ok(r) => {
                return Supervised {
                    result: Ok(r),
                    earlier_failures: failures,
                    attempts: attempt + 1,
                    duration: start.elapsed(),
                }
            }
            Err(fail) => failures.push(fail),
        }
    }
    let last = failures.pop().expect("at least one attempt ran");
    Supervised {
        result: Err(last),
        earlier_failures: failures,
        attempts: policy.max_retries + 1,
        duration: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = scope_map(&items, 8, |i, &x| x * 2 + i as u64);
        let expect: Vec<u64> = (0..100).map(|x| x * 3).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u64> = (0..57).collect();
        let f = |i: usize, x: &u64| {
            // A mildly expensive pure function.
            let mut acc = *x ^ i as u64;
            for _ in 0..100 {
                acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            }
            acc
        };
        assert_eq!(scope_map(&items, 1, f), scope_map(&items, 7, f));
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(scope_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(scope_map(&[41u32], 4, |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn indexed_variant_matches() {
        let out = scope_map_indexed(10, 3, |i| i * i);
        let expect: Vec<usize> = (0..10).map(|i| i * i).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        assert_eq!(scope_map(&[1, 2, 3], 64, |_, &x| x * 10), vec![10, 20, 30]);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    fn test_policy(retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries: retries,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            jitter_seed: 7,
            hard_deadline: None,
        }
    }

    #[test]
    fn supervised_success_first_try() {
        let s = run_supervised(|| 41 + 1, &test_policy(2));
        assert_eq!(s.result, Ok(42));
        assert_eq!(s.attempts, 1);
        assert!(s.earlier_failures.is_empty());
    }

    #[test]
    fn supervised_panic_then_success_is_retried() {
        let tries = std::sync::Arc::new(AtomicUsize::new(0));
        let t = tries.clone();
        let s = run_supervised(
            move || {
                assert!(t.fetch_add(1, Ordering::SeqCst) > 0, "first attempt dies");
                "ok"
            },
            &test_policy(2),
        );
        assert_eq!(s.result, Ok("ok"));
        assert_eq!(s.attempts, 2);
        assert_eq!(s.earlier_failures.len(), 1);
        assert!(matches!(
            &s.earlier_failures[0],
            RunFailure::Panicked { message } if message.contains("first attempt dies")
        ));
    }

    #[test]
    fn supervised_exhausts_retries_on_persistent_panic() {
        let s: Supervised<()> = run_supervised(|| panic!("always"), &test_policy(2));
        assert_eq!(s.attempts, 3);
        assert_eq!(s.failures().count(), 3);
        assert!(matches!(
            s.result,
            Err(RunFailure::Panicked { ref message }) if message == "always"
        ));
    }

    #[test]
    fn supervised_stall_is_abandoned_and_retried() {
        let tries = std::sync::Arc::new(AtomicUsize::new(0));
        let t = tries.clone();
        let policy = RetryPolicy {
            hard_deadline: Some(Duration::from_millis(40)),
            ..test_policy(1)
        };
        let s = run_supervised(
            move || {
                if t.fetch_add(1, Ordering::SeqCst) == 0 {
                    std::thread::sleep(Duration::from_millis(400));
                }
                7u32
            },
            &policy,
        );
        assert_eq!(s.result, Ok(7));
        assert_eq!(s.attempts, 2);
        assert!(matches!(
            s.earlier_failures[0],
            RunFailure::TimedOut { deadline } if deadline == Duration::from_millis(40)
        ));
    }

    #[test]
    fn backoff_is_deterministic_capped_and_growing() {
        let p = test_policy(8);
        let d1 = backoff_delay(&p, 1);
        let d2 = backoff_delay(&p, 2);
        assert_eq!(d1, backoff_delay(&p, 1), "same (policy, retry) same delay");
        assert!(d1 >= Duration::from_micros(500), "jitter floor is 0.5x");
        assert!(backoff_delay(&p, 30) <= Duration::from_millis(4), "capped");
        assert!(d2 <= Duration::from_millis(4));
    }

    #[test]
    fn panic_message_handles_str_string_and_opaque() {
        let s = catch_unwind(|| panic!("literal")).unwrap_err();
        assert_eq!(panic_message(s.as_ref()), "literal");
        let s = catch_unwind(|| panic!("{}", 42)).unwrap_err();
        assert_eq!(panic_message(s.as_ref()), "42");
        let s = catch_unwind(|| std::panic::panic_any(17u8)).unwrap_err();
        assert_eq!(panic_message(s.as_ref()), "<opaque panic payload>");
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            scope_map(&[1u32, 2, 3, 4], 2, |_, &x| {
                assert!(x != 3, "boom");
                x
            })
        });
        assert!(r.is_err());
    }
}
