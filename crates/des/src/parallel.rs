//! Deterministic scoped-thread parallelism for embarrassingly parallel
//! sweeps.
//!
//! The RSIN studies are Monte Carlo sweeps — ρ-grid × network class ×
//! replications — whose units of work are mutually independent. This module
//! provides the one primitive every layer of the stack shares:
//! [`scope_map`], a work-stealing map over a slice that collects results
//! **by index**, so the output is a pure function of the input regardless of
//! the worker count. Built entirely on `std::thread::scope` — no
//! dependencies, no global thread pool, no unsafe.
//!
//! # Determinism
//!
//! Each unit of work receives only its index and its item; workers share no
//! mutable state beyond the index counter. Results are returned in input
//! order, so `scope_map(items, 1, f)` and `scope_map(items, 32, f)` return
//! identical vectors whenever `f` is a pure function of `(index, item)`.
//! Every parallel path in the workspace (replications, ρ-grid points, whole
//! figures) is built on this property and is therefore byte-identical to
//! its sequential counterpart.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the default worker count.
pub const JOBS_ENV: &str = "RSIN_JOBS";

/// The default number of worker threads: the `RSIN_JOBS` environment
/// variable when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`] (1 when unknown).
#[must_use]
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var(JOBS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Maps `f` over `items` on up to `jobs` scoped threads, returning results
/// in input order.
///
/// `f(i, &items[i])` must be a pure function of its arguments for the
/// output to be independent of `jobs`; all callers in this workspace ensure
/// that by deriving an independent RNG stream per index. Work is distributed
/// dynamically (an atomic next-index counter), so uneven item costs balance
/// across workers. `jobs <= 1` (or a single item) short-circuits to a plain
/// sequential loop with no thread machinery at all.
///
/// # Panics
///
/// Propagates the first panic of any worker.
pub fn scope_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = jobs.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            indexed.extend(h.join().expect("scope_map worker panicked"));
        }
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(indexed.len(), items.len());
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// [`scope_map`] over the index range `0..n` (no item slice needed).
pub fn scope_map_indexed<R, F>(n: usize, jobs: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    scope_map(&indices, jobs, |_, &i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = scope_map(&items, 8, |i, &x| x * 2 + i as u64);
        let expect: Vec<u64> = (0..100).map(|x| x * 3).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u64> = (0..57).collect();
        let f = |i: usize, x: &u64| {
            // A mildly expensive pure function.
            let mut acc = *x ^ i as u64;
            for _ in 0..100 {
                acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            }
            acc
        };
        assert_eq!(scope_map(&items, 1, f), scope_map(&items, 7, f));
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(scope_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(scope_map(&[41u32], 4, |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn indexed_variant_matches() {
        let out = scope_map_indexed(10, 3, |i| i * i);
        let expect: Vec<usize> = (0..10).map(|i| i * i).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        assert_eq!(scope_map(&[1, 2, 3], 64, |_, &x| x * 10), vec![10, 20, 30]);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            scope_map(&[1u32, 2, 3, 4], 2, |_, &x| {
                assert!(x != 3, "boom");
                x
            })
        });
        assert!(r.is_err());
    }
}
