//! Random variate distributions.
//!
//! The paper's model is Markovian throughout — Poisson arrivals, exponential
//! transmission and service (assumption (a) in Section II) — but the
//! simulator accepts any [`Draw`] implementation so sensitivity studies with
//! deterministic, Erlang, or hyperexponential stages are possible.

use crate::rng::SimRng;

/// A distribution over non-negative durations.
///
/// Implementors must return finite, non-negative samples.
pub trait Draw: std::fmt::Debug + Send + Sync {
    /// Draws one sample.
    fn draw(&self, rng: &mut SimRng) -> f64;

    /// The distribution's mean, used for traffic-intensity bookkeeping.
    fn mean(&self) -> f64;
}

/// The exponential distribution with a given rate (mean `1/rate`).
///
/// # Examples
///
/// ```
/// use rsin_des::{Draw, Exponential, SimRng};
///
/// let d = Exponential::with_rate(2.0);
/// assert_eq!(d.mean(), 0.5);
/// let mut rng = SimRng::new(1);
/// assert!(d.draw(&mut rng) >= 0.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exponential {
    rate: f64,
    /// `-1/rate`, precomputed: the inverse-transform draw multiplies the
    /// log by this instead of paying a floating divide per variate.
    neg_mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution from its rate parameter.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    #[must_use]
    pub fn with_rate(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "rate must be positive, got {rate}"
        );
        Exponential {
            rate,
            neg_mean: -1.0 / rate,
        }
    }

    /// Creates an exponential distribution from its mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    #[must_use]
    pub fn with_mean(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "mean must be positive, got {mean}"
        );
        Self::with_rate(1.0 / mean)
    }

    /// The rate parameter.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Draw for Exponential {
    fn draw(&self, rng: &mut SimRng) -> f64 {
        // Inverse transform, as in `SimRng::exponential`, but the rate
        // was validated at construction and the divide is a precomputed
        // multiply. `ln(1-U) <= 0` times `-1/rate < 0` keeps it >= 0.
        (1.0 - rng.uniform()).ln() * self.neg_mean
    }
    fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

/// A degenerate distribution that always returns the same value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// Creates a point mass at `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or not finite.
    #[must_use]
    pub fn new(value: f64) -> Self {
        assert!(
            value.is_finite() && value >= 0.0,
            "value must be >= 0, got {value}"
        );
        Deterministic { value }
    }
}

impl Draw for Deterministic {
    fn draw(&self, _rng: &mut SimRng) -> f64 {
        self.value
    }
    fn mean(&self) -> f64 {
        self.value
    }
}

/// The Erlang-k distribution: the sum of `k` iid exponential stages.
///
/// Squared coefficient of variation `1/k`, so large `k` approaches
/// deterministic service — useful for testing how the RSIN comparison
/// depends on service variability.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Erlang {
    k: u32,
    stage_rate: f64,
}

impl Erlang {
    /// Creates an Erlang distribution with `k` stages and overall `mean`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `mean` is not strictly positive and finite.
    #[must_use]
    pub fn new(k: u32, mean: f64) -> Self {
        assert!(k > 0, "Erlang needs at least one stage");
        assert!(
            mean.is_finite() && mean > 0.0,
            "mean must be positive, got {mean}"
        );
        Erlang {
            k,
            stage_rate: k as f64 / mean,
        }
    }

    /// Number of stages.
    #[must_use]
    pub fn stages(&self) -> u32 {
        self.k
    }
}

impl Draw for Erlang {
    fn draw(&self, rng: &mut SimRng) -> f64 {
        (0..self.k).map(|_| rng.exponential(self.stage_rate)).sum()
    }
    fn mean(&self) -> f64 {
        self.k as f64 / self.stage_rate
    }
}

/// A two-branch hyperexponential distribution (mixture of exponentials).
///
/// Squared coefficient of variation above 1 — high-variability workloads.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HyperExponential {
    p: f64,
    rate1: f64,
    rate2: f64,
}

impl HyperExponential {
    /// With probability `p` draw Exp(`rate1`), else Exp(`rate2`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or either rate is not positive.
    #[must_use]
    pub fn new(p: f64, rate1: f64, rate2: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        assert!(rate1.is_finite() && rate1 > 0.0, "rate1 must be positive");
        assert!(rate2.is_finite() && rate2 > 0.0, "rate2 must be positive");
        HyperExponential { p, rate1, rate2 }
    }
}

impl Draw for HyperExponential {
    fn draw(&self, rng: &mut SimRng) -> f64 {
        if rng.chance(self.p) {
            rng.exponential(self.rate1)
        } else {
            rng.exponential(self.rate2)
        }
    }
    fn mean(&self) -> f64 {
        self.p / self.rate1 + (1.0 - self.p) / self.rate2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_mean(d: &dyn Draw, seed: u64, n: usize) -> f64 {
        let mut rng = SimRng::new(seed);
        (0..n).map(|_| d.draw(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::with_mean(2.0);
        assert!((empirical_mean(&d, 1, 100_000) - 2.0).abs() < 0.05);
        assert!((d.mean() - 2.0).abs() < 1e-12);
        assert!((Exponential::with_rate(0.5).mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_is_constant() {
        let d = Deterministic::new(1.25);
        let mut rng = SimRng::new(2);
        for _ in 0..10 {
            assert_eq!(d.draw(&mut rng), 1.25);
        }
        assert_eq!(d.mean(), 1.25);
    }

    #[test]
    fn erlang_mean_and_reduced_variance() {
        let d = Erlang::new(4, 1.0);
        assert!((d.mean() - 1.0).abs() < 1e-12);
        let mut rng = SimRng::new(3);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| d.draw(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02);
        // Erlang-4 variance = mean^2 / 4 = 0.25.
        assert!((var - 0.25).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn hyperexponential_mean_matches() {
        let d = HyperExponential::new(0.3, 2.0, 0.5);
        let expect = 0.3 / 2.0 + 0.7 / 0.5;
        assert!((d.mean() - expect).abs() < 1e-12);
        assert!((empirical_mean(&d, 4, 200_000) - expect).abs() < 0.05);
    }

    #[test]
    fn draw_trait_object_usable() {
        let dists: Vec<Box<dyn Draw>> = vec![
            Box::new(Exponential::with_rate(1.0)),
            Box::new(Deterministic::new(1.0)),
            Box::new(Erlang::new(2, 1.0)),
        ];
        let mut rng = SimRng::new(5);
        for d in &dists {
            assert!(d.draw(&mut rng) >= 0.0);
            assert!((d.mean() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn erlang_rejects_zero_stages() {
        let _ = Erlang::new(0, 1.0);
    }
}
