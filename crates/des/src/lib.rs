//! # rsin-des — discrete-event simulation kernel
//!
//! The simulation substrate for the RSIN (resource-sharing interconnection
//! network) reproduction of Wah's *"A Comparative Study of Distributed
//! Resource Sharing on Multiprocessors"* (1983). The paper evaluates
//! crossbar networks partly — and Omega networks entirely — by stochastic
//! simulation; this crate provides everything those simulators need and
//! nothing domain-specific:
//!
//! - [`SimTime`]: a validated, totally ordered simulation clock value.
//! - [`Calendar`]: the future event list, with deterministic FIFO
//!   tie-breaking and event cancellation.
//! - [`SimRng`]: seeded, stream-splittable random numbers.
//! - [`Draw`] and implementations ([`Exponential`], [`Deterministic`],
//!   [`Erlang`], [`HyperExponential`]): service/arrival variates.
//! - [`FaultPlan`] / [`FaultTimeline`]: scripted and stochastic
//!   fail/repair schedules for fault-injection studies.
//! - [`stats`]: Welford accumulators, time-weighted averages, histograms,
//!   and batch-means / replication confidence intervals.
//! - [`replicate`] / [`replicate_par`]: independent-replication runners
//!   (sequential and scoped-thread parallel, bitwise-identical results).
//! - [`scope_map`] / [`default_jobs`]: the deterministic parallel-map
//!   primitive the whole workspace's `--jobs` support is built on.
//!
//! # Example: an M/M/1 queue in ~30 lines
//!
//! ```
//! use rsin_des::{Calendar, Exponential, Draw, SimRng, SimTime, stats::Welford};
//!
//! #[derive(Debug)]
//! enum Ev { Arrival, Departure }
//!
//! let (lambda, mu) = (0.5, 1.0);
//! let mut rng = SimRng::new(7);
//! let (arr, svc) = (Exponential::with_rate(lambda), Exponential::with_rate(mu));
//! let mut cal = Calendar::new();
//! let mut queue = 0u64;
//! let mut delays = Welford::new();
//! let mut waiting: Vec<SimTime> = Vec::new();
//!
//! cal.schedule(SimTime::ZERO + arr.draw(&mut rng), Ev::Arrival);
//! while delays.count() < 10_000 {
//!     let (now, ev) = cal.pop().expect("event");
//!     match ev {
//!         Ev::Arrival => {
//!             cal.schedule(now + arr.draw(&mut rng), Ev::Arrival);
//!             waiting.push(now);
//!             queue += 1;
//!             if queue == 1 {
//!                 cal.schedule(now + svc.draw(&mut rng), Ev::Departure);
//!             }
//!         }
//!         Ev::Departure => {
//!             let arrived = waiting.remove(0);
//!             delays.push(now - arrived);
//!             queue -= 1;
//!             if queue > 0 {
//!                 cal.schedule(now + svc.draw(&mut rng), Ev::Departure);
//!             }
//!         }
//!     }
//! }
//! // M/M/1 sojourn time = 1/(mu - lambda) = 2.0.
//! assert!((delays.mean() - 2.0).abs() < 0.25);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod calendar;
mod dist;
mod fault;
mod parallel;
mod replicate;
mod rng;
pub mod stats;
mod time;

pub use calendar::{Calendar, EventHandle, OpenRoot};
pub use dist::{Deterministic, Draw, Erlang, Exponential, HyperExponential};
pub use fault::{FaultAction, FaultEvent, FaultPlan, FaultTarget, FaultTimeline, StochasticFault};
pub use parallel::{
    default_jobs, panic_message, run_supervised, scope_map, scope_map_indexed, RetryPolicy,
    RunFailure, Supervised, JOBS_ENV,
};
pub use replicate::{replicate, replicate_par, replicate_parallel, Replicated};
pub use rng::SimRng;
pub use time::SimTime;
