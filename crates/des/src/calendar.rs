//! The event calendar (future event list).
//!
//! [`Calendar`] is a priority queue of `(SimTime, E)` pairs with two
//! guarantees the simulators rely on:
//!
//! 1. **Deterministic tie-breaking.** Events scheduled for the same instant
//!    are delivered in scheduling order (FIFO), so a simulation run is a pure
//!    function of its inputs and seed.
//! 2. **O(log n) cancellation.** Scheduling returns an [`EventHandle`]; a
//!    slot table maps live handles to their heap position, so `cancel`
//!    removes the entry immediately — no tombstones, no compaction passes,
//!    no hashing on the pop path.
//!
//! Internally the calendar is a slot-indexed 8-ary min-heap: each heap node
//! records which slot owns it, each slot records where its node currently
//! sits, and every sift keeps the two in sync. A wide layout cuts the tree
//! depth to a third of a binary heap's; the child scan stays cheap because
//! node ordering is a single branchless integer compare over contiguous
//! 16-byte nodes, which is where this structure spends its time.

use crate::time::SimTime;

/// Identifies a scheduled event so it can later be cancelled.
///
/// Handles are only meaningful for the [`Calendar`] that issued them. A
/// handle packs the slot index with the slot's generation at scheduling
/// time; delivering or cancelling the event bumps the generation, so stale
/// handles (including handles that survive a [`Calendar::clear`]) can never
/// alias a later event that happens to reuse the slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventHandle(u64);

impl EventHandle {
    fn new(generation: u32, slot: u32) -> Self {
        EventHandle((u64::from(generation) << 32) | u64::from(slot))
    }

    fn slot(self) -> u32 {
        (self.0 & 0xffff_ffff) as u32
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// A heap entry: ordering key plus owning slot, 16 bytes with no payload.
/// Payloads live in the slot-indexed side table instead, so the sift loops
/// — where the calendar spends its time — move small, fixed-size nodes no
/// matter how wide the event type is, and a d-ary child scan touches the
/// fewest cache lines possible.
#[derive(Clone, Copy, Debug)]
struct Node {
    /// The timestamp's IEEE bit pattern — order-preserving for the finite,
    /// non-negative values [`SimTime`] guarantees, and 8 bytes narrower
    /// than carrying a `u128` key plus a separate `SimTime`.
    time_bits: u64,
    /// FIFO sequence number (high half) packed with the owning slot (low
    /// half). `seq` is unique per calendar lifetime, so ordering by
    /// `(time, seq, slot)` equals ordering by `(time, seq)` — the slot
    /// bits are dead weight in the compare but free to carry, and packing
    /// them here keeps the node at 16 bytes.
    seq_slot: u64,
}

impl Node {
    fn new(time_bits: u64, seq: u32, slot: u32) -> Self {
        Node {
            time_bits,
            seq_slot: (u64::from(seq) << 32) | u64::from(slot),
        }
    }

    /// `(time, seq, slot)` as one integer so heap ordering is a single
    /// branchless `u128` compare.
    fn key(&self) -> u128 {
        (u128::from(self.time_bits) << 64) | u128::from(self.seq_slot)
    }

    fn slot(&self) -> u32 {
        (self.seq_slot & 0xffff_ffff) as u32
    }

    fn time(&self) -> SimTime {
        SimTime::new(f64::from_bits(self.time_bits))
    }
}

/// The order-preserving integer image of a timestamp. `-0.0` (admitted by
/// the `t >= 0.0` constructor check) is normalized to `+0.0` first — its
/// raw bit pattern would otherwise sort above every positive time.
fn time_bits(t: SimTime) -> u64 {
    (t.as_f64() + 0.0).to_bits()
}

#[derive(Debug)]
struct Slot {
    /// Incremented whenever the slot's event leaves the heap (delivery,
    /// cancellation, or clear), invalidating outstanding handles.
    generation: u32,
    /// Heap index of this slot's node; only meaningful while the slot is
    /// occupied (i.e. not on the free list).
    pos: u32,
}

/// Heap arity. Eight children per node cuts the tree depth (and with it the
/// swap count per sift) to a third of a binary heap's; the wider
/// min-of-children scan is nearly free because each comparison is one
/// integer compare and the children sit in at most three cache lines.
/// The full-node tournament in `sift_down` spells out the reduction for
/// exactly eight children.
const ARITY: usize = 8;

/// The smaller-keyed of two `(heap index, key)` candidates. Keys are unique,
/// so strict `<` with either tie-bias is correct.
#[inline]
fn min2(a: (usize, u128), b: (usize, u128)) -> (usize, u128) {
    if b.1 < a.1 {
        b
    } else {
        a
    }
}

/// A future event list holding events of payload type `E`.
///
/// Cancellation is eager and O(log n): the handle's slot names the heap
/// position directly, the entry is swap-removed, and one sift restores heap
/// order. `len()` is therefore always exact and the heap never holds dead
/// entries, no matter how cancel-heavy the workload (e.g. fault-injection
/// casualty teardown).
///
/// # Examples
///
/// ```
/// use rsin_des::{Calendar, SimTime};
///
/// let mut cal = Calendar::new();
/// cal.schedule(SimTime::new(2.0), "second");
/// cal.schedule(SimTime::new(1.0), "first");
/// let h = cal.schedule(SimTime::new(1.5), "cancelled");
/// cal.cancel(h);
///
/// assert_eq!(cal.pop().map(|(_, e)| e), Some("first"));
/// assert_eq!(cal.pop().map(|(_, e)| e), Some("second"));
/// assert!(cal.pop().is_none());
/// ```
#[derive(Debug)]
pub struct Calendar<E> {
    /// 8-ary min-heap ordered by `(time, seq)`; `seq` breaks ties FIFO.
    heap: Vec<Node>,
    /// Slot table: handle → current heap position + generation.
    slots: Vec<Slot>,
    /// Slot-indexed payload storage; `Some` exactly while the slot's node
    /// is in the heap. Kept out of the heap nodes so sifts move 16-byte
    /// entries regardless of the payload type's size.
    payloads: Vec<Option<E>>,
    /// Slots whose event has left the heap, available for reuse.
    free: Vec<u32>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// Creates an empty calendar with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        Calendar {
            heap: Vec::new(),
            slots: Vec::new(),
            payloads: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time: the timestamp of the most recently popped
    /// event (or zero before any event fires).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of scheduled, not-yet-cancelled, not-yet-delivered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// Returns a handle usable with [`Calendar::cancel`].
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock — scheduling into the
    /// past would silently corrupt causality.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventHandle {
        let (node, generation) = self.admit(at, payload);
        let pos = self.heap.len();
        self.heap.push(node);
        self.sift_up_from(pos, node);
        EventHandle::new(generation, node.slot())
    }

    /// Allocates the sequence number, slot, and payload storage for a new
    /// event — everything [`Calendar::schedule`] does except placing the
    /// node in the heap. Returns the node and the slot's generation.
    fn admit(&mut self, at: SimTime, payload: E) -> (Node, u32) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        let seq = u32::try_from(self.next_seq)
            .expect("calendar FIFO sequence space exhausted (2^32 schedules per calendar)");
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                let s = u32::try_from(self.slots.len()).expect("slot table overflow");
                self.slots.push(Slot {
                    generation: 0,
                    pos: 0,
                });
                self.payloads.push(None);
                s
            }
        };
        let generation = self.slots[slot as usize].generation;
        debug_assert!(self.payloads[slot as usize].is_none());
        self.payloads[slot as usize] = Some(payload);
        (Node::new(time_bits(at), seq, slot), generation)
    }

    /// Schedules `payload` to fire `dt` time units from now.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative, `NaN`, or infinite.
    pub fn schedule_in(&mut self, dt: f64, payload: E) -> EventHandle {
        self.schedule(self.now + dt, payload)
    }

    /// Cancels a previously scheduled event in O(log n).
    ///
    /// Returns `true` if the event was still pending (it will never be
    /// delivered), `false` if it had already fired or been cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        let slot = handle.slot() as usize;
        match self.slots.get(slot) {
            Some(s) if s.generation == handle.generation() => {
                let pos = s.pos as usize;
                self.retire(handle.slot());
                self.payloads[slot] = None;
                self.remove_at(pos);
                true
            }
            _ => false,
        }
    }

    /// Removes and returns the earliest live event, advancing the clock to
    /// its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        // The guard drops immediately, repairing the root hole.
        let (time, payload, _hole) = self.pop_open()?;
        Some((time, payload))
    }

    /// [`Calendar::pop`], but the root hole is handed back instead of being
    /// repaired on the spot.
    ///
    /// Event handlers that schedule exactly one successor event (an arrival
    /// re-arming its stream, a stage completion starting the next stage)
    /// can [`OpenRoot::refill`] the hole with that successor: the new node
    /// sifts down from the root once, where a separate `pop` + `schedule`
    /// would sift the displaced last node down *and* bottom-insert the new
    /// one. If the handler schedules nothing, dropping the guard repairs
    /// the heap exactly as `pop` would have — including on panic.
    ///
    /// The guard borrows the calendar exclusively, so no other calendar
    /// operation can observe the hole.
    pub fn pop_open(&mut self) -> Option<(SimTime, E, OpenRoot<'_, E>)> {
        let node = *self.heap.first()?;
        let slot = node.slot();
        self.retire(slot);
        let payload = self.payloads[slot as usize]
            .take()
            .expect("occupied slot has a payload");
        let time = node.time();
        self.now = time;
        Some((time, payload, OpenRoot { cal: self }))
    }

    /// Timestamp of the next live event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(Node::time)
    }

    /// Drops every pending event and resets the clock to zero.
    ///
    /// Handles issued before the clear stay invalid: each occupied slot's
    /// generation is bumped as its event is dropped.
    pub fn clear(&mut self) {
        for i in 0..self.heap.len() {
            let slot = self.heap[i].slot();
            self.slots[slot as usize].generation =
                self.slots[slot as usize].generation.wrapping_add(1);
            self.payloads[slot as usize] = None;
            self.free.push(slot);
        }
        self.heap.clear();
        self.now = SimTime::ZERO;
    }

    /// Invalidates outstanding handles for `slot` and returns it to the free
    /// list. Called exactly once per event as it leaves the heap.
    fn retire(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.generation = s.generation.wrapping_add(1);
        self.free.push(slot);
    }

    /// Records that the node at heap index `i` lives there now.
    fn sync_slot(&mut self, i: usize) {
        self.slots[self.heap[i].slot() as usize].pos = i as u32;
    }

    /// Both sift loops carry the moving node in a register ("hole"
    /// technique): displaced nodes are copied one step and have their slot
    /// patched as they go, and the mover is written exactly once, at its
    /// final position — half the memory traffic of a swap per level. The
    /// `_from` variants take the mover by value so `remove_at` never has to
    /// write the displaced last node into the hole just to re-read it.
    fn sift_up_from(&mut self, mut i: usize, moving: Node) {
        let key = moving.key();
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if key < self.heap[parent].key() {
                self.heap[i] = self.heap[parent];
                self.sync_slot(i);
                i = parent;
            } else {
                break;
            }
        }
        self.heap[i] = moving;
        self.sync_slot(i);
    }

    fn sift_down_from(&mut self, mut i: usize, moving: Node) {
        let n = self.heap.len();
        let key = moving.key();
        loop {
            let first = ARITY * i + 1;
            if first >= n {
                break;
            }
            let end = (first + ARITY).min(n);
            let (best, best_key) = if end - first == ARITY {
                // Full node: pairwise tournament. Keys are unique (every
                // node carries a distinct seq), so reduction order cannot
                // change the winner, and three dependent compare levels
                // replace a seven-deep serial select chain.
                let ch: &[Node; ARITY] = self.heap[first..first + ARITY]
                    .try_into()
                    .expect("slice has ARITY nodes");
                let m01 = min2((first, ch[0].key()), (first + 1, ch[1].key()));
                let m23 = min2((first + 2, ch[2].key()), (first + 3, ch[3].key()));
                let m45 = min2((first + 4, ch[4].key()), (first + 5, ch[5].key()));
                let m67 = min2((first + 6, ch[6].key()), (first + 7, ch[7].key()));
                min2(min2(m01, m23), min2(m45, m67))
            } else {
                let mut best = first;
                let mut best_key = self.heap[first].key();
                for c in first + 1..end {
                    // Select form rather than a branch: the comparison
                    // outcome is data-dependent noise, so a conditional
                    // move beats a mispredict-prone jump in this scan.
                    let k = self.heap[c].key();
                    let take = k < best_key;
                    best = if take { c } else { best };
                    best_key = if take { k } else { best_key };
                }
                (best, best_key)
            };
            if best_key < key {
                self.heap[i] = self.heap[best];
                self.sync_slot(i);
                i = best;
            } else {
                break;
            }
        }
        self.heap[i] = moving;
        self.sync_slot(i);
    }

    /// Removes the node at `pos` and restores heap order by sifting the
    /// displaced last node straight from its register copy into the hole
    /// (up or down, whichever it needs) — no intermediate store at `pos`.
    fn remove_at(&mut self, pos: usize) -> Node {
        let node = self.heap[pos];
        let moved = self.heap.pop().expect("heap is non-empty");
        if pos < self.heap.len() {
            if pos > 0 && moved.key() < self.heap[(pos - 1) / ARITY].key() {
                self.sift_up_from(pos, moved);
            } else {
                self.sift_down_from(pos, moved);
            }
        }
        node
    }
}

/// The root hole left by [`Calendar::pop_open`]: the popped event's slot
/// and clock bookkeeping is settled, but the root heap position still
/// holds the stale node. Consume the guard with [`OpenRoot::refill`] to
/// drop a successor event into the hole, or let it fall out of scope to
/// repair the heap as a plain [`Calendar::pop`] would.
///
/// Either way the calendar ends in exactly the state the equivalent
/// `pop`-then-`schedule` sequence produces: same slot reuse, same handle
/// generations, same FIFO sequence numbers, and — because node keys are
/// unique — the same delivery order for every remaining event.
#[derive(Debug)]
pub struct OpenRoot<'a, E> {
    cal: &'a mut Calendar<E>,
}

impl<E> OpenRoot<'_, E> {
    /// Schedules `payload` at `at`, placing its node straight into the
    /// root hole with a single down-sift.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the calendar clock, like
    /// [`Calendar::schedule`].
    pub fn refill(self, at: SimTime, payload: E) -> EventHandle {
        // Admit first: if it panics (scheduling into the past), the guard
        // is still armed and Drop repairs the heap. Only then disarm the
        // repair — the hole is consumed by the new node.
        let (node, generation) = self.cal.admit(at, payload);
        let mut this = std::mem::ManuallyDrop::new(self);
        this.cal.sift_down_from(0, node);
        EventHandle::new(generation, node.slot())
    }
}

impl<E> Drop for OpenRoot<'_, E> {
    fn drop(&mut self) {
        // Inline root removal, as in `pop`: move the last node into the
        // hole; the root needs no sift-direction probe.
        let moved = self
            .cal
            .heap
            .pop()
            .expect("open root implies a nonempty heap");
        if !self.cal.heap.is_empty() {
            self.cal.sift_down_from(0, moved);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(3.0), 3);
        cal.schedule(SimTime::new(1.0), 1);
        cal.schedule(SimTime::new(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut cal = Calendar::new();
        let t = SimTime::new(1.0);
        for i in 0..10 {
            cal.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_to_popped_event() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(5.0), ());
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.pop();
        assert_eq!(cal.now(), SimTime::new(5.0));
    }

    #[test]
    fn cancel_prevents_delivery_and_updates_len() {
        let mut cal = Calendar::new();
        let h1 = cal.schedule(SimTime::new(1.0), 1);
        let _h2 = cal.schedule(SimTime::new(2.0), 2);
        assert_eq!(cal.len(), 2);
        assert!(cal.cancel(h1));
        assert_eq!(cal.len(), 1);
        assert!(!cal.cancel(h1), "double cancel is a no-op");
        assert_eq!(cal.pop().map(|(_, e)| e), Some(2));
    }

    #[test]
    fn cancel_after_delivery_returns_false() {
        let mut cal = Calendar::new();
        let h = cal.schedule(SimTime::new(1.0), ());
        cal.pop();
        assert!(!cal.cancel(h));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(4.0), "a");
        cal.pop();
        cal.schedule_in(1.0, "b");
        let (t, _) = cal.pop().expect("event scheduled");
        assert_eq!(t, SimTime::new(5.0));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(2.0), ());
        cal.pop();
        cal.schedule(SimTime::new(1.0), ());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut cal = Calendar::new();
        let h = cal.schedule(SimTime::new(1.0), 1);
        cal.schedule(SimTime::new(2.0), 2);
        cal.cancel(h);
        assert_eq!(cal.peek_time(), Some(SimTime::new(2.0)));
        assert_eq!(cal.pop().map(|(_, e)| e), Some(2));
    }

    /// Driving one calendar with `pop_open`/`refill` and a twin with plain
    /// `pop` + `schedule` must produce identical deliveries and handles:
    /// same times, same payloads, same slot reuse, same cancel behavior.
    #[test]
    fn pop_open_refill_matches_pop_then_schedule() {
        let mut fused: Calendar<u32> = Calendar::new();
        let mut plain: Calendar<u32> = Calendar::new();
        let mut lcg: u64 = 0x2545_f491_4f6c_dd1d;
        let mut step = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (lcg >> 33) as f64 / f64::from(1u32 << 31)
        };
        for i in 0..32 {
            let t = SimTime::new(step());
            fused.schedule(t, i);
            plain.schedule(t, i);
        }
        let mut fused_handles = Vec::new();
        let mut plain_handles = Vec::new();
        for round in 0..2_000 {
            let dt = step();
            let (tf, ef, hole) = fused.pop_open().expect("fused calendar nonempty");
            let hf = if round % 3 == 0 {
                drop(hole);
                fused.schedule(tf + dt, ef)
            } else {
                hole.refill(tf + dt, ef)
            };
            let (tp, ep) = plain.pop().expect("plain calendar nonempty");
            let hp = plain.schedule(tp + dt, ep);
            assert_eq!((tf, ef), (tp, ep), "round {round} delivery diverged");
            assert_eq!(hf, hp, "round {round} handle diverged");
            fused_handles.push(hf);
            plain_handles.push(hp);
        }
        // Handles from both calendars stay interchangeable: cancelling the
        // live tail works, cancelling delivered events fails, on both.
        for (hf, hp) in fused_handles.iter().zip(&plain_handles) {
            assert_eq!(fused.cancel(*hf), plain.cancel(*hp));
        }
        assert_eq!(fused.len(), plain.len());
    }

    #[test]
    fn dropped_open_root_repairs_the_heap() {
        let mut cal = Calendar::new();
        for i in 0..100 {
            cal.schedule(SimTime::new(f64::from(i)), i);
        }
        // Pop half the events without refilling: every drop must leave a
        // well-ordered heap behind.
        for expect in 0..50 {
            let (t, e, hole) = cal.pop_open().expect("nonempty");
            drop(hole);
            assert_eq!((t, e), (SimTime::new(f64::from(expect)), expect));
        }
        assert_eq!(cal.len(), 50);
        let rest: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(rest, (50..100).collect::<Vec<_>>());
    }

    #[test]
    fn refill_into_singleton_heap() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(1.0), "only");
        let (t, e, hole) = cal.pop_open().expect("nonempty");
        assert_eq!((t, e), (SimTime::new(1.0), "only"));
        let h = hole.refill(SimTime::new(2.0), "next");
        assert_eq!(cal.len(), 1);
        assert_eq!(cal.peek_time(), Some(SimTime::new(2.0)));
        assert!(cal.cancel(h));
        assert!(cal.is_empty());
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn refill_into_the_past_panics() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(2.0), ());
        let (_, _, hole) = cal.pop_open().expect("nonempty");
        hole.refill(SimTime::new(1.0), ());
    }

    #[test]
    fn heavy_cancellation_frees_heap_storage() {
        // Cancellation is eager: a cancel-heavy workload (fault-injection
        // casualty teardown) removes entries on the spot, so the heap holds
        // exactly the live events — no tombstones, no compaction debt.
        let mut cal = Calendar::new();
        let handles: Vec<EventHandle> = (0..10_000)
            .map(|i| cal.schedule(SimTime::new(1.0 + f64::from(i)), i))
            .collect();
        // Cancel all but every 100th event.
        for (i, h) in handles.iter().enumerate() {
            if i % 100 != 0 {
                assert!(cal.cancel(*h));
            }
        }
        assert_eq!(cal.len(), 100);
        // Delivery is unaffected: the 100 survivors pop in order.
        let out: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        let expect: Vec<i32> = (0..10_000).step_by(100).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn slot_reuse_keeps_cancel_semantics() {
        // Slots freed by cancellation are reused by later schedules; the
        // generation tag keeps every old handle dead.
        let mut cal = Calendar::new();
        let handles: Vec<EventHandle> = (0..1_000)
            .map(|i| cal.schedule(SimTime::new(f64::from(i) + 1.0), i))
            .collect();
        for h in &handles[..900] {
            cal.cancel(*h);
        }
        assert!(!cal.cancel(handles[0]), "double cancel is a no-op");
        assert!(cal.cancel(handles[950]));
        assert_eq!(cal.len(), 99);
        // New events reuse the freed slots; their handles must not collide
        // with the cancelled ones.
        let fresh: Vec<EventHandle> = (0..900)
            .map(|i| cal.schedule(SimTime::new(2_000.0 + f64::from(i)), i))
            .collect();
        for h in &handles[..900] {
            assert!(!cal.cancel(*h), "stale handle revived by slot reuse");
        }
        assert_eq!(cal.len(), 999);
        for h in &fresh {
            assert!(cal.cancel(*h));
        }
        assert_eq!(cal.len(), 99);
    }

    #[test]
    fn handles_stay_dead_across_clear() {
        let mut cal = Calendar::new();
        let h = cal.schedule(SimTime::new(1.0), 1);
        cal.clear();
        assert!(!cal.cancel(h), "clear must invalidate outstanding handles");
        // The slot is reused after the clear; the old handle still must not
        // cancel the new event.
        let h2 = cal.schedule(SimTime::new(1.0), 2);
        assert!(!cal.cancel(h));
        assert!(cal.cancel(h2));
    }

    #[test]
    fn clear_empties_everything() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(1.0), ());
        cal.clear();
        assert!(cal.is_empty());
        assert_eq!(cal.peek_time(), None);
    }
}
