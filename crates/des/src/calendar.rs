//! The event calendar (future event list).
//!
//! [`Calendar`] is a priority queue of `(SimTime, E)` pairs with two
//! guarantees the simulators rely on:
//!
//! 1. **Deterministic tie-breaking.** Events scheduled for the same instant
//!    are delivered in scheduling order (FIFO), so a simulation run is a pure
//!    function of its inputs and seed.
//! 2. **O(log n) cancellation.** Scheduling returns an [`EventHandle`]; a
//!    slot table maps live handles to their heap position, so `cancel`
//!    removes the entry immediately — no tombstones, no compaction passes,
//!    no hashing on the pop path.
//!
//! Internally the calendar is a slot-indexed 8-ary min-heap: each heap node
//! records which slot owns it, each slot records where its node currently
//! sits, and every sift keeps the two in sync. A wide layout cuts the tree
//! depth to a third of a binary heap's; the child scan stays cheap because
//! node ordering is a single branchless integer compare over contiguous
//! 24-byte nodes, which is where this structure spends its time.

use crate::time::SimTime;

/// Identifies a scheduled event so it can later be cancelled.
///
/// Handles are only meaningful for the [`Calendar`] that issued them. A
/// handle packs the slot index with the slot's generation at scheduling
/// time; delivering or cancelling the event bumps the generation, so stale
/// handles (including handles that survive a [`Calendar::clear`]) can never
/// alias a later event that happens to reuse the slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventHandle(u64);

impl EventHandle {
    fn new(generation: u32, slot: u32) -> Self {
        EventHandle((u64::from(generation) << 32) | u64::from(slot))
    }

    fn slot(self) -> u32 {
        (self.0 & 0xffff_ffff) as u32
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

#[derive(Debug)]
struct Node<E> {
    /// The timestamp's IEEE bit pattern — order-preserving for the finite,
    /// non-negative values [`SimTime`] guarantees, and 8 bytes narrower
    /// than carrying a `u128` key plus a separate `SimTime`.
    time_bits: u64,
    /// FIFO sequence number; breaks same-instant ties in scheduling order.
    seq: u64,
    slot: u32,
    payload: E,
}

impl<E> Node<E> {
    /// `(time, seq)` as one integer so heap ordering is a single branchless
    /// `u128` compare.
    fn key(&self) -> u128 {
        (u128::from(self.time_bits) << 64) | u128::from(self.seq)
    }

    fn time(&self) -> SimTime {
        SimTime::new(f64::from_bits(self.time_bits))
    }
}

/// The order-preserving integer image of a timestamp. `-0.0` (admitted by
/// the `t >= 0.0` constructor check) is normalized to `+0.0` first — its
/// raw bit pattern would otherwise sort above every positive time.
fn time_bits(t: SimTime) -> u64 {
    (t.as_f64() + 0.0).to_bits()
}

#[derive(Debug)]
struct Slot {
    /// Incremented whenever the slot's event leaves the heap (delivery,
    /// cancellation, or clear), invalidating outstanding handles.
    generation: u32,
    /// Heap index of this slot's node; only meaningful while the slot is
    /// occupied (i.e. not on the free list).
    pos: u32,
}

/// Heap arity. Eight children per node cuts the tree depth (and with it the
/// swap count per sift) to a third of a binary heap's; the wider
/// min-of-children scan is nearly free because each comparison is one
/// integer compare and the children sit in at most three cache lines.
const ARITY: usize = 8;

/// A future event list holding events of payload type `E`.
///
/// Cancellation is eager and O(log n): the handle's slot names the heap
/// position directly, the entry is swap-removed, and one sift restores heap
/// order. `len()` is therefore always exact and the heap never holds dead
/// entries, no matter how cancel-heavy the workload (e.g. fault-injection
/// casualty teardown).
///
/// # Examples
///
/// ```
/// use rsin_des::{Calendar, SimTime};
///
/// let mut cal = Calendar::new();
/// cal.schedule(SimTime::new(2.0), "second");
/// cal.schedule(SimTime::new(1.0), "first");
/// let h = cal.schedule(SimTime::new(1.5), "cancelled");
/// cal.cancel(h);
///
/// assert_eq!(cal.pop().map(|(_, e)| e), Some("first"));
/// assert_eq!(cal.pop().map(|(_, e)| e), Some("second"));
/// assert!(cal.pop().is_none());
/// ```
#[derive(Debug)]
pub struct Calendar<E> {
    /// 8-ary min-heap ordered by `(time, seq)`; `seq` breaks ties FIFO.
    heap: Vec<Node<E>>,
    /// Slot table: handle → current heap position + generation.
    slots: Vec<Slot>,
    /// Slots whose event has left the heap, available for reuse.
    free: Vec<u32>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// Creates an empty calendar with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        Calendar {
            heap: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time: the timestamp of the most recently popped
    /// event (or zero before any event fires).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of scheduled, not-yet-cancelled, not-yet-delivered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// Returns a handle usable with [`Calendar::cancel`].
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock — scheduling into the
    /// past would silently corrupt causality.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                let s = u32::try_from(self.slots.len()).expect("slot table overflow");
                self.slots.push(Slot {
                    generation: 0,
                    pos: 0,
                });
                s
            }
        };
        let pos = self.heap.len();
        self.slots[slot as usize].pos = pos as u32;
        let generation = self.slots[slot as usize].generation;
        self.heap.push(Node {
            time_bits: time_bits(at),
            seq,
            slot,
            payload,
        });
        self.sift_up(pos);
        EventHandle::new(generation, slot)
    }

    /// Schedules `payload` to fire `dt` time units from now.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative, `NaN`, or infinite.
    pub fn schedule_in(&mut self, dt: f64, payload: E) -> EventHandle {
        self.schedule(self.now + dt, payload)
    }

    /// Cancels a previously scheduled event in O(log n).
    ///
    /// Returns `true` if the event was still pending (it will never be
    /// delivered), `false` if it had already fired or been cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        let slot = handle.slot() as usize;
        match self.slots.get(slot) {
            Some(s) if s.generation == handle.generation() => {
                let pos = s.pos as usize;
                self.retire(handle.slot());
                self.remove_at(pos);
                true
            }
            _ => false,
        }
    }

    /// Removes and returns the earliest live event, advancing the clock to
    /// its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let slot = self.heap.first()?.slot;
        self.retire(slot);
        let node = self.remove_at(0);
        let time = node.time();
        self.now = time;
        Some((time, node.payload))
    }

    /// Timestamp of the next live event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(Node::time)
    }

    /// Drops every pending event and resets the clock to zero.
    ///
    /// Handles issued before the clear stay invalid: each occupied slot's
    /// generation is bumped as its event is dropped.
    pub fn clear(&mut self) {
        for i in 0..self.heap.len() {
            let slot = self.heap[i].slot;
            self.slots[slot as usize].generation =
                self.slots[slot as usize].generation.wrapping_add(1);
            self.free.push(slot);
        }
        self.heap.clear();
        self.now = SimTime::ZERO;
    }

    /// Invalidates outstanding handles for `slot` and returns it to the free
    /// list. Called exactly once per event as it leaves the heap.
    fn retire(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.generation = s.generation.wrapping_add(1);
        self.free.push(slot);
    }

    /// Whether the node at `a` must pop before the node at `b`.
    fn before(&self, a: usize, b: usize) -> bool {
        self.heap[a].key() < self.heap[b].key()
    }

    /// Records that the node at heap index `i` lives there now.
    fn sync_slot(&mut self, i: usize) {
        self.slots[self.heap[i].slot as usize].pos = i as u32;
    }

    /// Both sift loops swap the moving node level by level but only patch
    /// the *displaced* node's slot as they go — the mover's slot is written
    /// once, at its final position, instead of at every level.
    fn sift_up(&mut self, mut i: usize) {
        let key = self.heap[i].key();
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if key < self.heap[parent].key() {
                self.heap.swap(i, parent);
                self.sync_slot(i);
                i = parent;
            } else {
                break;
            }
        }
        self.sync_slot(i);
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        let key = self.heap[i].key();
        loop {
            let first = ARITY * i + 1;
            if first >= n {
                break;
            }
            let end = (first + ARITY).min(n);
            let mut best = first;
            let mut best_key = self.heap[first].key();
            for c in first + 1..end {
                let k = self.heap[c].key();
                if k < best_key {
                    best = c;
                    best_key = k;
                }
            }
            if best_key < key {
                self.heap.swap(i, best);
                self.sync_slot(i);
                i = best;
            } else {
                break;
            }
        }
        self.sync_slot(i);
    }

    /// Swap-removes the node at `pos` and restores heap order with a single
    /// sift (up or down, whichever the displaced node needs).
    fn remove_at(&mut self, pos: usize) -> Node<E> {
        let last = self.heap.len() - 1;
        self.heap.swap(pos, last);
        let node = self.heap.pop().expect("heap is non-empty");
        if pos < last {
            if pos > 0 && self.before(pos, (pos - 1) / ARITY) {
                self.sift_up(pos);
            } else {
                self.sift_down(pos);
            }
        }
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(3.0), 3);
        cal.schedule(SimTime::new(1.0), 1);
        cal.schedule(SimTime::new(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut cal = Calendar::new();
        let t = SimTime::new(1.0);
        for i in 0..10 {
            cal.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_to_popped_event() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(5.0), ());
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.pop();
        assert_eq!(cal.now(), SimTime::new(5.0));
    }

    #[test]
    fn cancel_prevents_delivery_and_updates_len() {
        let mut cal = Calendar::new();
        let h1 = cal.schedule(SimTime::new(1.0), 1);
        let _h2 = cal.schedule(SimTime::new(2.0), 2);
        assert_eq!(cal.len(), 2);
        assert!(cal.cancel(h1));
        assert_eq!(cal.len(), 1);
        assert!(!cal.cancel(h1), "double cancel is a no-op");
        assert_eq!(cal.pop().map(|(_, e)| e), Some(2));
    }

    #[test]
    fn cancel_after_delivery_returns_false() {
        let mut cal = Calendar::new();
        let h = cal.schedule(SimTime::new(1.0), ());
        cal.pop();
        assert!(!cal.cancel(h));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(4.0), "a");
        cal.pop();
        cal.schedule_in(1.0, "b");
        let (t, _) = cal.pop().expect("event scheduled");
        assert_eq!(t, SimTime::new(5.0));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(2.0), ());
        cal.pop();
        cal.schedule(SimTime::new(1.0), ());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut cal = Calendar::new();
        let h = cal.schedule(SimTime::new(1.0), 1);
        cal.schedule(SimTime::new(2.0), 2);
        cal.cancel(h);
        assert_eq!(cal.peek_time(), Some(SimTime::new(2.0)));
        assert_eq!(cal.pop().map(|(_, e)| e), Some(2));
    }

    #[test]
    fn heavy_cancellation_frees_heap_storage() {
        // Cancellation is eager: a cancel-heavy workload (fault-injection
        // casualty teardown) removes entries on the spot, so the heap holds
        // exactly the live events — no tombstones, no compaction debt.
        let mut cal = Calendar::new();
        let handles: Vec<EventHandle> = (0..10_000)
            .map(|i| cal.schedule(SimTime::new(1.0 + f64::from(i)), i))
            .collect();
        // Cancel all but every 100th event.
        for (i, h) in handles.iter().enumerate() {
            if i % 100 != 0 {
                assert!(cal.cancel(*h));
            }
        }
        assert_eq!(cal.len(), 100);
        // Delivery is unaffected: the 100 survivors pop in order.
        let out: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        let expect: Vec<i32> = (0..10_000).step_by(100).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn slot_reuse_keeps_cancel_semantics() {
        // Slots freed by cancellation are reused by later schedules; the
        // generation tag keeps every old handle dead.
        let mut cal = Calendar::new();
        let handles: Vec<EventHandle> = (0..1_000)
            .map(|i| cal.schedule(SimTime::new(f64::from(i) + 1.0), i))
            .collect();
        for h in &handles[..900] {
            cal.cancel(*h);
        }
        assert!(!cal.cancel(handles[0]), "double cancel is a no-op");
        assert!(cal.cancel(handles[950]));
        assert_eq!(cal.len(), 99);
        // New events reuse the freed slots; their handles must not collide
        // with the cancelled ones.
        let fresh: Vec<EventHandle> = (0..900)
            .map(|i| cal.schedule(SimTime::new(2_000.0 + f64::from(i)), i))
            .collect();
        for h in &handles[..900] {
            assert!(!cal.cancel(*h), "stale handle revived by slot reuse");
        }
        assert_eq!(cal.len(), 999);
        for h in &fresh {
            assert!(cal.cancel(*h));
        }
        assert_eq!(cal.len(), 99);
    }

    #[test]
    fn handles_stay_dead_across_clear() {
        let mut cal = Calendar::new();
        let h = cal.schedule(SimTime::new(1.0), 1);
        cal.clear();
        assert!(!cal.cancel(h), "clear must invalidate outstanding handles");
        // The slot is reused after the clear; the old handle still must not
        // cancel the new event.
        let h2 = cal.schedule(SimTime::new(1.0), 2);
        assert!(!cal.cancel(h));
        assert!(cal.cancel(h2));
    }

    #[test]
    fn clear_empties_everything() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(1.0), ());
        cal.clear();
        assert!(cal.is_empty());
        assert_eq!(cal.peek_time(), None);
    }
}
