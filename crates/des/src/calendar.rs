//! The event calendar (future event list).
//!
//! [`Calendar`] is a priority queue of `(SimTime, E)` pairs with two
//! guarantees the simulators rely on:
//!
//! 1. **Deterministic tie-breaking.** Events scheduled for the same instant
//!    are delivered in scheduling order (FIFO), so a simulation run is a pure
//!    function of its inputs and seed.
//! 2. **O(log n) cancellation.** Scheduling returns an [`EventHandle`]; a
//!    cancelled handle is lazily skipped when it reaches the head of the heap.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifies a scheduled event so it can later be cancelled.
///
/// Handles are only meaningful for the [`Calendar`] that issued them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventHandle(u64);

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq) pops
        // first. seq breaks ties FIFO.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future event list holding events of payload type `E`.
///
/// Cancellation is lazy — a cancelled entry stays in the heap until it
/// reaches the head — but bounded: whenever cancelled entries outnumber
/// half the live ones the heap is compacted in place, so a workload that
/// cancels heavily (e.g. fault-injection casualty teardown) cannot grow the
/// calendar's memory without bound.
///
/// # Examples
///
/// ```
/// use rsin_des::{Calendar, SimTime};
///
/// let mut cal = Calendar::new();
/// cal.schedule(SimTime::new(2.0), "second");
/// cal.schedule(SimTime::new(1.0), "first");
/// let h = cal.schedule(SimTime::new(1.5), "cancelled");
/// cal.cancel(h);
///
/// assert_eq!(cal.pop().map(|(_, e)| e), Some("first"));
/// assert_eq!(cal.pop().map(|(_, e)| e), Some("second"));
/// assert!(cal.pop().is_none());
/// ```
#[derive(Debug)]
pub struct Calendar<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    cancelled: std::collections::HashSet<u64>,
    now: SimTime,
    live: usize,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// Creates an empty calendar with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
            now: SimTime::ZERO,
            live: 0,
        }
    }

    /// The current simulated time: the timestamp of the most recently popped
    /// event (or zero before any event fires).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of scheduled, not-yet-cancelled, not-yet-delivered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// Returns a handle usable with [`Calendar::cancel`].
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock — scheduling into the
    /// past would silently corrupt causality.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            payload,
        });
        self.live += 1;
        EventHandle(seq)
    }

    /// Schedules `payload` to fire `dt` time units from now.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative, `NaN`, or infinite.
    pub fn schedule_in(&mut self, dt: f64, payload: E) -> EventHandle {
        self.schedule(self.now + dt, payload)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending (it will never be
    /// delivered), `false` if it had already fired or been cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if handle.0 >= self.next_seq {
            return false;
        }
        let fresh = self.cancelled.insert(handle.0);
        if fresh && self.live > 0 {
            // The entry may already have been delivered; only count it as
            // live-removed if it is still in the heap. We cannot cheaply know,
            // so we instead verify on pop; `live` is corrected there. To keep
            // `len` exact we check membership by replaying nothing: treat the
            // cancel as effective only if the seq is still queued.
            // A seq is still queued iff it has not been popped; popped seqs
            // are recorded by removing them from `cancelled` at delivery time,
            // so we track delivered seqs separately.
        }
        if fresh {
            // Optimistically assume it was pending; pop() reconciles.
            if self.pending_seq(handle.0) {
                self.live -= 1;
                self.maybe_compact();
                return true;
            }
            self.cancelled.remove(&handle.0);
        }
        false
    }

    /// Sheds lazily-cancelled entries once they outnumber half the live
    /// ones, so heavy cancellation cannot grow the heap without bound. The
    /// rebuild is O(n) and amortizes to O(1) per cancellation; delivery
    /// order is unaffected because `(time, seq)` ordering is preserved.
    fn maybe_compact(&mut self) {
        const MIN_GARBAGE: usize = 64;
        if self.cancelled.len() >= MIN_GARBAGE && self.cancelled.len() > self.live / 2 {
            let cancelled = std::mem::take(&mut self.cancelled);
            self.heap.retain(|e| !cancelled.contains(&e.seq));
            debug_assert_eq!(self.heap.len(), self.live);
        }
    }

    fn pending_seq(&self, seq: u64) -> bool {
        // Linear scan is acceptable: cancellation is rare in these models and
        // heaps are small; correctness (exact len()) matters more here.
        self.heap.iter().any(|e| e.seq == seq)
    }

    /// Removes and returns the earliest live event, advancing the clock to
    /// its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.now = entry.time;
            self.live -= 1;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// Timestamp of the next live event without removing it.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = self.heap.pop().expect("peeked entry exists").seq;
                self.cancelled.remove(&seq);
            } else {
                return Some(entry.time);
            }
        }
        None
    }

    /// Drops every pending event and resets the clock to zero.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
        self.now = SimTime::ZERO;
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(3.0), 3);
        cal.schedule(SimTime::new(1.0), 1);
        cal.schedule(SimTime::new(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut cal = Calendar::new();
        let t = SimTime::new(1.0);
        for i in 0..10 {
            cal.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_to_popped_event() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(5.0), ());
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.pop();
        assert_eq!(cal.now(), SimTime::new(5.0));
    }

    #[test]
    fn cancel_prevents_delivery_and_updates_len() {
        let mut cal = Calendar::new();
        let h1 = cal.schedule(SimTime::new(1.0), 1);
        let _h2 = cal.schedule(SimTime::new(2.0), 2);
        assert_eq!(cal.len(), 2);
        assert!(cal.cancel(h1));
        assert_eq!(cal.len(), 1);
        assert!(!cal.cancel(h1), "double cancel is a no-op");
        assert_eq!(cal.pop().map(|(_, e)| e), Some(2));
    }

    #[test]
    fn cancel_after_delivery_returns_false() {
        let mut cal = Calendar::new();
        let h = cal.schedule(SimTime::new(1.0), ());
        cal.pop();
        assert!(!cal.cancel(h));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(4.0), "a");
        cal.pop();
        cal.schedule_in(1.0, "b");
        let (t, _) = cal.pop().expect("event scheduled");
        assert_eq!(t, SimTime::new(5.0));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(2.0), ());
        cal.pop();
        cal.schedule(SimTime::new(1.0), ());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut cal = Calendar::new();
        let h = cal.schedule(SimTime::new(1.0), 1);
        cal.schedule(SimTime::new(2.0), 2);
        cal.cancel(h);
        assert_eq!(cal.peek_time(), Some(SimTime::new(2.0)));
        assert_eq!(cal.pop().map(|(_, e)| e), Some(2));
    }

    #[test]
    fn heavy_cancellation_compacts_the_heap() {
        // Regression: lazy cancellation used to leave every cancelled entry
        // in the heap until it reached the head, so a cancel-heavy workload
        // (fault-injection casualty teardown) grew memory without bound.
        let mut cal = Calendar::new();
        let handles: Vec<EventHandle> = (0..10_000)
            .map(|i| cal.schedule(SimTime::new(1.0 + i as f64), i))
            .collect();
        // Cancel all but every 100th event.
        for (i, h) in handles.iter().enumerate() {
            if i % 100 != 0 {
                assert!(cal.cancel(*h));
            }
        }
        assert_eq!(cal.len(), 100);
        assert!(
            cal.heap.len() <= 2 * cal.len() + 64,
            "heap holds {} entries for {} live events",
            cal.heap.len(),
            cal.len()
        );
        assert!(
            cal.cancelled.len() <= cal.len() + 64,
            "{} cancelled markers linger",
            cal.cancelled.len()
        );
        // Delivery is unaffected: the 100 survivors pop in order.
        let out: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        let expect: Vec<i32> = (0..10_000).step_by(100).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn compaction_keeps_cancel_semantics() {
        let mut cal = Calendar::new();
        let handles: Vec<EventHandle> = (0..1_000)
            .map(|i| cal.schedule(SimTime::new(i as f64 + 1.0), i))
            .collect();
        for h in &handles[..900] {
            cal.cancel(*h);
        }
        // A compaction has happened; re-cancelling is still a no-op and
        // cancelling a live handle still works.
        assert!(!cal.cancel(handles[0]), "double cancel after compaction");
        assert!(cal.cancel(handles[950]));
        assert_eq!(cal.len(), 99);
    }

    #[test]
    fn clear_empties_everything() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(1.0), ());
        cal.clear();
        assert!(cal.is_empty());
        assert_eq!(cal.peek_time(), None);
    }
}
